//! The task execution tracker — the thin layer between server code and the
//! logging library (paper §3.2, §4.1).
//!
//! The tracker identifies tasks at runtime from **stage delimiters** and
//! tracks execution flow by intercepting log calls:
//!
//! * **Producer-consumer stages** (thread pools looping over a request
//!   queue) call [`TaskExecutionTracker::set_context`] at the top of the
//!   loop. Starting a new task implicitly terminates the previous one —
//!   exactly the paper's termination inference for this model.
//! * **Dispatcher-worker stages** (spawned worker threads) hold a
//!   [`TaskGuard`]; dropping the guard at the end of `run()` emits the
//!   synopsis. This is the RAII equivalent of the paper's
//!   `finalize()`-based termination inference through garbage collection.
//!
//! Tasks live in thread-local storage (as in the paper) keyed by tracker
//! instance, so multiple simulated hosts can share one driver thread and
//! real servers can run many threads per tracker.

use crate::synopsis::TaskSynopsis;
use crate::{HostId, StageId, TaskUid};
use parking_lot::Mutex;
use saad_logging::{Interceptor, Level, LogPointId};
use saad_obs::{Counter, Histogram, Registry};
use saad_sim::{Clock, SimTime};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Destination for completed task synopses.
///
/// In the paper synopses are streamed to a centralized analyzer; the
/// pipeline module provides a channel-backed sink, while [`VecSink`]
/// buffers in memory for training-trace collection and tests.
pub trait SynopsisSink: Send + Sync {
    /// Accept one completed synopsis.
    fn submit(&self, synopsis: TaskSynopsis);
}

/// A sink that buffers synopses in memory (training traces, tests).
#[derive(Debug, Default)]
pub struct VecSink {
    synopses: Mutex<Vec<TaskSynopsis>>,
}

impl VecSink {
    /// Create an empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Number of buffered synopses.
    pub fn len(&self) -> usize {
        self.synopses.lock().len()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return all buffered synopses.
    pub fn drain(&self) -> Vec<TaskSynopsis> {
        std::mem::take(&mut *self.synopses.lock())
    }

    /// Clone of the buffered synopses.
    pub fn snapshot(&self) -> Vec<TaskSynopsis> {
        self.synopses.lock().clone()
    }
}

impl SynopsisSink for VecSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        self.synopses.lock().push(synopsis);
    }
}

/// A sink that counts and discards (overhead benchmarking).
#[derive(Debug, Default)]
pub struct NullSink {
    count: AtomicU64,
}

impl NullSink {
    /// Create a sink with a zeroed counter.
    pub fn new() -> NullSink {
        NullSink::default()
    }

    /// Synopses discarded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl SynopsisSink for NullSink {
    fn submit(&self, _synopsis: TaskSynopsis) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-task in-memory record, kept in thread-local storage while the task
/// runs. Mirrors the paper's map of `log point id -> frequency` plus the
/// stage id, unique id, and start timestamp.
#[derive(Debug)]
struct ActiveTask {
    stage: StageId,
    uid: TaskUid,
    start: SimTime,
    last_visit: SimTime,
    // Sorted by point id; tasks visit few distinct points, so a small
    // sorted vec beats a HashMap here.
    points: Vec<(LogPointId, u32)>,
}

impl ActiveTask {
    fn visit(&mut self, point: LogPointId, at: SimTime) {
        self.last_visit = at;
        match self.points.binary_search_by_key(&point, |&(p, _)| p) {
            Ok(i) => self.points[i].1 += 1,
            Err(i) => self.points.insert(i, (point, 1)),
        }
    }

    fn into_synopsis(self, host: HostId) -> TaskSynopsis {
        TaskSynopsis {
            host,
            stage: self.stage,
            uid: self.uid,
            start: self.start,
            duration: self.last_visit.saturating_since(self.start),
            log_points: self.points,
        }
    }
}

thread_local! {
    // Active tasks per tracker instance on this thread, keyed by tracker
    // id so multiple simulated hosts can share one driver thread. A tiny
    // linear-scanned vec: a thread rarely serves more than a handful of
    // trackers, and the scan beats hashing on the per-log-point hot path.
    static ACTIVE: RefCell<Vec<(u64, ActiveTask)>> = const { RefCell::new(Vec::new()) };
}

fn active_insert(
    slots: &mut Vec<(u64, ActiveTask)>,
    id: u64,
    task: ActiveTask,
) -> Option<ActiveTask> {
    match slots.iter_mut().find(|(k, _)| *k == id) {
        Some(slot) => Some(std::mem::replace(&mut slot.1, task)),
        None => {
            slots.push((id, task));
            None
        }
    }
}

fn active_remove(slots: &mut Vec<(u64, ActiveTask)>, id: u64) -> Option<ActiveTask> {
    slots
        .iter()
        .position(|(k, _)| *k == id)
        .map(|i| slots.swap_remove(i).1)
}

static NEXT_TRACKER_ID: AtomicU64 = AtomicU64::new(0);

/// Hot-path instruments for a tracker's emit path.
///
/// Recording is two relaxed atomic adds per completed task (counter
/// increment + histogram sample), which keeps the tracker inside the
/// paper's <1% overhead budget — see the `obs_overhead` bench.
#[derive(Debug)]
pub struct TrackerMetrics {
    emitted: Arc<Counter>,
    task_duration_us: Arc<Histogram>,
}

impl TrackerMetrics {
    /// Register the tracker instrument family for `host` in `registry`.
    pub fn register(registry: &Registry, host: HostId) -> TrackerMetrics {
        let host_label = host.0.to_string();
        let labels = [("host", host_label.as_str())];
        TrackerMetrics {
            emitted: registry.register_counter(
                "saad_tracker_synopses_emitted_total",
                "Task synopses emitted by the tracker",
                &labels,
            ),
            task_duration_us: registry.register_histogram(
                "saad_tracker_task_duration_us",
                "Tracked task duration (start to last log point) in microseconds",
                &labels,
            ),
        }
    }
}

/// The task execution tracker: ~50 lines of logic in the paper, sitting
/// between the server code and the logging library.
///
/// Implements [`saad_logging::Interceptor`], so wiring it up is one call to
/// [`saad_logging::LoggerBuilder::interceptor`].
pub struct TaskExecutionTracker {
    id: u64,
    host: HostId,
    clock: Arc<dyn Clock>,
    sink: Arc<dyn SynopsisSink>,
    next_uid: AtomicU64,
    completed: AtomicU64,
    untracked_visits: AtomicU64,
    metrics: Option<TrackerMetrics>,
}

impl fmt::Debug for TaskExecutionTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskExecutionTracker")
            .field("host", &self.host)
            .field("completed", &self.completed.load(Ordering::Relaxed))
            .finish()
    }
}

impl TaskExecutionTracker {
    /// Create a tracker for `host`, timestamping with `clock` and emitting
    /// synopses to `sink`.
    pub fn new(
        host: HostId,
        clock: Arc<dyn Clock>,
        sink: Arc<dyn SynopsisSink>,
    ) -> TaskExecutionTracker {
        TaskExecutionTracker {
            id: NEXT_TRACKER_ID.fetch_add(1, Ordering::Relaxed),
            host,
            clock,
            sink,
            next_uid: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            untracked_visits: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Like [`TaskExecutionTracker::new`], but recording emit rate and
    /// task durations into the instruments of `metrics` on every
    /// completed task.
    pub fn with_metrics(
        host: HostId,
        clock: Arc<dyn Clock>,
        sink: Arc<dyn SynopsisSink>,
        metrics: TrackerMetrics,
    ) -> TaskExecutionTracker {
        let mut tracker = TaskExecutionTracker::new(host, clock, sink);
        tracker.metrics = Some(metrics);
        tracker
    }

    /// Expose this tracker's bookkeeping counters (tasks completed,
    /// untracked log-point visits) as scrape-time metrics in
    /// `registry`. Zero hot-path cost: the counters already exist and
    /// are only read when scraped.
    ///
    /// The closures hold the tracker weakly: a tracker owns its
    /// [`SynopsisSink`], and a long-lived registry owning the tracker
    /// would keep that sink's channel open after the tracker is dropped,
    /// wedging analyzer shutdown. Scrapes after drop read zero.
    pub fn register_metrics(self: &Arc<Self>, registry: &Registry) {
        let host_label = self.host.0.to_string();
        let labels = [("host", host_label.as_str())];
        let completed = Arc::downgrade(self);
        registry.register_counter_fn(
            "saad_tracker_tasks_completed_total",
            "Tasks completed (synopses emitted) by the tracker",
            &labels,
            move || completed.upgrade().map_or(0, |t| t.completed()),
        );
        let untracked = Arc::downgrade(self);
        registry.register_counter_fn(
            "saad_tracker_untracked_visits_total",
            "Log point visits outside any delimited task (missing stage delimiters)",
            &labels,
            move || untracked.upgrade().map_or(0, |t| t.untracked_visits()),
        );
    }

    /// The host this tracker tags synopses with.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Stage delimiter (the paper's `setContext(int stageId)`): the calling
    /// thread is about to execute a new task of `stage`.
    ///
    /// If a task is already active on this thread it is finalized first —
    /// the producer-consumer termination inference: "if a task synopsis
    /// data structure is already initialized in thread private storage, it
    /// indicates that the thread is finished with the previous task".
    ///
    /// Returns the new task's uid.
    pub fn set_context(&self, stage: StageId) -> TaskUid {
        let now = self.clock.now();
        let uid = TaskUid(self.next_uid.fetch_add(1, Ordering::Relaxed));
        let task = ActiveTask {
            stage,
            uid,
            start: now,
            last_visit: now,
            points: Vec::with_capacity(8),
        };
        let previous = ACTIVE.with(|a| active_insert(&mut a.borrow_mut(), self.id, task));
        if let Some(prev) = previous {
            self.emit(prev);
        }
        uid
    }

    /// Explicitly terminate the current task on this thread, emitting its
    /// synopsis. No-op when no task is active.
    pub fn end_task(&self) {
        if let Some(task) = ACTIVE.with(|a| active_remove(&mut a.borrow_mut(), self.id)) {
            self.emit(task);
        }
    }

    /// Discard the current task without emitting a synopsis (used when a
    /// stage decides an execution should not be observed, e.g. an idle
    /// poll loop iteration).
    pub fn abandon_task(&self) {
        ACTIVE.with(|a| active_remove(&mut a.borrow_mut(), self.id));
    }

    /// RAII stage delimiter for dispatcher-worker stages: the returned
    /// guard finalizes the task when dropped (even on panic/unwind —
    /// the analogue of the paper's `finalize()` hook firing when a worker
    /// thread dies).
    pub fn task_guard(&self, stage: StageId) -> TaskGuard<'_> {
        let uid = self.set_context(stage);
        TaskGuard { tracker: self, uid }
    }

    /// Uid of the task currently active on this thread, if any.
    pub fn current_task(&self) -> Option<TaskUid> {
        ACTIVE.with(|a| {
            a.borrow()
                .iter()
                .find(|(k, _)| *k == self.id)
                .map(|(_, t)| t.uid)
        })
    }

    /// Detach the current task from this thread without terminating it.
    ///
    /// Event-driven stages (and the simulators' single driver thread) use
    /// this when a task blocks on downstream work executed by other tasks
    /// of the *same* tracker: suspend, let the other tasks run, then
    /// [`TaskExecutionTracker::resume_task`] to keep accumulating visits.
    /// Returns `None` when no task is active.
    pub fn suspend_task(&self) -> Option<SuspendedTask> {
        ACTIVE
            .with(|a| active_remove(&mut a.borrow_mut(), self.id))
            .map(|task| SuspendedTask {
                tracker_id: self.id,
                task,
            })
    }

    /// Re-attach a task previously detached with
    /// [`TaskExecutionTracker::suspend_task`].
    ///
    /// If another task is active on this thread it is finalized first
    /// (same inference as [`TaskExecutionTracker::set_context`]).
    ///
    /// # Panics
    ///
    /// Panics if the suspended task came from a different tracker.
    pub fn resume_task(&self, suspended: SuspendedTask) {
        assert_eq!(
            suspended.tracker_id, self.id,
            "task resumed on a different tracker than it was suspended from"
        );
        let previous = ACTIVE.with(|a| active_insert(&mut a.borrow_mut(), self.id, suspended.task));
        if let Some(prev) = previous {
            self.emit(prev);
        }
    }

    /// Total tasks completed (synopses emitted).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Log point visits that occurred outside any delimited task. A large
    /// number here means a stage is missing its delimiter instrumentation.
    pub fn untracked_visits(&self) -> u64 {
        self.untracked_visits.load(Ordering::Relaxed)
    }

    fn emit(&self, task: ActiveTask) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let synopsis = task.into_synopsis(self.host);
        if let Some(metrics) = &self.metrics {
            metrics.emitted.inc();
            metrics
                .task_duration_us
                .record(synopsis.duration.as_micros());
        }
        self.sink.submit(synopsis);
    }
}

impl Interceptor for TaskExecutionTracker {
    fn on_log_point(&self, point: LogPointId, _level: Level) {
        let now = self.clock.now();
        let tracked = ACTIVE.with(|a| {
            let mut slots = a.borrow_mut();
            if let Some((_, task)) = slots.iter_mut().find(|(k, _)| *k == self.id) {
                task.visit(point, now);
                true
            } else {
                false
            }
        });
        if !tracked {
            self.untracked_visits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A task detached from its thread, holding its accumulated state.
///
/// Produced by [`TaskExecutionTracker::suspend_task`]; pass it back to
/// [`TaskExecutionTracker::resume_task`] to continue the task. Dropping a
/// `SuspendedTask` discards the task without emitting a synopsis.
#[derive(Debug)]
pub struct SuspendedTask {
    tracker_id: u64,
    task: ActiveTask,
}

impl SuspendedTask {
    /// Uid of the suspended task.
    pub fn uid(&self) -> TaskUid {
        self.task.uid
    }
}

/// RAII handle for a dispatcher-worker task; ends the task on drop.
///
/// If the stage (or anything else) started a *different* task on this
/// thread before the guard drops, the guard does nothing — the newer
/// delimiter already finalized this task.
#[derive(Debug)]
pub struct TaskGuard<'a> {
    tracker: &'a TaskExecutionTracker,
    uid: TaskUid,
}

impl TaskGuard<'_> {
    /// This task's uid.
    pub fn uid(&self) -> TaskUid {
        self.uid
    }
}

impl Drop for TaskGuard<'_> {
    fn drop(&mut self) {
        if self.tracker.current_task() == Some(self.uid) {
            self.tracker.end_task();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saad_logging::{LogPointRegistry, Logger};
    use saad_sim::ManualClock;
    use saad_sim::SimDuration;

    struct Fixture {
        clock: Arc<ManualClock>,
        sink: Arc<VecSink>,
        tracker: Arc<TaskExecutionTracker>,
        logger: Logger,
        points: Vec<LogPointId>,
    }

    fn fixture() -> Fixture {
        let registry = Arc::new(LogPointRegistry::new());
        let points: Vec<LogPointId> = (0..6)
            .map(|i| registry.register(format!("msg {i}"), Level::Info, "f.rs", i))
            .collect();
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let tracker = Arc::new(TaskExecutionTracker::new(
            HostId(7),
            clock.clone() as Arc<dyn Clock>,
            sink.clone() as Arc<dyn SynopsisSink>,
        ));
        let logger = Logger::builder("Stage")
            .interceptor(tracker.clone())
            .registry(registry)
            .build();
        Fixture {
            clock,
            sink,
            tracker,
            logger,
            points,
        }
    }

    #[test]
    fn set_context_then_end_emits_synopsis() {
        let f = fixture();
        let stage = StageId(1);
        f.tracker.set_context(stage);
        f.logger.info(f.points[0], format_args!("a"));
        f.clock.set(SimTime::from_millis(10));
        f.logger.info(f.points[1], format_args!("b"));
        f.tracker.end_task();

        let s = f.sink.drain();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].stage, stage);
        assert_eq!(s[0].host, HostId(7));
        assert_eq!(s[0].duration, SimDuration::from_millis(10));
        assert_eq!(s[0].log_points.len(), 2);
    }

    #[test]
    fn duration_is_start_to_last_log_point() {
        // Paper §3.3.1: duration = start → timestamp of last log point,
        // NOT start → task end.
        let f = fixture();
        f.tracker.set_context(StageId(0));
        f.clock.set(SimTime::from_millis(3));
        f.logger.info(f.points[0], format_args!("x"));
        f.clock.set(SimTime::from_millis(99)); // silent tail work
        f.tracker.end_task();
        let s = f.sink.drain();
        assert_eq!(s[0].duration, SimDuration::from_millis(3));
    }

    #[test]
    fn producer_consumer_termination_inference() {
        // Starting task B implicitly completes task A.
        let f = fixture();
        f.tracker.set_context(StageId(0));
        f.logger.info(f.points[0], format_args!("a"));
        f.tracker.set_context(StageId(0));
        f.logger.info(f.points[1], format_args!("b"));
        f.tracker.end_task();

        let s = f.sink.drain();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].log_points[0].0, f.points[0]);
        assert_eq!(s[1].log_points[0].0, f.points[1]);
        assert_ne!(s[0].uid, s[1].uid);
    }

    #[test]
    fn frequencies_accumulate() {
        // The DataXceiver packet loop: L2 visited once per packet.
        let f = fixture();
        f.tracker.set_context(StageId(0));
        for _ in 0..40 {
            f.logger.info(f.points[2], format_args!("packet"));
        }
        f.tracker.end_task();
        let s = f.sink.drain();
        assert_eq!(s[0].log_points, vec![(f.points[2], 40)]);
        assert_eq!(s[0].total_visits(), 40);
    }

    #[test]
    fn guard_emits_on_drop() {
        let f = fixture();
        {
            let _guard = f.tracker.task_guard(StageId(4));
            f.logger.info(f.points[0], format_args!("w"));
        }
        assert_eq!(f.sink.len(), 1);
        assert_eq!(f.tracker.completed(), 1);
    }

    #[test]
    fn guard_emits_even_on_panic() {
        let f = fixture();
        let tracker = f.tracker.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = tracker.task_guard(StageId(4));
            f.logger.info(f.points[0], format_args!("w"));
            panic!("worker died");
        }));
        assert!(result.is_err());
        assert_eq!(
            f.sink.len(),
            1,
            "synopsis must be emitted when the worker dies (finalize analogue)"
        );
    }

    #[test]
    fn stale_guard_does_not_double_emit() {
        let f = fixture();
        let guard = f.tracker.task_guard(StageId(1));
        f.tracker.set_context(StageId(2)); // supersedes the guarded task
        drop(guard);
        f.tracker.end_task();
        assert_eq!(f.sink.len(), 2, "exactly one synopsis per task");
    }

    #[test]
    fn untracked_visits_are_counted_not_credited() {
        let f = fixture();
        f.logger.info(f.points[0], format_args!("no task"));
        assert_eq!(f.tracker.untracked_visits(), 1);
        assert!(f.sink.is_empty());
    }

    #[test]
    fn abandon_discards_without_emitting() {
        let f = fixture();
        f.tracker.set_context(StageId(0));
        f.logger.info(f.points[0], format_args!("x"));
        f.tracker.abandon_task();
        assert!(f.sink.is_empty());
        assert_eq!(f.tracker.current_task(), None);
    }

    #[test]
    fn end_task_without_context_is_noop() {
        let f = fixture();
        f.tracker.end_task();
        assert!(f.sink.is_empty());
    }

    #[test]
    fn two_trackers_share_a_thread_independently() {
        // Two simulated hosts driven by one thread must not cross-credit.
        let f1 = fixture();
        let f2 = fixture();
        f1.tracker.set_context(StageId(1));
        f2.tracker.set_context(StageId(2));
        f1.logger.info(f1.points[0], format_args!("h1"));
        f2.logger.info(f2.points[1], format_args!("h2"));
        f1.tracker.end_task();
        f2.tracker.end_task();
        let s1 = f1.sink.drain();
        let s2 = f2.sink.drain();
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.len(), 1);
        assert_eq!(s1[0].log_points[0].0, f1.points[0]);
        assert_eq!(s2[0].log_points[0].0, f2.points[1]);
    }

    #[test]
    fn tracker_works_across_threads() {
        let f = fixture();
        let tracker = f.tracker.clone();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = tracker.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.set_context(StageId(0));
                        t.on_log_point(LogPointId(0), Level::Info);
                        t.end_task();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.sink.len(), 400);
        assert_eq!(tracker.completed(), 400);
        // All uids distinct.
        let mut uids: Vec<u64> = f.sink.drain().iter().map(|s| s.uid.0).collect();
        uids.sort_unstable();
        uids.dedup();
        assert_eq!(uids.len(), 400);
    }

    #[test]
    fn debug_level_points_tracked_at_info_verbosity() {
        // End-to-end check of the paper's headline property through the
        // real logger: DEBUG insight at INFO cost.
        let f = fixture();
        f.tracker.set_context(StageId(0));
        f.logger.debug(f.points[3], format_args!("debug detail"));
        f.tracker.end_task();
        let s = f.sink.drain();
        assert_eq!(s[0].log_points, vec![(f.points[3], 1)]);
    }

    #[test]
    fn suspend_resume_keeps_accumulating() {
        let f = fixture();
        f.tracker.set_context(StageId(3));
        f.logger.info(f.points[0], format_args!("before"));
        let suspended = f.tracker.suspend_task().expect("task active");
        assert_eq!(f.tracker.current_task(), None);

        // Another task of the same tracker runs in between.
        f.tracker.set_context(StageId(4));
        f.logger.info(f.points[1], format_args!("inner"));
        f.tracker.end_task();

        f.tracker.resume_task(suspended);
        f.clock.set(SimTime::from_millis(50));
        f.logger.info(f.points[2], format_args!("after"));
        f.tracker.end_task();

        let mut s = f.sink.drain();
        assert_eq!(s.len(), 2);
        s.sort_by_key(|x| x.uid.0);
        // The outer task has both its points and the full duration.
        assert_eq!(s[0].stage, StageId(3));
        assert_eq!(s[0].log_points.len(), 2);
        assert_eq!(s[0].duration, SimDuration::from_millis(50));
        assert_eq!(s[1].stage, StageId(4));
        assert_eq!(s[1].log_points.len(), 1);
    }

    #[test]
    fn suspend_without_task_is_none() {
        let f = fixture();
        assert!(f.tracker.suspend_task().is_none());
    }

    #[test]
    fn dropped_suspended_task_is_discarded() {
        let f = fixture();
        f.tracker.set_context(StageId(0));
        let suspended = f.tracker.suspend_task().unwrap();
        assert_eq!(suspended.uid(), TaskUid(suspended.uid().0)); // accessor works
        drop(suspended);
        assert!(f.sink.is_empty());
    }

    #[test]
    #[should_panic]
    fn resume_on_wrong_tracker_panics() {
        let f1 = fixture();
        let f2 = fixture();
        f1.tracker.set_context(StageId(0));
        let suspended = f1.tracker.suspend_task().unwrap();
        f2.tracker.resume_task(suspended);
    }

    #[test]
    fn null_sink_counts() {
        let sink = NullSink::new();
        sink.submit(TaskSynopsis {
            host: HostId(0),
            stage: StageId(0),
            uid: TaskUid(0),
            start: SimTime::ZERO,
            duration: SimDuration::ZERO,
            log_points: vec![],
        });
        assert_eq!(sink.count(), 1);
    }
}
