//! A fast, non-cryptographic hasher for the detector's hot-path maps.
//!
//! The window accumulators key on tiny fixed-size tuples of newtyped
//! integers (`(HostId, StageId, u64)`, `SigId`), where SipHash's
//! DoS-resistance buys nothing — the key space is controlled by the
//! deployment, not by untrusted input — and its per-insert cost shows up
//! directly in the per-synopsis budget. This is the FxHash construction
//! (rotate, xor, multiply by a Fibonacci-like constant), which rustc
//! itself uses for the same shape of workload.
//!
//! Determinism note: event emission never depends on map iteration order
//! (keys are collected and sorted before any emission or encoding), so
//! swapping the hasher cannot change observable behavior.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// A `HashMap` using [`FastHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, FastBuild>;

/// `BuildHasher` for [`FastHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FastBuild;

impl BuildHasher for FastBuild {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher { state: 0 }
    }
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiply-rotate hasher.
#[derive(Debug)]
pub(crate) struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_distinct_keys_differ() {
        let mut m: FastMap<(u16, u16, u64), u64> = FastMap::default();
        for h in 0..8u16 {
            for s in 0..8u16 {
                for w in 0..4u64 {
                    m.insert((h, s, w), (h + s) as u64 + w);
                }
            }
        }
        assert_eq!(m.len(), 8 * 8 * 4);
        assert_eq!(m[&(3, 5, 2)], 10);
        let b = FastBuild;
        assert_ne!(
            b.hash_one((1u16, 2u16, 3u64)),
            b.hash_one((1u16, 2u16, 4u64))
        );
        assert_ne!(b.hash_one(7u32), b.hash_one(8u32));
    }
}
