//! Virtual-time task execution helper for the storage simulators.
//!
//! The simulators are timestamp-advancing: each task runs to completion as
//! a plain function call carrying its own time cursor. [`SimTask`] bundles
//! the bookkeeping — it pins the shared [`ManualClock`] to the cursor
//! before every log call so the tracker timestamps visits correctly, and
//! finalizes the task (RAII) when dropped.
//!
//! `SimTask` owns `Arc` handles rather than borrows so simulator state
//! structs can be mutated freely while a task is in flight.

use crate::tracker::{SuspendedTask, TaskExecutionTracker};
use crate::StageId;
use saad_logging::{Level, LogPointId, Logger};
use saad_sim::{ManualClock, SimDuration, SimTime};
use std::fmt;
use std::sync::Arc;

/// One simulated task execution: a stage delimiter, a time cursor, and the
/// logger the stage writes through.
///
/// # Example
///
/// ```
/// use saad_core::prelude::*;
/// use saad_core::simtask::SimTask;
/// use saad_logging::{Level, Logger, LogPointRegistry};
/// use saad_sim::{ManualClock, SimDuration, SimTime};
/// use std::sync::Arc;
///
/// let registry = Arc::new(LogPointRegistry::new());
/// let p = registry.register("Receiving one packet", Level::Debug, "dx.rs", 1);
/// let clock = Arc::new(ManualClock::new());
/// let sink = Arc::new(VecSink::new());
/// let tracker = Arc::new(TaskExecutionTracker::new(HostId(0), clock.clone(), sink.clone()));
/// let logger = Arc::new(Logger::builder("DataXceiver").interceptor(tracker.clone()).build());
/// let stages = StageRegistry::new();
/// let dx = stages.register("DataXceiver");
///
/// let mut task = SimTask::begin(&tracker, &clock, &logger, dx, SimTime::ZERO);
/// task.debug(p, format_args!("Receiving one packet"));
/// task.advance(SimDuration::from_millis(10));
/// task.finish();
/// assert_eq!(sink.len(), 1);
/// ```
#[derive(Debug)]
pub struct SimTask {
    tracker: Arc<TaskExecutionTracker>,
    clock: Arc<ManualClock>,
    logger: Arc<Logger>,
    now: SimTime,
    finished: bool,
}

impl SimTask {
    /// Begin a task of `stage` at virtual time `start`.
    pub fn begin(
        tracker: &Arc<TaskExecutionTracker>,
        clock: &Arc<ManualClock>,
        logger: &Arc<Logger>,
        stage: StageId,
        start: SimTime,
    ) -> SimTask {
        clock.set(start);
        tracker.set_context(stage);
        SimTask {
            tracker: tracker.clone(),
            clock: clock.clone(),
            logger: logger.clone(),
            now: start,
            finished: false,
        }
    }

    /// Current cursor time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Move the cursor forward by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Move the cursor to `t` if `t` is later (waiting on a completion).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Log through the stage's logger at the cursor time.
    pub fn log(&mut self, point: LogPointId, level: Level, args: fmt::Arguments<'_>) {
        self.clock.set(self.now);
        self.logger.log(point, level, args);
    }

    /// Log a `Debug`-level point.
    pub fn debug(&mut self, point: LogPointId, args: fmt::Arguments<'_>) {
        self.log(point, Level::Debug, args);
    }

    /// Log an `Info`-level point.
    pub fn info(&mut self, point: LogPointId, args: fmt::Arguments<'_>) {
        self.log(point, Level::Info, args);
    }

    /// Log a `Warn`-level point.
    pub fn warn(&mut self, point: LogPointId, args: fmt::Arguments<'_>) {
        self.log(point, Level::Warn, args);
    }

    /// Log an `Error`-level point.
    pub fn error(&mut self, point: LogPointId, args: fmt::Arguments<'_>) {
        self.log(point, Level::Error, args);
    }

    /// Terminate the task, emitting its synopsis; returns the final cursor.
    pub fn finish(mut self) -> SimTime {
        self.do_finish();
        self.now
    }

    /// Detach the task so other tasks of the same tracker can run on this
    /// thread; resume with [`SimTask::resume`].
    pub fn suspend(mut self) -> SuspendedSimTask {
        self.finished = true; // prevent Drop from finalizing
        let inner = self
            .tracker
            .suspend_task()
            .expect("SimTask is the active task");
        SuspendedSimTask {
            inner,
            now: self.now,
        }
    }

    /// Re-attach a suspended task.
    pub fn resume(
        tracker: &Arc<TaskExecutionTracker>,
        clock: &Arc<ManualClock>,
        logger: &Arc<Logger>,
        suspended: SuspendedSimTask,
    ) -> SimTask {
        tracker.resume_task(suspended.inner);
        SimTask {
            tracker: tracker.clone(),
            clock: clock.clone(),
            logger: logger.clone(),
            now: suspended.now,
            finished: false,
        }
    }

    fn do_finish(&mut self) {
        if !self.finished {
            self.finished = true;
            self.clock.set(self.now);
            self.tracker.end_task();
        }
    }
}

impl Drop for SimTask {
    fn drop(&mut self) {
        self.do_finish();
    }
}

/// A [`SimTask`] detached from execution, carrying its cursor.
#[derive(Debug)]
pub struct SuspendedSimTask {
    inner: SuspendedTask,
    now: SimTime,
}

impl SuspendedSimTask {
    /// The suspended task's cursor time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adjust the cursor (e.g. to the time an awaited ack arrived).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{SynopsisSink, VecSink};
    use crate::HostId;
    use saad_logging::LogPointRegistry;
    use saad_sim::Clock;

    struct Fx {
        clock: Arc<ManualClock>,
        sink: Arc<VecSink>,
        tracker: Arc<TaskExecutionTracker>,
        logger: Arc<Logger>,
        p: Vec<LogPointId>,
    }

    fn fx() -> Fx {
        let registry = Arc::new(LogPointRegistry::new());
        let p = (0..4)
            .map(|i| registry.register(format!("m{i}"), Level::Debug, "f", i))
            .collect();
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let tracker = Arc::new(TaskExecutionTracker::new(
            HostId(0),
            clock.clone() as Arc<dyn Clock>,
            sink.clone() as Arc<dyn SynopsisSink>,
        ));
        let logger = Arc::new(Logger::builder("S").interceptor(tracker.clone()).build());
        Fx {
            clock,
            sink,
            tracker,
            logger,
            p,
        }
    }

    #[test]
    fn cursor_drives_timestamps() {
        let f = fx();
        let mut t = SimTask::begin(
            &f.tracker,
            &f.clock,
            &f.logger,
            StageId(1),
            SimTime::from_millis(100),
        );
        t.debug(f.p[0], format_args!("a"));
        t.advance(SimDuration::from_millis(7));
        t.debug(f.p[1], format_args!("b"));
        t.finish();
        let s = f.sink.drain();
        assert_eq!(s[0].start, SimTime::from_millis(100));
        assert_eq!(s[0].duration, SimDuration::from_millis(7));
    }

    #[test]
    fn drop_finalizes() {
        let f = fx();
        {
            let mut t = SimTask::begin(&f.tracker, &f.clock, &f.logger, StageId(1), SimTime::ZERO);
            t.debug(f.p[0], format_args!("x"));
        }
        assert_eq!(f.sink.len(), 1);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let f = fx();
        let mut t = SimTask::begin(
            &f.tracker,
            &f.clock,
            &f.logger,
            StageId(0),
            SimTime::from_secs(2),
        );
        t.advance_to(SimTime::from_secs(1));
        assert_eq!(t.now(), SimTime::from_secs(2));
        t.advance_to(SimTime::from_secs(3));
        assert_eq!(t.now(), SimTime::from_secs(3));
    }

    #[test]
    fn suspend_resume_spans_inner_tasks() {
        let f = fx();
        let mut outer = SimTask::begin(&f.tracker, &f.clock, &f.logger, StageId(1), SimTime::ZERO);
        outer.debug(f.p[0], format_args!("send"));
        let mut susp = outer.suspend();

        // Inner task of the same tracker while the outer waits.
        let mut inner = SimTask::begin(
            &f.tracker,
            &f.clock,
            &f.logger,
            StageId(2),
            SimTime::from_millis(1),
        );
        inner.debug(f.p[1], format_args!("replica work"));
        inner.advance(SimDuration::from_millis(5));
        let ack = inner.finish();

        susp.advance_to(ack);
        assert_eq!(susp.now(), SimTime::from_millis(6));
        let mut outer = SimTask::resume(&f.tracker, &f.clock, &f.logger, susp);
        outer.debug(f.p[2], format_args!("ack"));
        outer.finish();

        let mut s = f.sink.drain();
        assert_eq!(s.len(), 2);
        s.sort_by_key(|x| x.uid.0);
        // The outer task has both its points and the full duration.
        assert_eq!(s[0].stage, StageId(1));
        assert_eq!(s[0].duration, SimDuration::from_millis(6));
        assert_eq!(s[0].log_points.len(), 2);
        assert_eq!(s[1].stage, StageId(2));
    }

    #[test]
    fn suspended_and_dropped_is_discarded() {
        let f = fx();
        let t = SimTask::begin(&f.tracker, &f.clock, &f.logger, StageId(1), SimTime::ZERO);
        let susp = t.suspend();
        assert_eq!(susp.now(), SimTime::ZERO);
        drop(susp);
        assert!(f.sink.is_empty());
    }

    mod interleaving_property {
        use super::*;
        use crate::synopsis::TaskSynopsis;
        use proptest::prelude::*;

        /// One task's script: its stage, start time, and segments. Each
        /// segment logs one point then advances the cursor; between
        /// segments the task may be suspended while others run.
        #[derive(Debug, Clone)]
        struct Plan {
            stage: u16,
            start_ms: u64,
            segments: Vec<(usize, u64)>,
        }

        /// Strategy output for one plan; the vendored proptest has no
        /// `prop_map`, so tuples are reshaped in the test body.
        fn plan() -> impl Strategy<Value = (u16, u64, Vec<(usize, u64)>)> {
            (
                0u16..4,
                0u64..50,
                collection::vec((0usize..4, 1u64..10), 1..5),
            )
        }

        enum Slot {
            NotStarted,
            Parked(SuspendedSimTask),
            Done,
        }

        /// Run one segment of plan `i`, honoring the one-active-task
        /// invariant: begin/resume, log + advance, then suspend or finish.
        fn step(f: &Fx, plans: &[Plan], slots: &mut [Slot], progress: &mut [usize], i: usize) {
            let mut t = match std::mem::replace(&mut slots[i], Slot::Done) {
                Slot::NotStarted => SimTask::begin(
                    &f.tracker,
                    &f.clock,
                    &f.logger,
                    StageId(plans[i].stage),
                    SimTime::from_millis(plans[i].start_ms),
                ),
                Slot::Parked(susp) => SimTask::resume(&f.tracker, &f.clock, &f.logger, susp),
                Slot::Done => unreachable!("stepping a finished task"),
            };
            let (point, advance_ms) = plans[i].segments[progress[i]];
            t.debug(f.p[point], format_args!("seg"));
            t.advance(SimDuration::from_millis(advance_ms));
            progress[i] += 1;
            if progress[i] == plans[i].segments.len() {
                t.finish();
            } else {
                slots[i] = Slot::Parked(t.suspend());
            }
        }

        fn run_interleaved(f: &Fx, plans: &[Plan], schedule: &[usize]) {
            let mut slots: Vec<Slot> = plans.iter().map(|_| Slot::NotStarted).collect();
            let mut progress = vec![0usize; plans.len()];
            for &pick in schedule {
                let open: Vec<usize> = (0..plans.len())
                    .filter(|&i| !matches!(slots[i], Slot::Done))
                    .collect();
                if open.is_empty() {
                    break;
                }
                step(f, plans, &mut slots, &mut progress, open[pick % open.len()]);
            }
            for i in 0..plans.len() {
                while !matches!(slots[i], Slot::Done) {
                    step(f, plans, &mut slots, &mut progress, i);
                }
            }
        }

        fn run_sequential(f: &Fx, plans: &[Plan]) {
            for p in plans {
                let mut t = SimTask::begin(
                    &f.tracker,
                    &f.clock,
                    &f.logger,
                    StageId(p.stage),
                    SimTime::from_millis(p.start_ms),
                );
                for &(point, advance_ms) in &p.segments {
                    t.debug(f.p[point], format_args!("seg"));
                    t.advance(SimDuration::from_millis(advance_ms));
                }
                t.finish();
            }
        }

        /// Uid-free multiset key: everything a synopsis says about the
        /// task except the begin-order-dependent uid.
        #[allow(clippy::type_complexity)]
        fn keys(
            synopses: Vec<TaskSynopsis>,
        ) -> Vec<(StageId, SimTime, SimDuration, Vec<(LogPointId, u32)>)> {
            let mut keys: Vec<_> = synopses
                .into_iter()
                .map(|s| {
                    let mut points = s.log_points;
                    points.sort_unstable();
                    (s.stage, s.start, s.duration, points)
                })
                .collect();
            keys.sort();
            keys
        }

        proptest! {
            /// Suspend/resume is transparent to the synopsis stream: any
            /// interleaving of N tasks on one tracker yields the same
            /// synopsis multiset (stage, start, duration, point counts)
            /// as running the tasks back-to-back.
            #[test]
            fn interleaved_suspend_resume_matches_sequential_oracle(
                raw_plans in collection::vec(plan(), 2..6),
                schedule in collection::vec(0usize..1_000_000, 0..40),
            ) {
                let plans: Vec<Plan> = raw_plans
                    .into_iter()
                    .map(|(stage, start_ms, segments)| Plan { stage, start_ms, segments })
                    .collect();
                let seq = fx();
                run_sequential(&seq, &plans);
                let inter = fx();
                run_interleaved(&inter, &plans, &schedule);

                prop_assert_eq!(inter.sink.len(), plans.len());
                prop_assert_eq!(keys(inter.sink.drain()), keys(seq.sink.drain()));
            }
        }
    }
}
