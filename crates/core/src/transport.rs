//! Fault-tolerant framed transport for the node → analyzer synopsis stream.
//!
//! The paper assumes a reliable link between every tracked node and the
//! centralized analyzer. Real clusters do not have one: frames get lost,
//! duplicated, reordered, and corrupted, and nodes disconnect. This module
//! wraps the [`crate::codec`] batch encoding in a frame header so the
//! receiving side can *detect and quantify* every one of those failures
//! instead of silently mistaking missing data for healthy silence.
//!
//! # Wire format
//!
//! Every frame is a header followed by a [`crate::codec::encode_batch`]
//! payload. All header fields are big-endian (network order):
//!
//! ```text
//! offset  size  field
//!      0     2  host id of the sender
//!      2     8  frame sequence number (per host, starts at 0)
//!     10     8  cumulative synopses sent in frames BEFORE this one
//!     18     4  payload length in bytes
//!     22     4  CRC-32 over bytes 0..22 and the payload
//! ```
//!
//! The sequence number detects gaps and duplicates; the cumulative count
//! turns a frame gap into an *exact* number of missing synopses (the next
//! frame to arrive after a gap reveals how many synopses the lost frames
//! carried); the checksum rejects corruption. Frame boundaries are
//! preserved by the link layer (datagram model) — a corrupt frame is
//! discarded whole rather than desynchronizing the stream.
//!
//! # Loss accounting
//!
//! [`FrameReceiver`] tracks, per host, the synopses actually delivered and
//! the highest `cumulative + batch_len` seen. At quiescence (no frames in
//! flight) `expected − delivered` is the exact loss count, which
//! [`LinkStats`] reports. *Incremental* gap reports ([`FrameOutcome::Fresh`]
//! `newly_lost`) are conservative: under reordering a frame may be reported
//! lost and later arrive, in which case the late frame delivers its
//! synopses but the earlier report is not retracted. Downstream consumers
//! (the degradation-aware detector) therefore treat incremental loss as an
//! upper bound and the final [`LinkStats`] as ground truth.

use crate::codec::{self, DecodeError};
use crate::synopsis::TaskSynopsis;
use crate::HostId;
use bytes::{BufMut, Bytes, BytesMut};
use saad_sim::SimTime;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Size of the frame header in bytes.
pub const FRAME_HEADER_LEN: usize = 26;

/// Largest payload the receiver will accept (sanity bound; a frame this
/// large would hold ~700k typical synopses).
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

/// Sequence numbers more than this far below the per-host high watermark
/// are treated as duplicates without consulting the seen-set (which is
/// pruned to this horizon to bound memory).
const REORDER_HORIZON: u64 = 1024;

/// CRC-32 (IEEE polynomial) over the concatenation of `chunks`. Public so
/// higher layers (e.g. the wire-protocol handshake in `saad-net`) checksum
/// their messages with the same algorithm the frame format uses.
pub fn crc32(chunks: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &b in *chunk {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

/// Error from [`FrameReceiver::accept`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Frame shorter than its header, or payload length disagrees with the
    /// bytes actually present.
    Truncated,
    /// Payload length field exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// Stored CRC-32 does not match the frame contents.
    ChecksumMismatch {
        /// Checksum carried in the frame header.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// The checksum was valid but the payload failed synopsis decoding
    /// (sender-side bug, not link corruption).
    Codec(DecodeError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("frame truncated"),
            FrameError::Oversized(n) => write!(f, "frame payload length {n} exceeds bound"),
            FrameError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            FrameError::Codec(e) => write!(f, "frame payload undecodable: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> FrameError {
        FrameError::Codec(e)
    }
}

/// Sender half of the framed link: one per tracked host.
#[derive(Debug)]
pub struct FrameSender {
    host: HostId,
    next_seq: u64,
    synopses_sent: u64,
}

impl FrameSender {
    /// Create a sender for `host`; sequence numbers start at 0.
    pub fn new(host: HostId) -> FrameSender {
        FrameSender {
            host,
            next_seq: 0,
            synopses_sent: 0,
        }
    }

    /// The host this sender frames for.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Frames produced so far.
    pub fn frames_sent(&self) -> u64 {
        self.next_seq
    }

    /// Synopses carried by all frames produced so far.
    pub fn synopses_sent(&self) -> u64 {
        self.synopses_sent
    }

    /// Advance the cumulative synopsis count by `n` **without** emitting a
    /// frame, so the next encoded frame's `cumulative` field lands `n`
    /// positions further along the stream.
    ///
    /// This is the federation primitive: a leaf collector re-framing an
    /// agent's stream keeps its upstream sender in the *agent's global
    /// coordinates* by skipping over synopses it never received (an
    /// agent-side gap) or deliberately does not forward. The receiver's
    /// ordinary cumulative-count arithmetic then reports the skipped span
    /// as lost — the skip *is* the loss report, with zero extra wire
    /// messages.
    pub fn skip(&mut self, n: u64) {
        self.synopses_sent += n;
    }

    /// Encode `batch` into one wire frame, advancing the sequence number
    /// and cumulative count.
    pub fn encode_frame(&mut self, batch: &[TaskSynopsis]) -> Bytes {
        let payload = codec::encode_batch(batch);
        let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
        buf.put_u16(self.host.0);
        buf.put_u64(self.next_seq);
        buf.put_u64(self.synopses_sent);
        buf.put_u32(payload.len() as u32);
        let crc = crc32(&[&buf[..], &payload]);
        buf.put_u32(crc);
        buf.extend_from_slice(&payload);
        self.next_seq += 1;
        self.synopses_sent += batch.len() as u64;
        buf.freeze()
    }
}

/// A frame that passed validation (header bounds, checksum, payload
/// decoding) but has not yet been sequenced against a [`FrameReceiver`].
///
/// Produced by [`parse_frame`], consumed by [`FrameReceiver::admit`].
/// Splitting the expensive per-byte work (CRC-32 + synopsis decode) from
/// the cheap per-host sequencing lets a multi-connection collector run
/// validation concurrently outside the shared receiver lock.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFrame {
    /// Sending host (from the frame header).
    pub host: HostId,
    /// Frame sequence number.
    pub seq: u64,
    /// Cumulative synopses sent in frames before this one.
    pub cumulative: u64,
    /// Decoded payload.
    pub synopses: Vec<TaskSynopsis>,
}

/// Validate one received frame without touching any receiver state: check
/// the header bounds, verify the CRC-32, and decode the payload.
///
/// # Errors
///
/// Returns a [`FrameError`] when the frame is truncated, oversized, fails
/// its checksum, or carries an undecodable payload. The caller should
/// count the rejection via [`FrameReceiver::record_corrupted`] (or use
/// [`FrameReceiver::accept`], which does both).
pub fn parse_frame(frame: &[u8]) -> Result<ParsedFrame, FrameError> {
    if frame.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let header = parse_frame_header(&frame[..FRAME_HEADER_LEN])?;
    let payload = &frame[FRAME_HEADER_LEN..];
    if payload.len() != header.payload_len as usize {
        return Err(FrameError::Truncated);
    }
    verify_frame_crc(&frame[..FRAME_HEADER_LEN], payload)?;
    let synopses = codec::decode_batch(&mut Bytes::from(payload.to_vec()))?;
    Ok(ParsedFrame {
        host: header.host,
        seq: header.seq,
        cumulative: header.cumulative,
        synopses,
    })
}

/// The fixed fields of one frame header, decoded without touching the
/// payload — the first step of the incremental decode path used by
/// readiness-driven collectors that learn the payload length before the
/// payload bytes have arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sending host.
    pub host: HostId,
    /// Frame sequence number.
    pub seq: u64,
    /// Cumulative synopses sent in frames before this one.
    pub cumulative: u64,
    /// Payload length in bytes (already bounds-checked).
    pub payload_len: u32,
    /// Stored CRC-32 over the first 22 header bytes plus the payload.
    pub crc: u32,
}

/// Decode the [`FRAME_HEADER_LEN`] fixed bytes of a frame.
///
/// # Errors
///
/// [`FrameError::Truncated`] when fewer than [`FRAME_HEADER_LEN`] bytes
/// are given; [`FrameError::Oversized`] when the length field exceeds
/// [`MAX_FRAME_PAYLOAD`].
pub fn parse_frame_header(header: &[u8]) -> Result<FrameHeader, FrameError> {
    if header.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let payload_len = u32::from_be_bytes(header[18..22].try_into().expect("4 bytes"));
    if payload_len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(payload_len));
    }
    Ok(FrameHeader {
        host: HostId(u16::from_be_bytes([header[0], header[1]])),
        seq: u64::from_be_bytes(header[2..10].try_into().expect("8 bytes")),
        cumulative: u64::from_be_bytes(header[10..18].try_into().expect("8 bytes")),
        payload_len,
        crc: u32::from_be_bytes(header[22..26].try_into().expect("4 bytes")),
    })
}

/// Verify a frame's CRC-32 given its header bytes and payload as
/// separate slices — no concatenation needed, so a collector holding the
/// frame in a ring buffer checks integrity in place.
///
/// # Errors
///
/// [`FrameError::Truncated`] when `header` is short;
/// [`FrameError::ChecksumMismatch`] when the stored and computed CRCs
/// disagree.
pub fn verify_frame_crc(header: &[u8], payload: &[u8]) -> Result<(), FrameError> {
    if header.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let stored = u32::from_be_bytes(header[22..26].try_into().expect("4 bytes"));
    let computed = crc32(&[&header[..22], payload]);
    if computed != stored {
        return Err(FrameError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

/// What [`FrameReceiver::accept`] concluded about a well-formed frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// A frame not seen before; its synopses should be processed.
    Fresh {
        /// Sending host.
        host: HostId,
        /// Decoded payload.
        synopses: Vec<TaskSynopsis>,
        /// Synopses newly discovered to be missing (gap revealed by this
        /// frame's cumulative count). Conservative under reordering — see
        /// the module docs.
        newly_lost: u64,
    },
    /// A frame already delivered (or assumed delivered past the reorder
    /// horizon); its payload must NOT be processed again.
    Duplicate {
        /// Sending host.
        host: HostId,
        /// Sequence number of the duplicate.
        seq: u64,
    },
}

/// A gap report suitable for feeding
/// [`crate::detector::AnomalyDetector::record_loss`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossReport {
    /// Host whose synopses went missing.
    pub host: HostId,
    /// Approximate time of the loss — by convention the start time of the
    /// first synopsis in the frame that revealed the gap.
    pub at: SimTime,
    /// Number of synopses known missing.
    pub count: u64,
}

/// Exact per-host link statistics at quiescence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Distinct frames delivered.
    pub delivered_frames: u64,
    /// Synopses delivered by distinct frames.
    pub delivered_synopses: u64,
    /// Duplicate frames discarded.
    pub duplicate_frames: u64,
    /// Highest `cumulative + batch_len` observed — the number of synopses
    /// the sender is known to have emitted up to its latest received frame.
    pub expected_synopses: u64,
    /// `expected − delivered`: synopses lost on the link. Exact once no
    /// frames remain in flight.
    pub lost_synopses: u64,
}

#[derive(Debug, Default)]
struct HostLink {
    delivered_frames: u64,
    delivered_synopses: u64,
    duplicate_frames: u64,
    expected_synopses: u64,
    /// Incremental loss already surfaced through `newly_lost`.
    reported_lost: u64,
    /// Highest sequence number seen.
    max_seq: u64,
    /// Sequence numbers seen within the reorder horizon.
    seen: HashSet<u64>,
}

impl HostLink {
    fn stats(&self) -> LinkStats {
        LinkStats {
            delivered_frames: self.delivered_frames,
            delivered_synopses: self.delivered_synopses,
            duplicate_frames: self.duplicate_frames,
            expected_synopses: self.expected_synopses,
            lost_synopses: self
                .expected_synopses
                .saturating_sub(self.delivered_synopses),
        }
    }
}

/// Receiver half of the framed link: validates, deduplicates, and accounts
/// for every frame from every host.
#[derive(Debug, Default)]
pub struct FrameReceiver {
    hosts: HashMap<HostId, HostLink>,
    corrupted_frames: u64,
}

impl FrameReceiver {
    /// Create an empty receiver.
    pub fn new() -> FrameReceiver {
        FrameReceiver::default()
    }

    /// Frames rejected as truncated, oversized, checksum-invalid, or
    /// undecodable. Corrupt frames carry no trustworthy header, so this
    /// count is global rather than per host.
    pub fn corrupted_frames(&self) -> u64 {
        self.corrupted_frames
    }

    /// Link statistics for one host (zeroes if never heard from).
    pub fn stats(&self, host: HostId) -> LinkStats {
        self.hosts
            .get(&host)
            .map(HostLink::stats)
            .unwrap_or_default()
    }

    /// Link statistics for every host heard from. Returns a borrowed
    /// iterator — no per-call `HashMap` is built; collect if ownership is
    /// needed.
    pub fn all_stats(&self) -> impl Iterator<Item = (HostId, LinkStats)> + '_ {
        self.hosts.iter().map(|(&h, l)| (h, l.stats()))
    }

    /// Highest frame sequence number seen from `host` (`None` if the host
    /// was never heard from).
    pub fn highest_seq(&self, host: HostId) -> Option<u64> {
        self.hosts.get(&host).map(|l| l.max_seq)
    }

    /// Total synopses lost across all hosts (exact at quiescence).
    pub fn total_lost(&self) -> u64 {
        self.hosts.values().map(|l| l.stats().lost_synopses).sum()
    }

    /// Count one frame rejected by [`parse_frame`] outside this receiver.
    /// ([`FrameReceiver::accept`] counts its own rejections.)
    pub fn record_corrupted(&mut self) {
        self.corrupted_frames += 1;
    }

    /// Prime per-host accounting from a resume handshake.
    ///
    /// A receiver with no state for `host` (e.g. a restarted collector
    /// whose predecessor's link state was lost) adopts the sender's
    /// declared history: `written` synopses were handed to a previous
    /// receiver incarnation and must not be re-counted as lost, while
    /// `sent − written` — frames the sender already knows never reached a
    /// live socket — surface as `newly_lost` on the next fresh frame.
    /// `next_seq` is the sequence number the sender will use next; older
    /// sequence numbers are classified duplicates, so a stray redelivery
    /// of pre-resume frames cannot double count.
    ///
    /// A no-op when the host already has state (the live receiver's own
    /// accounting is strictly better than the sender's declaration).
    pub fn resume(&mut self, host: HostId, written: u64, sent: u64, next_seq: u64) {
        if self.hosts.contains_key(&host) {
            return;
        }
        if next_seq == 0 {
            // Nothing was ever framed; a fresh link needs no priming.
            return;
        }
        let link = self.hosts.entry(host).or_default();
        link.delivered_synopses = written.min(sent);
        link.expected_synopses = sent;
        link.max_seq = next_seq - 1;
        // Marking max_seq as seen makes any redelivery of it a duplicate;
        // older sequence numbers fall to the horizon test in `admit`.
        link.seen.insert(link.max_seq);
    }

    /// Validate and classify one received frame.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] (and counts the frame as corrupted) when
    /// the frame is truncated, oversized, fails its checksum, or carries an
    /// undecodable payload.
    pub fn accept(&mut self, frame: &[u8]) -> Result<FrameOutcome, FrameError> {
        match parse_frame(frame) {
            Ok(parsed) => Ok(self.admit(parsed)),
            Err(e) => {
                self.corrupted_frames += 1;
                Err(e)
            }
        }
    }

    /// Sequence one already-validated frame: deduplicate, account, and
    /// reveal gaps. This is the cheap half of [`FrameReceiver::accept`] —
    /// O(1) per frame — safe to run under a lock shared by many
    /// connections while [`parse_frame`] runs outside it.
    pub fn admit(&mut self, parsed: ParsedFrame) -> FrameOutcome {
        let ParsedFrame {
            host,
            seq,
            cumulative,
            synopses,
        } = parsed;
        match self.admit_meta(host, seq, cumulative, synopses.len() as u64) {
            AdmitDecision::Fresh { newly_lost } => FrameOutcome::Fresh {
                host,
                synopses,
                newly_lost,
            },
            AdmitDecision::Duplicate => FrameOutcome::Duplicate { host, seq },
        }
    }

    /// Sequence a frame by its header metadata alone — the payload-free
    /// core of [`FrameReceiver::admit`], for collectors that have already
    /// decoded the payload elsewhere (e.g. straight into batch columns)
    /// and only need the dedup/accounting verdict. `count` is the number
    /// of synopses the frame carries. `admit` delegates here, so the two
    /// paths cannot drift.
    pub fn admit_meta(
        &mut self,
        host: HostId,
        seq: u64,
        cumulative: u64,
        count: u64,
    ) -> AdmitDecision {
        let link = self.hosts.entry(host).or_default();
        let is_dup = seq + REORDER_HORIZON < link.max_seq || !link.seen.insert(seq);
        if is_dup {
            link.duplicate_frames += 1;
            return AdmitDecision::Duplicate;
        }
        if seq > link.max_seq {
            link.max_seq = seq;
            // Prune the seen-set below the horizon; anything older is
            // classified duplicate by the watermark test above.
            if link.seen.len() > 2 * REORDER_HORIZON as usize {
                let floor = link.max_seq.saturating_sub(REORDER_HORIZON);
                link.seen.retain(|&s| s >= floor);
            }
        }
        link.delivered_frames += 1;
        link.delivered_synopses += count;
        link.expected_synopses = link.expected_synopses.max(cumulative + count);
        let lost_now = link
            .expected_synopses
            .saturating_sub(link.delivered_synopses);
        let newly_lost = lost_now.saturating_sub(link.reported_lost);
        link.reported_lost = link.reported_lost.max(lost_now);
        AdmitDecision::Fresh { newly_lost }
    }
}

/// What [`FrameReceiver::admit_meta`] concluded — [`FrameOutcome`]
/// without the payload, for callers that decoded it elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// A frame not seen before; its (already decoded) synopses should be
    /// processed.
    Fresh {
        /// Synopses newly discovered missing (see
        /// [`FrameOutcome::Fresh`]).
        newly_lost: u64,
    },
    /// Already delivered (or past the reorder horizon); the decoded
    /// payload must be discarded.
    Duplicate,
}

/// Merged per-host accounting across several links that all frame the
/// **same global stream coordinates** — the root analyzer's view of a
/// federated collector tier.
///
/// Each leaf collector forwards a host's synopses in frames whose
/// `cumulative` count equals the synopsis's position in the *agent's*
/// stream (leaves keep their upstream [`FrameSender`]s aligned with
/// [`FrameSender::skip`]). Because every link speaks the same coordinate
/// system, the root can merge them with two pieces of arithmetic:
///
/// * `delivered` = **sum** over links (each position arrives on at most
///   one link — a leaf forwards a synopsis exactly once, and per-link
///   [`FrameReceiver`]s have already discarded duplicates);
/// * `expected` = **max** over links of the highest stream position seen.
///
/// `expected − delivered` is then the exact cross-failover loss: synopses
/// that died with a killed leaf (buffered but never flushed), died on a
/// wire (agent→leaf or leaf→root), or never left the agent. A host
/// re-homing from leaf A to leaf B surfaces as one contiguous gap between
/// A's last delivered position and B's first forwarded one — never silent
/// loss, never double counting, regardless of which leaf owned the host
/// when.
#[derive(Debug, Default)]
pub struct DigestMerge {
    hosts: HashMap<HostId, MergedHost>,
}

#[derive(Debug, Default, Clone, Copy)]
struct MergedHost {
    delivered_frames: u64,
    delivered_synopses: u64,
    duplicate_frames: u64,
    expected_synopses: u64,
    reported_lost: u64,
}

impl DigestMerge {
    /// Create an empty merge.
    pub fn new() -> DigestMerge {
        DigestMerge::default()
    }

    /// Account one fresh frame from any link: `delivered` synopses whose
    /// stream position ends at `stream_pos_end` (the link-local receiver's
    /// `expected_synopses` after admitting the frame). Returns the number
    /// of synopses newly discovered missing across **all** links —
    /// conservative under cross-link races for the same reason
    /// single-link incremental reports are (see the module docs); the
    /// final [`DigestMerge::stats`] are exact at quiescence.
    pub fn on_fresh(&mut self, host: HostId, delivered: u64, stream_pos_end: u64) -> u64 {
        let h = self.hosts.entry(host).or_default();
        h.delivered_frames += 1;
        h.delivered_synopses += delivered;
        h.expected_synopses = h.expected_synopses.max(stream_pos_end);
        let lost_now = h.expected_synopses.saturating_sub(h.delivered_synopses);
        let newly_lost = lost_now.saturating_sub(h.reported_lost);
        h.reported_lost = h.reported_lost.max(lost_now);
        newly_lost
    }

    /// Count one duplicate frame some link discarded for `host`.
    pub fn on_duplicate(&mut self, host: HostId) {
        self.hosts.entry(host).or_default().duplicate_frames += 1;
    }

    /// Merged link statistics for one host (zeroes if never heard from).
    pub fn stats(&self, host: HostId) -> LinkStats {
        self.hosts
            .get(&host)
            .map(|h| LinkStats {
                delivered_frames: h.delivered_frames,
                delivered_synopses: h.delivered_synopses,
                duplicate_frames: h.duplicate_frames,
                expected_synopses: h.expected_synopses,
                lost_synopses: h.expected_synopses.saturating_sub(h.delivered_synopses),
            })
            .unwrap_or_default()
    }

    /// Merged statistics for every host heard from on any link.
    pub fn all_stats(&self) -> impl Iterator<Item = (HostId, LinkStats)> + '_ {
        self.hosts.keys().map(|&h| (h, self.stats(h)))
    }

    /// Total synopses lost across all hosts and links (exact at
    /// quiescence).
    pub fn total_lost(&self) -> u64 {
        self.hosts
            .values()
            .map(|h| h.expected_synopses.saturating_sub(h.delivered_synopses))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StageId, TaskUid};
    use saad_logging::LogPointId;
    use saad_sim::SimDuration;

    fn synopsis(host: u16, uid: u64) -> TaskSynopsis {
        TaskSynopsis {
            host: HostId(host),
            stage: StageId(1),
            uid: TaskUid(uid),
            start: SimTime::from_millis(uid),
            duration: SimDuration::from_micros(1_000),
            log_points: vec![(LogPointId(1), 1), (LogPointId(2), 2)],
        }
    }

    fn batch(host: u16, uids: std::ops::Range<u64>) -> Vec<TaskSynopsis> {
        uids.map(|u| synopsis(host, u)).collect()
    }

    #[test]
    fn round_trip_delivers_payload_in_order() {
        let mut tx = FrameSender::new(HostId(3));
        let mut rx = FrameReceiver::new();
        let b1 = batch(3, 0..4);
        let b2 = batch(3, 4..9);
        for b in [&b1, &b2] {
            match rx.accept(&tx.encode_frame(b)).unwrap() {
                FrameOutcome::Fresh {
                    host,
                    synopses,
                    newly_lost,
                } => {
                    assert_eq!(host, HostId(3));
                    assert_eq!(&synopses, b);
                    assert_eq!(newly_lost, 0);
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        let stats = rx.stats(HostId(3));
        assert_eq!(stats.delivered_frames, 2);
        assert_eq!(stats.delivered_synopses, 9);
        assert_eq!(stats.expected_synopses, 9);
        assert_eq!(stats.lost_synopses, 0);
        assert_eq!(rx.corrupted_frames(), 0);
    }

    #[test]
    fn empty_batch_frames_are_valid() {
        let mut tx = FrameSender::new(HostId(0));
        let mut rx = FrameReceiver::new();
        let out = rx.accept(&tx.encode_frame(&[])).unwrap();
        assert!(matches!(out, FrameOutcome::Fresh { ref synopses, .. } if synopses.is_empty()));
    }

    #[test]
    fn gap_is_reported_exactly_once() {
        let mut tx = FrameSender::new(HostId(1));
        let mut rx = FrameReceiver::new();
        let f0 = tx.encode_frame(&batch(1, 0..3));
        let f1 = tx.encode_frame(&batch(1, 3..10)); // 7 synopses — lost
        let f2 = tx.encode_frame(&batch(1, 10..12));
        let f3 = tx.encode_frame(&batch(1, 12..13));
        rx.accept(&f0).unwrap();
        drop(f1);
        match rx.accept(&f2).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 7),
            other => panic!("unexpected: {other:?}"),
        }
        // The following frame reveals no further loss.
        match rx.accept(&f3).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 0),
            other => panic!("unexpected: {other:?}"),
        }
        let stats = rx.stats(HostId(1));
        assert_eq!(stats.lost_synopses, 7);
        assert_eq!(stats.expected_synopses, 13);
        assert_eq!(stats.delivered_synopses, 6);
    }

    #[test]
    fn duplicates_are_detected_and_not_redelivered() {
        let mut tx = FrameSender::new(HostId(2));
        let mut rx = FrameReceiver::new();
        let f = tx.encode_frame(&batch(2, 0..5));
        assert!(matches!(rx.accept(&f).unwrap(), FrameOutcome::Fresh { .. }));
        assert_eq!(
            rx.accept(&f).unwrap(),
            FrameOutcome::Duplicate {
                host: HostId(2),
                seq: 0
            }
        );
        let stats = rx.stats(HostId(2));
        assert_eq!(stats.delivered_synopses, 5);
        assert_eq!(stats.duplicate_frames, 1);
        assert_eq!(stats.lost_synopses, 0);
    }

    #[test]
    fn reordered_frames_resolve_to_exact_final_stats() {
        let mut tx = FrameSender::new(HostId(4));
        let mut rx = FrameReceiver::new();
        let f0 = tx.encode_frame(&batch(4, 0..2));
        let f1 = tx.encode_frame(&batch(4, 2..6));
        let f2 = tx.encode_frame(&batch(4, 6..7));
        rx.accept(&f0).unwrap();
        // f2 overtakes f1: incremental report over-counts (conservative)…
        match rx.accept(&f2).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 4),
            other => panic!("unexpected: {other:?}"),
        }
        // …but the late arrival still delivers, and final stats are exact.
        match rx.accept(&f1).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 0),
            other => panic!("unexpected: {other:?}"),
        }
        let stats = rx.stats(HostId(4));
        assert_eq!(stats.delivered_synopses, 7);
        assert_eq!(stats.expected_synopses, 7);
        assert_eq!(stats.lost_synopses, 0);
    }

    #[test]
    fn hosts_are_accounted_independently() {
        let mut tx_a = FrameSender::new(HostId(10));
        let mut tx_b = FrameSender::new(HostId(11));
        let mut rx = FrameReceiver::new();
        rx.accept(&tx_a.encode_frame(&batch(10, 0..3))).unwrap();
        let lost = tx_b.encode_frame(&batch(11, 0..8));
        drop(lost);
        rx.accept(&tx_b.encode_frame(&batch(11, 8..9))).unwrap();
        assert_eq!(rx.stats(HostId(10)).lost_synopses, 0);
        assert_eq!(rx.stats(HostId(11)).lost_synopses, 8);
        assert_eq!(rx.total_lost(), 8);
        assert_eq!(rx.all_stats().count(), 2);
        let summed: u64 = rx.all_stats().map(|(_, s)| s.lost_synopses).sum();
        assert_eq!(summed, rx.total_lost());
    }

    #[test]
    fn corrupted_payload_byte_is_rejected_by_checksum() {
        let mut tx = FrameSender::new(HostId(0));
        let mut rx = FrameReceiver::new();
        let mut bytes = tx.encode_frame(&batch(0, 0..3)).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        match rx.accept(&bytes) {
            Err(FrameError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(rx.corrupted_frames(), 1);
        // The link stats are untouched by the corrupt frame.
        assert_eq!(rx.stats(HostId(0)), LinkStats::default());
    }

    #[test]
    fn corrupted_header_byte_is_rejected_by_checksum() {
        let mut tx = FrameSender::new(HostId(0));
        let mut rx = FrameReceiver::new();
        let mut bytes = tx.encode_frame(&batch(0, 0..3)).to_vec();
        bytes[5] ^= 0x01; // flips a sequence-number bit
        assert!(matches!(
            rx.accept(&bytes),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        assert_eq!(rx.corrupted_frames(), 1);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut tx = FrameSender::new(HostId(0));
        let mut rx = FrameReceiver::new();
        let bytes = tx.encode_frame(&batch(0, 0..3));
        // Shorter than a header.
        assert_eq!(rx.accept(&bytes[..10]), Err(FrameError::Truncated));
        // Header intact, payload cut short.
        assert_eq!(
            rx.accept(&bytes[..bytes.len() - 2]),
            Err(FrameError::Truncated)
        );
        // Extra trailing bytes are equally a framing violation.
        let mut long = bytes.to_vec();
        long.push(0);
        assert_eq!(rx.accept(&long), Err(FrameError::Truncated));
        assert_eq!(rx.corrupted_frames(), 3);
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        // Hand-build a header claiming a gigantic payload; the length check
        // must fire before any allocation.
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        buf.put_u64(0);
        buf.put_u64(0);
        buf.put_u32(u32::MAX);
        let crc = crc32(&[&buf[..]]);
        buf.put_u32(crc);
        let mut rx = FrameReceiver::new();
        assert_eq!(
            rx.accept(&buf.freeze()),
            Err(FrameError::Oversized(u32::MAX))
        );
    }

    #[test]
    fn checksum_valid_but_undecodable_payload_is_codec_error() {
        // A payload of a single 0xFF byte is a truncated varint: frame
        // integrity passes, synopsis decoding fails.
        let payload = [0xFFu8];
        let mut buf = BytesMut::new();
        buf.put_u16(7);
        buf.put_u64(0);
        buf.put_u64(0);
        buf.put_u32(payload.len() as u32);
        let crc = crc32(&[&buf[..], &payload]);
        buf.put_u32(crc);
        buf.extend_from_slice(&payload);
        let mut rx = FrameReceiver::new();
        assert_eq!(
            rx.accept(&buf.freeze()),
            Err(FrameError::Codec(DecodeError::UnexpectedEof))
        );
        assert_eq!(rx.corrupted_frames(), 1);
    }

    #[test]
    fn ancient_sequence_numbers_count_as_duplicates() {
        let mut rx = FrameReceiver::new();
        let mut tx = FrameSender::new(HostId(5));
        let old = tx.encode_frame(&batch(5, 0..1));
        // Fast-forward the sender far past the reorder horizon.
        for _ in 0..(REORDER_HORIZON + 10) {
            let f = tx.encode_frame(&[]);
            rx.accept(&f).unwrap();
        }
        assert!(matches!(
            rx.accept(&old),
            Ok(FrameOutcome::Duplicate { seq: 0, .. })
        ));
    }

    #[test]
    fn empty_batch_frame_is_header_only_and_advances_sequencing() {
        let mut tx = FrameSender::new(HostId(6));
        let mut rx = FrameReceiver::new();
        let empty = tx.encode_frame(&[]);
        // An empty batch costs exactly the header plus the payload of an
        // encoded zero-length batch.
        let payload_len = empty.len() - FRAME_HEADER_LEN;
        assert!(payload_len <= 4, "empty batch payload {payload_len} bytes");
        rx.accept(&empty).unwrap();
        // Sequencing still advances: a following lost frame is revealed.
        let lost = tx.encode_frame(&batch(6, 0..5));
        drop(lost);
        match rx.accept(&tx.encode_frame(&batch(6, 5..6))).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 5),
            other => panic!("unexpected: {other:?}"),
        }
        let stats = rx.stats(HostId(6));
        assert_eq!(stats.delivered_frames, 2);
        assert_eq!(stats.delivered_synopses, 1);
    }

    #[test]
    fn payload_length_exactly_at_bound_is_not_oversized() {
        // A header claiming exactly MAX_FRAME_PAYLOAD with a short actual
        // payload must fail as Truncated (length mismatch), not Oversized
        // — the bound check is exclusive of the maximum.
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        buf.put_u64(0);
        buf.put_u64(0);
        buf.put_u32(MAX_FRAME_PAYLOAD as u32);
        let crc = crc32(&[&buf[..]]);
        buf.put_u32(crc);
        let mut rx = FrameReceiver::new();
        assert_eq!(rx.accept(&buf.freeze()), Err(FrameError::Truncated));
        // One past the bound is rejected before any payload inspection.
        let mut buf = BytesMut::new();
        buf.put_u16(0);
        buf.put_u64(0);
        buf.put_u64(0);
        buf.put_u32(MAX_FRAME_PAYLOAD as u32 + 1);
        let crc = crc32(&[&buf[..]]);
        buf.put_u32(crc);
        assert_eq!(
            rx.accept(&buf.freeze()),
            Err(FrameError::Oversized(MAX_FRAME_PAYLOAD as u32 + 1))
        );
    }

    #[test]
    fn multi_megabyte_frame_round_trips() {
        // A realistically huge batch (~100k synopses, a few MB encoded)
        // survives the encode → CRC → decode round trip intact.
        let mut tx = FrameSender::new(HostId(8));
        let mut rx = FrameReceiver::new();
        let big = batch(8, 0..100_000);
        let frame = tx.encode_frame(&big);
        assert!(
            frame.len() > 1024 * 1024,
            "frame only {} bytes",
            frame.len()
        );
        assert!(frame.len() <= FRAME_HEADER_LEN + MAX_FRAME_PAYLOAD);
        match rx.accept(&frame).unwrap() {
            FrameOutcome::Fresh { synopses, .. } => assert_eq!(synopses, big),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(rx.stats(HostId(8)).delivered_synopses, 100_000);
    }

    #[test]
    fn parse_then_admit_equals_accept() {
        let mut tx_a = FrameSender::new(HostId(1));
        let mut tx_b = FrameSender::new(HostId(1));
        let mut via_accept = FrameReceiver::new();
        let mut via_admit = FrameReceiver::new();
        for uids in [0..3u64, 3..7, 7..8] {
            let fa = tx_a.encode_frame(&batch(1, uids.clone()));
            let fb = tx_b.encode_frame(&batch(1, uids));
            let a = via_accept.accept(&fa).unwrap();
            let b = via_admit.admit(parse_frame(&fb).unwrap());
            assert_eq!(a, b);
        }
        assert_eq!(via_accept.stats(HostId(1)), via_admit.stats(HostId(1)));
        // Parse rejections counted via record_corrupted keep parity too.
        assert!(parse_frame(&[0u8; 4]).is_err());
        via_admit.record_corrupted();
        assert_eq!(via_admit.corrupted_frames(), 1);
    }

    #[test]
    fn resume_adopts_sender_history_and_reports_only_the_known_gap() {
        // A sender framed 4 batches (20 synopses); the first 3 (15) were
        // written to a previous receiver incarnation, the 4th (5) never
        // reached a live socket. The restarted receiver is primed from the
        // handshake and the first post-resume frame reveals exactly the
        // 5-synopsis gap — not the 15 delivered to the predecessor.
        let mut tx = FrameSender::new(HostId(3));
        for uids in [0..5u64, 5..10, 10..15] {
            drop(tx.encode_frame(&batch(3, uids))); // delivered previously
        }
        drop(tx.encode_frame(&batch(3, 15..20))); // lost in transit
        let mut rx = FrameReceiver::new();
        rx.resume(HostId(3), 15, 20, tx.frames_sent());
        match rx.accept(&tx.encode_frame(&batch(3, 20..22))).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 5),
            other => panic!("unexpected: {other:?}"),
        }
        let stats = rx.stats(HostId(3));
        assert_eq!(stats.lost_synopses, 5);
        assert_eq!(stats.expected_synopses, 22);
        // A stray redelivery of the last pre-resume frame is a duplicate.
        let mut replay = FrameSender::new(HostId(3));
        for _ in 0..3 {
            replay.encode_frame(&[]);
        }
        let old = replay.encode_frame(&batch(3, 10..15));
        assert!(matches!(
            rx.accept(&old).unwrap(),
            FrameOutcome::Duplicate { seq: 3, .. }
        ));
    }

    #[test]
    fn resume_is_a_no_op_for_known_hosts_and_fresh_senders() {
        let mut tx = FrameSender::new(HostId(4));
        let mut rx = FrameReceiver::new();
        rx.accept(&tx.encode_frame(&batch(4, 0..3))).unwrap();
        let before = rx.stats(HostId(4));
        // Live state wins over the handshake's declaration.
        rx.resume(HostId(4), 0, 100, 50);
        assert_eq!(rx.stats(HostId(4)), before);
        // A sender that never framed anything needs no priming — and its
        // first frame (seq 0) must not be classified a duplicate.
        rx.resume(HostId(5), 0, 0, 0);
        let mut fresh = FrameSender::new(HostId(5));
        assert!(matches!(
            rx.accept(&fresh.encode_frame(&batch(5, 0..2))).unwrap(),
            FrameOutcome::Fresh { .. }
        ));
    }

    #[test]
    fn header_parse_and_crc_split_matches_parse_frame() {
        let mut tx = FrameSender::new(HostId(9));
        let frame = tx.encode_frame(&batch(9, 0..4));
        let whole = parse_frame(&frame).unwrap();
        let header = parse_frame_header(&frame[..FRAME_HEADER_LEN]).unwrap();
        assert_eq!(header.host, whole.host);
        assert_eq!(header.seq, whole.seq);
        assert_eq!(header.cumulative, whole.cumulative);
        assert_eq!(header.payload_len as usize, frame.len() - FRAME_HEADER_LEN);
        verify_frame_crc(&frame[..FRAME_HEADER_LEN], &frame[FRAME_HEADER_LEN..]).unwrap();

        // A flipped payload byte fails the split verify exactly like the
        // whole-frame parse.
        let mut bad = frame.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            verify_frame_crc(&bad[..FRAME_HEADER_LEN], &bad[FRAME_HEADER_LEN..]),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            parse_frame(&bad),
            Err(FrameError::ChecksumMismatch { .. })
        ));

        // Header-level bounds checks.
        assert_eq!(
            parse_frame_header(&frame[..FRAME_HEADER_LEN - 1]),
            Err(FrameError::Truncated)
        );
        let mut oversized = frame[..FRAME_HEADER_LEN].to_vec();
        oversized[18..22].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_be_bytes());
        assert_eq!(
            parse_frame_header(&oversized),
            Err(FrameError::Oversized(MAX_FRAME_PAYLOAD as u32 + 1))
        );
    }

    #[test]
    fn admit_meta_matches_admit_across_dup_loss_and_reorder() {
        // Drive two receivers through the same frame schedule — one via
        // admit (payload path), one via admit_meta (metadata path) — and
        // require identical stats and verdicts throughout.
        let mut tx = FrameSender::new(HostId(3));
        let mut frames: Vec<_> = (0..12)
            .map(|i| tx.encode_frame(&batch(3, 0..i % 4)))
            .collect();
        frames.swap(4, 6); // reorder
        frames.remove(9); // drop one (loss)
        let dup = frames[2].clone();
        frames.push(dup); // re-deliver (duplicate)

        let mut via_admit = FrameReceiver::new();
        let mut via_meta = FrameReceiver::new();
        for frame in &frames {
            let parsed = parse_frame(frame).unwrap();
            let count = parsed.synopses.len() as u64;
            let (host, seq, cum) = (parsed.host, parsed.seq, parsed.cumulative);
            let outcome = via_admit.admit(parsed);
            let decision = via_meta.admit_meta(host, seq, cum, count);
            match (&outcome, &decision) {
                (
                    FrameOutcome::Fresh { newly_lost, .. },
                    AdmitDecision::Fresh { newly_lost: m },
                ) => {
                    assert_eq!(newly_lost, m);
                }
                (FrameOutcome::Duplicate { .. }, AdmitDecision::Duplicate) => {}
                other => panic!("verdicts diverged: {other:?}"),
            }
        }
        assert_eq!(via_admit.stats(HostId(3)), via_meta.stats(HostId(3)));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn skip_surfaces_as_exact_loss_on_the_receiver() {
        // A re-framing forwarder skips 7 positions it never received; the
        // receiver's ordinary cum arithmetic reports exactly that gap.
        let mut tx = FrameSender::new(HostId(9));
        let mut rx = FrameReceiver::new();
        rx.accept(&tx.encode_frame(&batch(9, 0..4))).unwrap();
        tx.skip(7);
        assert_eq!(tx.synopses_sent(), 11);
        match rx.accept(&tx.encode_frame(&batch(9, 11..13))).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 7),
            other => panic!("unexpected: {other:?}"),
        }
        let stats = rx.stats(HostId(9));
        assert_eq!(stats.delivered_synopses, 6);
        assert_eq!(stats.expected_synopses, 13);
        assert_eq!(stats.lost_synopses, 7);
        // A trailing skip is revealed by an empty goodbye frame.
        tx.skip(3);
        match rx.accept(&tx.encode_frame(&[])).unwrap() {
            FrameOutcome::Fresh { newly_lost, .. } => assert_eq!(newly_lost, 3),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(rx.stats(HostId(9)).lost_synopses, 10);
    }

    #[test]
    fn digest_merge_sums_delivery_and_maxes_expectation() {
        // Two links forwarding disjoint spans of one host's stream in
        // global coordinates: delivered adds up, expected is the furthest
        // position either link has seen, loss is their difference.
        let mut merge = DigestMerge::new();
        let h = HostId(1);
        assert_eq!(merge.on_fresh(h, 10, 10), 0); // link A: positions 0..10
        assert_eq!(merge.on_fresh(h, 5, 25), 10); // link B: 20..25 → 10 missing
        let s = merge.stats(h);
        assert_eq!(s.delivered_synopses, 15);
        assert_eq!(s.expected_synopses, 25);
        assert_eq!(s.lost_synopses, 10);
        assert_eq!(s.delivered_frames, 2);
        assert_eq!(merge.total_lost(), 10);
        // The gap filled in late on link A: delivery catches up, the
        // incremental report was conservative, final stats are exact.
        assert_eq!(merge.on_fresh(h, 10, 20), 0);
        assert_eq!(merge.stats(h).lost_synopses, 0);
        assert_eq!(merge.total_lost(), 0);
    }

    #[test]
    fn digest_merge_accounts_failover_exactly() {
        // Leaf A delivers positions 0..100 then dies holding 40 buffered
        // synopses; the host re-homes to leaf B, whose first digest starts
        // at global position 140. The merge reports the 40 dead-leaf
        // synopses as one gap, exactly once, with no duplicates.
        let mut merge = DigestMerge::new();
        let h = HostId(7);
        assert_eq!(merge.on_fresh(h, 60, 60), 0);
        assert_eq!(merge.on_fresh(h, 40, 100), 0);
        assert_eq!(merge.on_fresh(h, 10, 150), 40); // leaf B: 140..150
        assert_eq!(merge.on_fresh(h, 20, 170), 0); // leaf B keeps flowing
        let s = merge.stats(h);
        assert_eq!(s.delivered_synopses, 130);
        assert_eq!(s.expected_synopses, 170);
        assert_eq!(s.lost_synopses, 40);
        merge.on_duplicate(h);
        assert_eq!(merge.stats(h).duplicate_frames, 1);
        assert_eq!(merge.stats(h).lost_synopses, 40, "dup changes nothing");
        assert_eq!(merge.all_stats().count(), 1);
    }

    #[test]
    fn digest_merge_keeps_hosts_independent() {
        let mut merge = DigestMerge::new();
        assert_eq!(merge.on_fresh(HostId(1), 5, 5), 0);
        assert_eq!(merge.on_fresh(HostId(2), 3, 9), 6);
        assert_eq!(merge.stats(HostId(1)).lost_synopses, 0);
        assert_eq!(merge.stats(HostId(2)).lost_synopses, 6);
        assert_eq!(merge.stats(HostId(3)), LinkStats::default());
        assert_eq!(merge.total_lost(), 6);
    }
}
