//! Meta-monitoring: SAAD's own pipeline stages run as tracked stages.
//!
//! The paper's design applied reflexively: the analyzer pool's router
//! ticks, shard batch applications, checkpoint writes, and metrics
//! scrapes are each delimited as a task on a dedicated
//! [`TaskExecutionTracker`] (host [`MetaMonitor::HOST`], one synthetic
//! stage per pipeline component, two synthetic log points per tick).
//! The resulting synopses flow into any [`SynopsisSink`] — typically a
//! second detector — so SAAD can flag flow and performance anomalies
//! *in itself*: a stalled checkpoint writer shows up exactly like a
//! frozen memtable on a monitored host.

use crate::tracker::{SynopsisSink, TaskExecutionTracker};
use crate::{HostId, StageId};
use saad_logging::{Interceptor, Level, LogPointId};
use saad_obs::ScrapeObserver;
use saad_sim::Clock;
use std::fmt;
use std::sync::Arc;

/// A pipeline component whose ticks the meta-monitor tracks as tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaStage {
    /// One Prometheus scrape served by the exposition server.
    Scrape,
    /// One input batch routed (watermark stamping + shard split).
    Router,
    /// One sub-batch applied by a shard worker's detector.
    Shard,
    /// One checkpoint written durably to the store.
    Checkpoint,
}

impl MetaStage {
    /// All meta stages, in stage-id order.
    pub const ALL: [MetaStage; 4] = [
        MetaStage::Scrape,
        MetaStage::Router,
        MetaStage::Shard,
        MetaStage::Checkpoint,
    ];

    /// The synthetic stage id this component's tasks carry. The ids sit
    /// just below [`StageId::NONE`] so they can never collide with a
    /// monitored server's real stages.
    pub fn stage_id(self) -> StageId {
        match self {
            MetaStage::Scrape => StageId(u16::MAX - 5),
            MetaStage::Router => StageId(u16::MAX - 4),
            MetaStage::Shard => StageId(u16::MAX - 3),
            MetaStage::Checkpoint => StageId(u16::MAX - 2),
        }
    }

    /// Synthetic log point visited when a tick starts.
    fn start_point(self) -> LogPointId {
        LogPointId(0xFF00 + 2 * self as u16)
    }

    /// Synthetic log point visited when a tick's work is done (its
    /// timestamp is the task duration's endpoint, per the paper).
    fn done_point(self) -> LogPointId {
        LogPointId(0xFF01 + 2 * self as u16)
    }
}

/// Runs SAAD's own pipeline stages as tracked stages.
///
/// Each [`MetaMonitor::tick`] delimits one component iteration: stage
/// delimiter, a start log point, the component's work, a done log
/// point, termination. Tasks live in thread-local storage (exactly as
/// for monitored servers), so the router thread, every shard worker,
/// the checkpoint writer, and the scrape thread can share one monitor
/// without interference.
///
/// The monitor also implements [`ScrapeObserver`], turning every
/// exposition-server scrape into a tracked [`MetaStage::Scrape`] task.
pub struct MetaMonitor {
    tracker: Arc<TaskExecutionTracker>,
}

impl fmt::Debug for MetaMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetaMonitor")
            .field("ticks", &self.ticks())
            .finish()
    }
}

impl MetaMonitor {
    /// The host id meta synopses carry — reserved just below the id
    /// space real deployments use, so the self-observation stream can
    /// share a detector with monitored traffic without colliding.
    pub const HOST: HostId = HostId(u16::MAX - 1);

    /// Create a meta-monitor timestamping with `clock` and emitting
    /// tick synopses to `sink`.
    pub fn new(clock: Arc<dyn Clock>, sink: Arc<dyn SynopsisSink>) -> MetaMonitor {
        MetaMonitor {
            tracker: Arc::new(TaskExecutionTracker::new(MetaMonitor::HOST, clock, sink)),
        }
    }

    /// Run one component iteration as a tracked task: delimit, visit
    /// the start point, run `work`, visit the done point, terminate.
    pub fn tick<R>(&self, stage: MetaStage, work: impl FnOnce() -> R) -> R {
        self.tracker.set_context(stage.stage_id());
        self.tracker.on_log_point(stage.start_point(), Level::Debug);
        let out = work();
        self.tracker.on_log_point(stage.done_point(), Level::Debug);
        self.tracker.end_task();
        out
    }

    /// Total ticks completed (meta synopses emitted).
    pub fn ticks(&self) -> u64 {
        self.tracker.completed()
    }

    /// The underlying tracker (e.g. to register its bookkeeping
    /// counters as metrics).
    pub fn tracker(&self) -> &Arc<TaskExecutionTracker> {
        &self.tracker
    }
}

impl ScrapeObserver for MetaMonitor {
    fn scrape_started(&self) {
        let stage = MetaStage::Scrape;
        self.tracker.set_context(stage.stage_id());
        self.tracker.on_log_point(stage.start_point(), Level::Debug);
    }

    fn scrape_finished(&self, _bytes: usize) {
        let stage = MetaStage::Scrape;
        self.tracker.on_log_point(stage.done_point(), Level::Debug);
        self.tracker.end_task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::VecSink;
    use saad_sim::ManualClock;
    use saad_sim::SimTime;

    fn monitor() -> (MetaMonitor, Arc<VecSink>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let monitor = MetaMonitor::new(
            clock.clone() as Arc<dyn Clock>,
            sink.clone() as Arc<dyn SynopsisSink>,
        );
        (monitor, sink, clock)
    }

    #[test]
    fn tick_emits_one_synopsis_per_iteration() {
        let (monitor, sink, clock) = monitor();
        let out = monitor.tick(MetaStage::Router, || {
            clock.set(SimTime::from_micros(250));
            42
        });
        assert_eq!(out, 42);
        let s = sink.drain();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].host, MetaMonitor::HOST);
        assert_eq!(s[0].stage, MetaStage::Router.stage_id());
        assert_eq!(s[0].duration.as_micros(), 250);
        assert_eq!(s[0].log_points.len(), 2);
        assert_eq!(monitor.ticks(), 1);
    }

    #[test]
    fn stage_ids_are_distinct_and_reserved() {
        let mut ids: Vec<u16> = MetaStage::ALL.iter().map(|s| s.stage_id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
        for id in ids {
            assert!(
                id > u16::MAX - 8,
                "meta stage ids live at the top of the space"
            );
            assert_ne!(StageId(id), StageId::NONE);
        }
    }

    #[test]
    fn scrape_observer_brackets_a_task() {
        let (monitor, sink, clock) = monitor();
        monitor.scrape_started();
        clock.set(SimTime::from_micros(90));
        monitor.scrape_finished(1024);
        let s = sink.drain();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].stage, MetaStage::Scrape.stage_id());
        assert_eq!(s[0].duration.as_micros(), 90);
    }

    #[test]
    fn ticks_on_many_threads_do_not_interfere() {
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(VecSink::new());
        let monitor = Arc::new(MetaMonitor::new(
            clock as Arc<dyn Clock>,
            sink.clone() as Arc<dyn SynopsisSink>,
        ));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&monitor);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.tick(MetaStage::Shard, || {});
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(monitor.ticks(), 400);
        assert_eq!(sink.len(), 400);
    }
}
