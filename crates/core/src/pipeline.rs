//! Real-time streaming pipeline: tracker → channel → analyzer thread.
//!
//! In the paper, synopses are streamed from every node to a centralized
//! statistical analyzer that handles "streams of task synopses as fast as
//! they are generated, up to ... 1500 task synopses per second" on one
//! core. This module provides that wiring for the live (threaded) runtime:
//! a [`ChannelSink`] for trackers and an analyzer thread that classifies,
//! windows, and emits [`AnomalyEvent`]s in real time.
//!
//! # Robustness
//!
//! Monitoring must never take the server down, and it must never lie about
//! what it saw. Three mechanisms enforce that:
//!
//! * **Bounded backpressure** — [`ChannelSink::bounded`] caps the queue
//!   between trackers and the analyzer; an [`OverloadPolicy`] decides what
//!   happens when it fills. Every dropped synopsis is counted per host in
//!   [`SinkStats`]; nothing is discarded silently.
//! * **Supervision** — [`spawn_supervised_analyzer`] wraps the detector in
//!   a panic boundary: a crash restores the detector from its latest
//!   snapshot, replays the synopses seen since, skips the poison synopsis,
//!   and keeps going (up to [`SupervisorConfig::max_restarts`]).
//! * **Liveness** — the supervisor tracks when each host last produced a
//!   synopsis; a host silent for more than
//!   [`SupervisorConfig::silent_after`] detection windows raises an
//!   [`AnomalyKind::HostSilent`] event, so a dead link is an explicit
//!   anomaly instead of a quiet gap in the data.
//!
//! # Scale-out
//!
//! [`spawn_analyzer_pool`] shards the analyzer across worker threads by
//! `hash(host, stage)`: since all windowed detector state is keyed per
//! `(host, stage)`, sharding preserves the single-threaded event stream
//! exactly (as a multiset). Shards share one [`SignatureInterner`] and one
//! compiled model, keep the same supervision semantics per shard, and
//! receive whole batches in a single channel send (see [`feed_frame`] for
//! the transport glue).

use crate::batch::SynopsisBatch;
use crate::detector::{
    AnomalyDetector, AnomalyEvent, AnomalyKind, DetectorConfig, DetectorSnapshot,
};
use crate::feature::{FeatureVector, InternedFeature};
use crate::intern::{SigId, SignatureInterner};
use crate::model::{
    CompiledModel, ConfigError, ModelBuilder, ModelConfig, OutlierModel, VerdictMask,
};
use crate::selfmon::{MetaMonitor, MetaStage};
use crate::store::{Checkpoint, CheckpointError, CheckpointStore};
use crate::synopsis::TaskSynopsis;
use crate::tracker::SynopsisSink;
use crate::transport::{FrameOutcome, LossReport};
use crate::Signature;
use crate::{HostId, StageId};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use saad_obs::{Histogram, Registry};
use saad_sim::{SimDuration, SimTime};
use saad_stats::{DecayedFrequency, PageHinkley, QuantileSketch};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a bounded [`ChannelSink`] does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Discard the synopsis being submitted (the newest). The producer
    /// never waits.
    DropNewest,
    /// Evict the oldest queued synopsis to make room. The producer never
    /// waits; the analyzer sees the freshest data.
    DropOldest,
    /// Wait up to `timeout` for space, then discard the synopsis. Bounds
    /// how long monitoring may ever stall a server thread.
    Block {
        /// Longest a single submit may wait for queue space.
        timeout: Duration,
    },
}

/// Exact counts of synopses a sink dropped, by reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Dropped by [`OverloadPolicy::DropNewest`] (or bounded-retry
    /// exhaustion under [`OverloadPolicy::DropOldest`]).
    pub newest: u64,
    /// Evicted by [`OverloadPolicy::DropOldest`].
    pub oldest: u64,
    /// Timed out under [`OverloadPolicy::Block`].
    pub timed_out: u64,
    /// Discarded because the analyzer is gone.
    pub disconnected: u64,
}

impl DropCounts {
    /// Sum over all reasons.
    pub fn total(&self) -> u64 {
        self.newest + self.oldest + self.timed_out + self.disconnected
    }
}

/// Per-host drop counters, updated lock-free once allocated. Producers on
/// different hosts never contend on a shared mutex; each reason is a plain
/// relaxed atomic increment.
#[derive(Debug, Default)]
struct HostDropCounters {
    newest: AtomicU64,
    oldest: AtomicU64,
    timed_out: AtomicU64,
    disconnected: AtomicU64,
}

impl HostDropCounters {
    fn snapshot(&self) -> DropCounts {
        DropCounts {
            newest: self.newest.load(Ordering::Relaxed),
            oldest: self.oldest.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            disconnected: self.disconnected.load(Ordering::Relaxed),
        }
    }
}

/// Shared, exact drop accounting for one sink (and its clones).
///
/// The per-host table takes a write lock only the first time a host drops
/// anything; every subsequent drop is a read-lock plus one relaxed atomic
/// add, so overloaded producers do not serialize on a global mutex.
#[derive(Debug, Default)]
pub struct SinkStats {
    total: AtomicU64,
    by_host: parking_lot::RwLock<HashMap<HostId, Arc<HostDropCounters>>>,
}

impl SinkStats {
    fn counters(&self, host: HostId) -> Arc<HostDropCounters> {
        if let Some(c) = self.by_host.read().get(&host) {
            return c.clone();
        }
        self.by_host.write().entry(host).or_default().clone()
    }

    fn record(&self, host: HostId, bump: impl FnOnce(&HostDropCounters)) {
        self.total.fetch_add(1, Ordering::Relaxed);
        bump(&self.counters(host));
    }

    /// Total synopses dropped, all hosts and reasons.
    pub fn dropped(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Per-host drop counts.
    pub fn drops_by_host(&self) -> HashMap<HostId, DropCounts> {
        self.by_host
            .read()
            .iter()
            .map(|(&host, c)| (host, c.snapshot()))
            .collect()
    }

    /// Drop counts for one host (zeroes if nothing was dropped).
    pub fn drops_for(&self, host: HostId) -> DropCounts {
        self.by_host
            .read()
            .get(&host)
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    /// Drop counts summed over every host, broken down by reason.
    pub fn drop_totals(&self) -> DropCounts {
        self.by_host
            .read()
            .values()
            .map(|c| c.snapshot())
            .fold(DropCounts::default(), |acc, c| DropCounts {
                newest: acc.newest + c.newest,
                oldest: acc.oldest + c.oldest,
                timed_out: acc.timed_out + c.timed_out,
                disconnected: acc.disconnected + c.disconnected,
            })
    }

    /// Total drops behind an optionally attached stats handle — the one
    /// shared helper for consumer-side handles ([`AnalyzerHandle`],
    /// [`PoolHandle`]) that may or may not have stats attached.
    pub fn dropped_of(stats: Option<&Arc<SinkStats>>) -> u64 {
        stats.map_or(0, |s| s.dropped())
    }

    /// Per-host drop counts behind an optionally attached stats handle;
    /// empty when none is attached. Companion of
    /// [`SinkStats::dropped_of`].
    pub fn drops_by_host_of(stats: Option<&Arc<SinkStats>>) -> HashMap<HostId, DropCounts> {
        stats.map(|s| s.drops_by_host()).unwrap_or_default()
    }

    /// Expose this sink's drop accounting in `registry`, one counter
    /// series per drop reason, labelled with the queue name. Scrape-time
    /// only: the hot drop path is untouched.
    pub fn register_metrics(self: &Arc<Self>, registry: &Registry, queue: &str) {
        const NAME: &str = "saad_sink_dropped_total";
        const HELP: &str = "Synopses dropped by a bounded sink, by reason";
        let stats = Arc::clone(self);
        registry.register_counter_fn(NAME, HELP, &[("queue", queue), ("reason", "newest")], {
            move || stats.drop_totals().newest
        });
        let stats = Arc::clone(self);
        registry.register_counter_fn(NAME, HELP, &[("queue", queue), ("reason", "oldest")], {
            move || stats.drop_totals().oldest
        });
        let stats = Arc::clone(self);
        registry.register_counter_fn(NAME, HELP, &[("queue", queue), ("reason", "timed_out")], {
            move || stats.drop_totals().timed_out
        });
        let stats = Arc::clone(self);
        registry.register_counter_fn(
            NAME,
            HELP,
            &[("queue", queue), ("reason", "disconnected")],
            move || stats.drop_totals().disconnected,
        );
    }
}

/// A [`SynopsisSink`] that streams synopses over a channel to the analyzer.
///
/// [`ChannelSink::new`] gives the paper's unbounded queue;
/// [`ChannelSink::bounded`] adds backpressure with a chosen
/// [`OverloadPolicy`]. In both cases every synopsis that does not reach
/// the queue is counted in [`SinkStats`] — dropping is a measured,
/// observable act, never a silent one.
#[derive(Debug, Clone)]
pub struct ChannelSink {
    tx: Sender<TaskSynopsis>,
    /// Receiver clone used to evict under [`OverloadPolicy::DropOldest`].
    evict: Option<Receiver<TaskSynopsis>>,
    policy: Option<OverloadPolicy>,
    stats: Arc<SinkStats>,
}

/// Bound on eviction retries under [`OverloadPolicy::DropOldest`] before a
/// submit gives up and counts the synopsis as a newest-drop.
const DROP_OLDEST_RETRIES: usize = 64;

impl ChannelSink {
    /// Create an unbounded sink/receiver pair. Submits never block and
    /// never drop while the analyzer lives; if the analyzer is gone the
    /// synopsis is counted as a disconnected drop.
    pub fn new() -> (ChannelSink, Receiver<TaskSynopsis>) {
        let (tx, rx) = unbounded();
        (
            ChannelSink {
                tx,
                evict: None,
                policy: None,
                stats: Arc::new(SinkStats::default()),
            },
            rx,
        )
    }

    /// Create a bounded sink/receiver pair holding at most `capacity`
    /// queued synopses, resolving overload with `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(
        capacity: usize,
        policy: OverloadPolicy,
    ) -> (ChannelSink, Receiver<TaskSynopsis>) {
        assert!(capacity > 0, "sink capacity must be positive");
        let (tx, rx) = bounded(capacity);
        let evict = matches!(policy, OverloadPolicy::DropOldest).then(|| rx.clone());
        (
            ChannelSink {
                tx,
                evict,
                policy: Some(policy),
                stats: Arc::new(SinkStats::default()),
            },
            rx,
        )
    }

    /// Shared drop statistics (live — counts keep updating).
    pub fn stats(&self) -> Arc<SinkStats> {
        self.stats.clone()
    }

    /// Total synopses this sink (and its clones) dropped.
    pub fn dropped(&self) -> u64 {
        self.stats.dropped()
    }

    /// Per-host drop counts.
    pub fn drops_by_host(&self) -> HashMap<HostId, DropCounts> {
        self.stats.drops_by_host()
    }

    /// Expose this sink's queue depth and drop accounting in `registry`
    /// under the given queue name. `rx` is the receiver half returned
    /// alongside this sink — a clone of it measures depth without ever
    /// consuming a message, and extra receiver clones do not keep the
    /// analyzer alive once every sender is gone.
    pub fn register_metrics(&self, registry: &Registry, queue: &str, rx: &Receiver<TaskSynopsis>) {
        let depth = rx.clone();
        registry.register_gauge_fn(
            "saad_sink_queue_depth",
            "Synopses queued between producers and the analyzer",
            &[("queue", queue)],
            move || depth.len() as i64,
        );
        self.stats.register_metrics(registry, queue);
    }

    fn submit_bounded(&self, policy: OverloadPolicy, synopsis: TaskSynopsis) {
        match policy {
            OverloadPolicy::DropNewest => match self.tx.try_send(synopsis) {
                Ok(()) => {}
                Err(TrySendError::Full(s)) => self.stats.record(s.host, |c| {
                    c.newest.fetch_add(1, Ordering::Relaxed);
                }),
                Err(TrySendError::Disconnected(s)) => self.stats.record(s.host, |c| {
                    c.disconnected.fetch_add(1, Ordering::Relaxed);
                }),
            },
            OverloadPolicy::DropOldest => {
                let evict = self.evict.as_ref().expect("DropOldest sink has receiver");
                let mut synopsis = synopsis;
                for _ in 0..DROP_OLDEST_RETRIES {
                    match self.tx.try_send(synopsis) {
                        Ok(()) => return,
                        Err(TrySendError::Full(s)) => {
                            synopsis = s;
                            if let Ok(old) = evict.try_recv() {
                                self.stats.record(old.host, |c| {
                                    c.oldest.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        }
                        Err(TrySendError::Disconnected(s)) => {
                            self.stats.record(s.host, |c| {
                                c.disconnected.fetch_add(1, Ordering::Relaxed);
                            });
                            return;
                        }
                    }
                }
                // Pathological contention: other producers refilled the
                // slot we evicted, every time. Give up on this synopsis.
                self.stats.record(synopsis.host, |c| {
                    c.newest.fetch_add(1, Ordering::Relaxed);
                });
            }
            OverloadPolicy::Block { timeout } => match self.tx.send_timeout(synopsis, timeout) {
                Ok(()) => {}
                Err(crossbeam_channel::SendTimeoutError::Timeout(s)) => {
                    self.stats.record(s.host, |c| {
                        c.timed_out.fetch_add(1, Ordering::Relaxed);
                    })
                }
                Err(crossbeam_channel::SendTimeoutError::Disconnected(s)) => {
                    self.stats.record(s.host, |c| {
                        c.disconnected.fetch_add(1, Ordering::Relaxed);
                    })
                }
            },
        }
    }
}

impl SynopsisSink for ChannelSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        match self.policy {
            None => {
                // Unbounded: only a dead analyzer can refuse the synopsis.
                if let Err(e) = self.tx.send(synopsis) {
                    self.stats.record(e.0.host, |c| {
                        c.disconnected.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            Some(policy) => self.submit_bounded(policy, synopsis),
        }
    }
}

/// A [`SynopsisSink`] that accumulates synopses into SoA
/// [`SynopsisBatch`]es and emits ONE channel send per full batch — the
/// producer half of the batch-first hot path (pair the receiver with
/// [`spawn_batch_analyzer_pool`], sharing the same interner).
///
/// Interning happens here, at the edge, so everything downstream works in
/// dense column arrays. Dropping the sink flushes the partial batch;
/// [`BatchSink::flush`] forces one out early (e.g. at a quiesce point).
#[derive(Debug)]
pub struct BatchSink {
    tx: Sender<SynopsisBatch>,
    interner: Arc<SignatureInterner>,
    capacity: usize,
    buf: parking_lot::Mutex<SynopsisBatch>,
}

impl BatchSink {
    /// Create a sink batching `capacity` synopses per send, interning
    /// into `interner`, plus the receiver for the batch stream.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(
        capacity: usize,
        interner: Arc<SignatureInterner>,
    ) -> (BatchSink, Receiver<SynopsisBatch>) {
        assert!(capacity > 0, "batch capacity must be positive");
        let (tx, rx) = unbounded();
        let sink = BatchSink {
            tx,
            interner,
            capacity,
            buf: parking_lot::Mutex::new(SynopsisBatch::with_capacity(capacity)),
        };
        (sink, rx)
    }

    /// Send whatever is buffered, even a partial batch. No send happens
    /// when the buffer is empty.
    pub fn flush(&self) {
        let mut buf = self.buf.lock();
        if buf.is_empty() {
            return;
        }
        let full = std::mem::replace(&mut *buf, SynopsisBatch::with_capacity(self.capacity));
        let _ = self.tx.send(full);
    }
}

impl SynopsisSink for BatchSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        let mut buf = self.buf.lock();
        buf.push_synopsis(&synopsis, &self.interner);
        if buf.len() >= self.capacity {
            let full = std::mem::replace(&mut *buf, SynopsisBatch::with_capacity(self.capacity));
            let _ = self.tx.send(full);
        }
    }
}

impl Drop for BatchSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A sink that feeds synopses straight into a [`crate::model::ModelBuilder`] —
/// train from a simulated run without buffering millions of synopses.
#[derive(Debug, Default)]
pub struct ModelSink {
    builder: parking_lot::Mutex<crate::model::ModelBuilder>,
}

impl ModelSink {
    /// Create a sink over an empty builder.
    pub fn new() -> ModelSink {
        ModelSink::default()
    }

    /// Number of synopses observed.
    pub fn observed(&self) -> u64 {
        self.builder.lock().observed()
    }

    /// Build the model from everything observed so far.
    pub fn build(&self, config: crate::model::ModelConfig) -> OutlierModel {
        self.builder.lock().build(config)
    }
}

impl SynopsisSink for ModelSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        self.builder.lock().observe(&synopsis);
    }
}

/// A sink that classifies and windows synopses inline — the single-threaded
/// analogue of the analyzer thread, used by the deterministic simulators.
#[derive(Debug)]
pub struct DetectorSink {
    detector: parking_lot::Mutex<AnomalyDetector>,
    events: parking_lot::Mutex<Vec<AnomalyEvent>>,
}

impl DetectorSink {
    /// Create a sink over a fresh detector.
    pub fn new(model: Arc<OutlierModel>, config: DetectorConfig) -> DetectorSink {
        DetectorSink {
            detector: parking_lot::Mutex::new(AnomalyDetector::new(model, config)),
            events: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Flush remaining windows and return every event detected.
    pub fn finish(self) -> Vec<AnomalyEvent> {
        let mut events = self.events.into_inner();
        events.extend(self.detector.into_inner().flush());
        events
    }

    /// Events detected so far (without flushing open windows).
    pub fn events_so_far(&self) -> Vec<AnomalyEvent> {
        self.events.lock().clone()
    }

    /// Synopses observed so far.
    pub fn tasks_seen(&self) -> u64 {
        self.detector.lock().tasks_seen()
    }
}

impl SynopsisSink for DetectorSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        let feature = FeatureVector::from(&synopsis);
        let new_events = self.detector.lock().observe(&feature);
        if !new_events.is_empty() {
            self.events.lock().extend(new_events);
        }
    }
}

/// Why an analyzer thread failed to return a detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzerError {
    /// The analyzer thread panicked (unsupervised, or outside the panic
    /// boundary).
    Panicked(String),
    /// A supervised analyzer exhausted its restart budget.
    RestartsExhausted {
        /// Restarts consumed before giving up.
        restarts: u32,
        /// Message of the final panic.
        panic: String,
    },
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Panicked(msg) => write!(f, "analyzer thread panicked: {msg}"),
            AnalyzerError::RestartsExhausted { restarts, panic } => write!(
                f,
                "analyzer gave up after {restarts} restart(s); last panic: {panic}"
            ),
        }
    }
}

impl std::error::Error for AnalyzerError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Handle to a running analyzer thread.
#[derive(Debug)]
pub struct AnalyzerHandle {
    events: Receiver<AnomalyEvent>,
    processed: Arc<AtomicU64>,
    restarts: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
    sink_stats: Option<Arc<SinkStats>>,
    join: Option<JoinHandle<Result<AnomalyDetector, AnalyzerError>>>,
}

impl AnalyzerHandle {
    /// Attach the sink's drop statistics so producers' losses are visible
    /// from the consumer side.
    pub fn with_sink_stats(mut self, stats: Arc<SinkStats>) -> AnalyzerHandle {
        self.sink_stats = Some(stats);
        self
    }

    /// Receiver of detected anomaly events.
    pub fn events(&self) -> &Receiver<AnomalyEvent> {
        &self.events
    }

    /// Synopses received by the analyzer so far (including any skipped
    /// after a supervised restart).
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Times a supervised analyzer restarted after a panic (0 for
    /// [`spawn_analyzer`]).
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Poison synopses a supervised analyzer skipped (0 for
    /// [`spawn_analyzer`]).
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Synopses dropped by the attached sink (0 unless
    /// [`AnalyzerHandle::with_sink_stats`] was used).
    pub fn dropped(&self) -> u64 {
        SinkStats::dropped_of(self.sink_stats.as_ref())
    }

    /// Per-host drop counts from the attached sink (empty unless
    /// [`AnalyzerHandle::with_sink_stats`] was used).
    pub fn drops_by_host(&self) -> HashMap<HostId, DropCounts> {
        SinkStats::drops_by_host_of(self.sink_stats.as_ref())
    }

    /// Drain any events currently queued without blocking.
    pub fn drain_events(&self) -> Vec<AnomalyEvent> {
        let mut out = Vec::new();
        while let Ok(e) = self.events.try_recv() {
            out.push(e);
        }
        out
    }

    /// Wait for the analyzer to finish (all sinks dropped), returning the
    /// detector for inspection. Remaining windows are flushed first.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzerError::Panicked`] if the analyzer thread died, or
    /// [`AnalyzerError::RestartsExhausted`] if a supervised analyzer ran
    /// out of restarts.
    pub fn join(mut self) -> Result<AnomalyDetector, AnalyzerError> {
        match self.join.take().expect("join called once").join() {
            Ok(result) => result,
            Err(payload) => Err(AnalyzerError::Panicked(panic_message(payload.as_ref()))),
        }
    }
}

/// Spawn the analyzer thread over a synopsis stream.
///
/// The thread runs until every [`ChannelSink`] clone feeding `rx` is
/// dropped, then flushes remaining windows and exits.
///
/// # Example
///
/// ```
/// use saad_core::pipeline::{spawn_analyzer, ChannelSink};
/// use saad_core::prelude::*;
/// use std::sync::Arc;
///
/// let model = Arc::new(ModelBuilder::new().build(ModelConfig::default()));
/// let (sink, rx) = ChannelSink::new();
/// let handle = spawn_analyzer(model, DetectorConfig::default(), rx);
/// drop(sink); // close the stream
/// let detector = handle.join().expect("analyzer ran to completion");
/// assert_eq!(detector.tasks_seen(), 0);
/// ```
pub fn spawn_analyzer(
    model: Arc<OutlierModel>,
    config: DetectorConfig,
    rx: Receiver<TaskSynopsis>,
) -> AnalyzerHandle {
    let (event_tx, event_rx) = unbounded();
    let processed = Arc::new(AtomicU64::new(0));
    let processed_inner = processed.clone();
    let join = std::thread::Builder::new()
        .name("saad-analyzer".into())
        .spawn(move || {
            let mut detector = AnomalyDetector::new(model, config);
            for synopsis in rx.iter() {
                processed_inner.fetch_add(1, Ordering::Relaxed);
                let feature = FeatureVector::from(&synopsis);
                for event in detector.observe(&feature) {
                    let _ = event_tx.send(event);
                }
            }
            for event in detector.flush() {
                let _ = event_tx.send(event);
            }
            Ok(detector)
        })
        .expect("spawn analyzer thread");
    AnalyzerHandle {
        events: event_rx,
        processed,
        restarts: Arc::new(AtomicU64::new(0)),
        skipped: Arc::new(AtomicU64::new(0)),
        sink_stats: None,
        join: Some(join),
    }
}

/// Tuning for [`spawn_supervised_analyzer`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Snapshot the detector every this many successfully observed
    /// synopses; bounds how much work a restart replays.
    pub snapshot_every: u64,
    /// Restarts allowed before the supervisor gives up with
    /// [`AnalyzerError::RestartsExhausted`].
    pub max_restarts: u32,
    /// A host with no synopses for more than this many detection windows
    /// (while other hosts advance the stream clock) raises
    /// [`AnomalyKind::HostSilent`].
    pub silent_after: u64,
    /// Deterministic fault-injection hook: panic inside the supervised
    /// region while processing the Nth synopsis (1-based). `None` in
    /// production.
    pub panic_after: Option<u64>,
    /// Pin each pool shard thread to the logical CPU matching its shard
    /// index (see [`crate::affinity::pin_current_thread`]). Strictly an
    /// optimization — keeps per-shard window maps cache-resident — and a
    /// refused pin (unsupported platform, seccomp, too few CPUs) silently
    /// falls back to normal scheduling with identical semantics.
    pub pin_shards: bool,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            snapshot_every: 256,
            max_restarts: 3,
            silent_after: 3,
            panic_after: None,
            pin_shards: false,
        }
    }
}

fn host_silent_event(host: HostId, last_seen: SimTime, windows: u64) -> AnomalyEvent {
    AnomalyEvent {
        host,
        stage: StageId::NONE,
        window_start: last_seen,
        kind: AnomalyKind::HostSilent { windows },
        p_value: None,
        outliers: 0,
        window_tasks: 0,
        completeness: 0.0,
    }
}

/// Per-host liveness bookkeeping for the supervisor. Kept outside the
/// panic boundary so a detector crash cannot corrupt it.
#[derive(Debug, Default)]
struct LivenessTracker {
    last_seen: HashMap<HostId, SimTime>,
    flagged: HashSet<HostId>,
    watermark: SimTime,
    /// Detection-window index of the last full silence scan. The
    /// all-hosts sweep is O(hosts), so it runs once per window boundary
    /// instead of once per synopsis: the silence threshold is a whole
    /// number of windows, and crossing it is only observable at window
    /// granularity anyway.
    scanned_window: u64,
}

impl LivenessTracker {
    /// Note a synopsis from `host` at stream time `at`; returns events for
    /// hosts that crossed the silence threshold. Per synopsis this is two
    /// O(1) map touches; the all-hosts silence sweep runs only when the
    /// stream watermark crosses into a new detection window.
    fn observe(
        &mut self,
        host: HostId,
        at: SimTime,
        window: saad_sim::SimDuration,
        silent_after: u64,
    ) -> Vec<AnomalyEvent> {
        self.last_seen.insert(host, at);
        self.flagged.remove(&host); // re-arm: the host is back
        let mut events = Vec::new();
        if at > self.watermark {
            self.watermark = at;
            let window_us = window.as_micros().max(1);
            let index = at.as_micros() / window_us;
            if index > self.scanned_window {
                self.scanned_window = index;
                let threshold = window_us.saturating_mul(silent_after);
                for (&h, &seen) in &self.last_seen {
                    if self.flagged.contains(&h) {
                        continue;
                    }
                    let silent_for = self.watermark.as_micros().saturating_sub(seen.as_micros());
                    if silent_for > threshold {
                        self.flagged.insert(h);
                        events.push(host_silent_event(h, seen, silent_for / window_us));
                    }
                }
            }
        }
        events
    }
}

/// The supervised detector core shared by [`spawn_supervised_analyzer`]
/// and the shard workers of [`spawn_analyzer_pool`]: a detector behind a
/// panic boundary with snapshot/replay recovery and poison-pill skipping.
///
/// Liveness tracking stays with the caller — it must see the full stream
/// (the pool's router does; a shard only sees its slice).
struct SupervisedDetector {
    detector: AnomalyDetector,
    snapshot: DetectorSnapshot,
    // Everything successfully applied since `snapshot` — each feature
    // with the global-stream watermark in force when it was observed —
    // for replay after a restart. Events from replay are suppressed
    // (they were already emitted before the crash). Kept in SoA form so
    // the batch hot path records a whole batch as column memcpys.
    replay: SynopsisBatch,
    replay_losses: Vec<LossReport>,
    supervisor: SupervisorConfig,
    restarts_used: u32,
    received: u64,
    restarts: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
}

impl SupervisedDetector {
    fn new(
        detector: AnomalyDetector,
        supervisor: SupervisorConfig,
        restarts: Arc<AtomicU64>,
        skipped: Arc<AtomicU64>,
    ) -> SupervisedDetector {
        let snapshot = detector.snapshot();
        SupervisedDetector {
            detector,
            snapshot,
            replay: SynopsisBatch::new(),
            replay_losses: Vec::new(),
            supervisor,
            restarts_used: 0,
            received: 0,
            restarts,
            skipped,
        }
    }

    fn interner(&self) -> &Arc<SignatureInterner> {
        self.detector.interner()
    }

    fn record_loss(&mut self, report: LossReport) {
        self.detector
            .record_loss(report.host, report.at, report.count);
        self.replay_losses.push(report);
    }

    /// Observe one interned feature inside the panic boundary, first
    /// advancing the detector to `watermark` — the global-stream
    /// watermark, which for a pool shard runs ahead of what the shard's
    /// own slice implies (see [`AnomalyDetector::advance_watermark`]).
    /// A panic restores the detector from its latest snapshot, replays
    /// the since-snapshot tail, and skips the poison feature; only an
    /// exhausted restart budget is a terminal error.
    fn observe(
        &mut self,
        feature: InternedFeature,
        watermark: SimTime,
    ) -> Result<Vec<AnomalyEvent>, AnalyzerError> {
        self.received += 1;
        let received = self.received;
        let inject = self.supervisor.panic_after == Some(received);
        let detector = &mut self.detector;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected analyzer fault at synopsis {received}");
            }
            let mut events = detector.advance_watermark(watermark);
            events.extend(detector.observe_interned(&feature));
            events
        }));
        match outcome {
            Ok(events) => {
                self.replay.push_feature(&feature, watermark);
                if self.replay.len() as u64 >= self.supervisor.snapshot_every {
                    self.snapshot = self.detector.snapshot();
                    self.replay.clear();
                    self.replay_losses.clear();
                }
                Ok(events)
            }
            Err(payload) => {
                self.restarts_used += 1;
                if self.restarts_used > self.supervisor.max_restarts {
                    return Err(AnalyzerError::RestartsExhausted {
                        restarts: self.restarts_used - 1,
                        panic: panic_message(payload.as_ref()),
                    });
                }
                self.restarts.fetch_add(1, Ordering::Relaxed);
                // The synopsis that triggered the panic is skipped, not
                // retried: a deterministic poison pill would otherwise
                // crash-loop the analyzer.
                self.skipped.fetch_add(1, Ordering::Relaxed);
                self.restore_from_snapshot();
                Ok(Vec::new())
            }
        }
    }

    /// Rebuild the detector from the latest snapshot and replay the
    /// since-snapshot tail. Replayed events are suppressed — they were
    /// already emitted before the crash.
    fn restore_from_snapshot(&mut self) {
        self.detector = AnomalyDetector::from_snapshot(self.snapshot.clone());
        for report in &self.replay_losses {
            self.detector
                .record_loss(report.host, report.at, report.count);
        }
        for i in 0..self.replay.len() {
            let _ = self.detector.advance_watermark(self.replay.watermarks[i]);
            let _ = self.detector.observe_interned(&self.replay.feature(i));
        }
    }

    /// Observe a whole SoA batch inside one panic boundary — the pool
    /// shard hot path. The happy path is a single call into
    /// [`AnomalyDetector::observe_batch`] (branch-free batch classify,
    /// then per-element accumulation); fault handling degrades to the
    /// per-synopsis path so poison-pill skipping and restart accounting
    /// stay element-exact.
    fn observe_batch(
        &mut self,
        batch: &SynopsisBatch,
        verdicts: &mut VerdictMask,
    ) -> Result<Vec<AnomalyEvent>, AnalyzerError> {
        let len = batch.len() as u64;
        if len == 0 {
            return Ok(Vec::new());
        }
        // Injected faults land on an exact synopsis ordinal: when the
        // target falls inside this batch, process it element by element so
        // the panic hits precisely the Nth synopsis, as the scalar path
        // would.
        if let Some(n) = self.supervisor.panic_after {
            if n > self.received && n <= self.received + len {
                return self.observe_batch_per_element(batch);
            }
        }
        self.received += len;
        let detector = &mut self.detector;
        let outcome = catch_unwind(AssertUnwindSafe(|| detector.observe_batch(batch, verdicts)));
        match outcome {
            Ok(events) => {
                self.replay.extend_from(batch);
                if self.replay.len() as u64 >= self.supervisor.snapshot_every {
                    self.snapshot = self.detector.snapshot();
                    self.replay.clear();
                    self.replay_losses.clear();
                }
                Ok(events)
            }
            Err(_) => {
                // A genuine panic mid-batch leaves the detector partially
                // mutated, so roll back to the snapshot — uncounted: the
                // restart and skip are charged when the per-element pass
                // re-hits the poison element behind its own boundary.
                self.restore_from_snapshot();
                self.received -= len;
                self.observe_batch_per_element(batch)
            }
        }
    }

    /// The scalar fallback for [`SupervisedDetector::observe_batch`]:
    /// exactly the per-synopsis supervised path, element by element.
    fn observe_batch_per_element(
        &mut self,
        batch: &SynopsisBatch,
    ) -> Result<Vec<AnomalyEvent>, AnalyzerError> {
        let mut events = Vec::new();
        for i in 0..batch.len() {
            events.extend(self.observe(batch.feature(i), batch.watermarks[i])?);
        }
        Ok(events)
    }

    /// Advance the detector to the global-stream watermark (closing stale
    /// windows) without observing anything — the end-of-stream broadcast.
    fn advance(&mut self, watermark: SimTime) -> Vec<AnomalyEvent> {
        self.detector.advance_watermark(watermark)
    }

    /// Snapshot the detector for a durable checkpoint. Also refreshes the
    /// restart snapshot: state persisted to disk is exactly the state a
    /// panic would restore, and the replay tail never straddles a
    /// checkpoint.
    fn checkpoint_snapshot(&mut self) -> DetectorSnapshot {
        self.snapshot = self.detector.snapshot();
        self.replay.clear();
        self.replay_losses.clear();
        self.snapshot.clone()
    }

    /// Install a new model (hot swap, or bootstrap promotion), first
    /// advancing to the swap watermark so pre-swap windows close under the
    /// rates they accumulated against. The restart snapshot is refreshed —
    /// a panic after the swap must not resurrect the old model.
    fn install(
        &mut self,
        model: Arc<OutlierModel>,
        compiled: Arc<CompiledModel>,
        watermark: SimTime,
    ) -> Vec<AnomalyEvent> {
        let mut events = self.detector.advance_watermark(watermark);
        events.extend(self.detector.install_model(model, compiled));
        self.snapshot = self.detector.snapshot();
        self.replay.clear();
        self.replay_losses.clear();
        events
    }

    /// Close all open windows and hand the detector back.
    fn finish(mut self) -> (Vec<AnomalyEvent>, AnomalyDetector) {
        let events = self.detector.flush();
        (events, self.detector)
    }
}

/// Spawn a supervised analyzer: like [`spawn_analyzer`], plus a panic
/// boundary with snapshot/replay recovery, per-host liveness tracking, and
/// optional link-loss reports feeding the degradation-aware detector.
///
/// `loss_rx`, when provided, delivers [`LossReport`]s from the transport
/// layer (see [`crate::transport::FrameReceiver`]); each is applied via
/// [`AnomalyDetector::record_loss`] so windowed tests account for missing
/// data and events carry honest completeness ratios.
pub fn spawn_supervised_analyzer(
    model: Arc<OutlierModel>,
    config: DetectorConfig,
    supervisor: SupervisorConfig,
    rx: Receiver<TaskSynopsis>,
    loss_rx: Option<Receiver<LossReport>>,
) -> AnalyzerHandle {
    let (event_tx, event_rx) = unbounded();
    let processed = Arc::new(AtomicU64::new(0));
    let restarts = Arc::new(AtomicU64::new(0));
    let skipped = Arc::new(AtomicU64::new(0));
    let (processed_inner, restarts_inner, skipped_inner) =
        (processed.clone(), restarts.clone(), skipped.clone());
    let window = config.window;
    let silent_after = supervisor.silent_after;
    let join = std::thread::Builder::new()
        .name("saad-supervised-analyzer".into())
        .spawn(move || {
            let detector = AnomalyDetector::new(model, config);
            let mut supervised =
                SupervisedDetector::new(detector, supervisor, restarts_inner, skipped_inner);
            let mut liveness = LivenessTracker::default();
            for synopsis in rx.iter() {
                processed_inner.fetch_add(1, Ordering::Relaxed);
                for event in liveness.observe(synopsis.host, synopsis.start, window, silent_after) {
                    let _ = event_tx.send(event);
                }
                if let Some(loss_rx) = &loss_rx {
                    for report in loss_rx.try_iter() {
                        supervised.record_loss(report);
                    }
                }
                // Interning happens outside the panic boundary: the
                // interner is shared state a restart must not lose. A
                // single analyzer sees the whole stream, so its own
                // start times are the global watermark.
                let feature = InternedFeature::from_synopsis(&synopsis, supervised.interner());
                for event in supervised.observe(feature, synopsis.start)? {
                    let _ = event_tx.send(event);
                }
            }
            let (events, detector) = supervised.finish();
            for event in events {
                let _ = event_tx.send(event);
            }
            Ok(detector)
        })
        .expect("spawn supervised analyzer thread");
    AnalyzerHandle {
        events: event_rx,
        processed,
        restarts,
        skipped,
        sink_stats: None,
        join: Some(join),
    }
}

/// Message routed from the pool's router thread to one shard worker.
enum ShardMsg {
    /// A run of synopses that all hash to this shard, in SoA layout — one
    /// channel send per shard per input batch, however many synopses it
    /// carries. Each element is stamped (`watermarks[i]`) with the
    /// global-stream watermark in force when the router saw it, so the
    /// shard closes windows at exactly the moments a single-threaded
    /// analyzer would. The shard returns the drained buffer on the
    /// recycle channel, so steady-state routing allocates nothing.
    Batch(SynopsisBatch),
    /// A transport gap report, broadcast to every shard: loss is keyed by
    /// host and window, and any shard may own windows for that host. The
    /// router counts each report once for the pool-level total.
    Loss(LossReport),
    /// Hot model swap, delivered in-band and broadcast to every shard:
    /// channel FIFO ordering guarantees the shard installs the new model
    /// only after every synopsis the router saw before the swap decision,
    /// so no task is dropped or classified twice. The carried watermark is
    /// the global-stream watermark at the decision — stale windows close
    /// under the old model before the new one takes over.
    Swap {
        model: Arc<OutlierModel>,
        compiled: Arc<CompiledModel>,
        watermark: SimTime,
    },
    /// Checkpoint request: the worker replies with a snapshot of its
    /// detector as of everything routed before this message.
    Snapshot(Sender<DetectorSnapshot>),
    /// The router's final global watermark, broadcast at end of stream so
    /// every shard — including ones whose own slice went quiet early —
    /// closes its stale windows exactly where a single-threaded analyzer
    /// would, before the drain flush.
    FinalWatermark(SimTime),
}

/// Pin a `(host, stage)` pair to one shard. The detector's windowed state
/// is keyed per `(host, stage)`, so pinning the pair keeps each window's
/// accumulation — and therefore its test results — on a single thread,
/// bit-identical to a single-threaded analyzer.
fn shard_for(host: HostId, stage: StageId, workers: usize) -> usize {
    let key = ((host.0 as u64) << 16) | stage.0 as u64;
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % workers
}

/// One element of a *sequenced* analyzer-pool input stream: synopsis
/// batches and transport loss reports interleaved on a single ordered
/// channel.
///
/// The two-channel pool inputs deliver [`LossReport`]s on a side channel
/// the router drains opportunistically at batch boundaries. That is
/// *correct* — a gap always takes effect no later than its revealing
/// batch — but not *reproducible*: under backpressure a queued report can
/// take effect several batches early, so two runs over identical content
/// may attribute a gap's degradation to different window closes. A
/// sequenced stream pins every report at the exact stream position its
/// producer emitted it, which makes the pool's event multiset a pure
/// function of stream content. The federation end-to-end proof (wire run
/// vs. replayed oracle) relies on exactly this property.
#[derive(Debug, Clone)]
pub enum SequencedInput {
    /// A batch of task synopses.
    Batch(Vec<TaskSynopsis>),
    /// A loss report taking effect exactly here in the stream.
    Loss(LossReport),
}

/// Input stream driving an analyzer pool's router.
enum PoolInput {
    /// Batches of raw synopses: the router interns each one into the
    /// pool's shared interner while routing.
    Raw(Receiver<Vec<TaskSynopsis>>),
    /// Pre-interned SoA batches (see [`SynopsisBatch`]) built against the
    /// SAME interner the pool's detectors share. The router re-stamps
    /// each element's watermark with the global running maximum and
    /// repartitions columns directly — the hot path never materializes a
    /// per-synopsis struct or performs a per-synopsis channel send.
    Batches(Receiver<SynopsisBatch>),
    /// Raw batches and loss reports on one ordered channel (see
    /// [`SequencedInput`]): loss placement is part of the stream content
    /// instead of a race against the router's drain timing.
    Sequenced(Receiver<SequencedInput>),
}

/// The router's per-shard SoA arenas. Elements accumulate into a reusable
/// [`SynopsisBatch`] per shard and flush as ONE channel send per
/// (shard, input batch); shards hand drained buffers back on the recycle
/// channel, so steady-state routing performs no allocation.
///
/// Control-plane rule: every control send (loss, swap, snapshot, final
/// watermark) must be preceded by [`ShardFanout::flush`] — control
/// messages are ordered in-band at batch boundaries, never between a
/// batch's elements. The router flushes at the end of every input batch,
/// before lifecycle pumping, so the rule holds by construction.
struct ShardFanout {
    arenas: Vec<SynopsisBatch>,
    recycle_rx: Receiver<SynopsisBatch>,
}

impl ShardFanout {
    fn new(workers: usize, recycle_rx: Receiver<SynopsisBatch>) -> ShardFanout {
        ShardFanout {
            arenas: (0..workers).map(|_| SynopsisBatch::new()).collect(),
            recycle_rx,
        }
    }

    /// Append one element to its shard's arena, stamped with the global
    /// watermark the router just computed.
    #[inline]
    fn push(&mut self, feature: &InternedFeature, watermark: SimTime) {
        let shard = shard_for(feature.host, feature.stage, self.arenas.len());
        self.arenas[shard].push_feature(feature, watermark);
    }

    /// Send every non-empty arena to its shard, swapping in a recycled
    /// (or, before steady state, fresh) buffer.
    fn flush(&mut self, shard_txs: &[Sender<ShardMsg>]) {
        for (shard, arena) in self.arenas.iter_mut().enumerate() {
            if arena.is_empty() {
                continue;
            }
            let replacement = self.recycle_rx.try_recv().unwrap_or_default();
            let full = std::mem::replace(arena, replacement);
            let _ = shard_txs[shard].send(ShardMsg::Batch(full));
        }
    }
}

/// Live counters for one shard worker, updated with relaxed stores on
/// the shard thread and read only at scrape time.
#[derive(Debug, Default)]
struct ShardObs {
    processed: AtomicU64,
    events: AtomicU64,
    watermark_micros: AtomicU64,
}

/// Live router- and shard-level counters for an analyzer pool, shared
/// between the pool threads (writers) and [`PoolHandle::register_metrics`]
/// callbacks (scrape-time readers).
#[derive(Debug)]
struct PoolObs {
    shards: Vec<ShardObs>,
    batches_routed: AtomicU64,
    watermark_micros: AtomicU64,
}

impl PoolObs {
    fn new(workers: usize) -> PoolObs {
        PoolObs {
            shards: (0..workers).map(|_| ShardObs::default()).collect(),
            batches_routed: AtomicU64::new(0),
            watermark_micros: AtomicU64::new(0),
        }
    }
}

/// Handle to a running analyzer pool: a router thread plus `workers`
/// supervised shard workers (see [`spawn_analyzer_pool`]).
#[derive(Debug)]
pub struct PoolHandle {
    events: Receiver<AnomalyEvent>,
    processed: Arc<AtomicU64>,
    restarts: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
    tasks_lost: Arc<AtomicU64>,
    sink_stats: Option<Arc<SinkStats>>,
    obs: Arc<PoolObs>,
    router: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<Result<AnomalyDetector, AnalyzerError>>>,
}

impl PoolHandle {
    /// Attach the sink's drop statistics so producers' losses are visible
    /// from the consumer side.
    pub fn with_sink_stats(mut self, stats: Arc<SinkStats>) -> PoolHandle {
        self.sink_stats = Some(stats);
        self
    }

    /// Receiver of detected anomaly events, merged across all shards.
    pub fn events(&self) -> &Receiver<AnomalyEvent> {
        &self.events
    }

    /// Synopses delivered to shard workers so far (including any skipped
    /// after a supervised restart).
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Total shard-worker restarts after panics.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Poison synopses skipped across all shards.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Synopses the transport reported lost, counted once per report.
    /// (Loss reports are broadcast to every shard for window accounting,
    /// so summing the shard detectors' own counters would overcount.)
    pub fn tasks_lost(&self) -> u64 {
        self.tasks_lost.load(Ordering::Relaxed)
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Synopses dropped by the attached sink (0 unless
    /// [`PoolHandle::with_sink_stats`] was used).
    pub fn dropped(&self) -> u64 {
        SinkStats::dropped_of(self.sink_stats.as_ref())
    }

    /// Per-host drop counts from the attached sink (empty unless
    /// [`PoolHandle::with_sink_stats`] was used).
    pub fn drops_by_host(&self) -> HashMap<HostId, DropCounts> {
        SinkStats::drops_by_host_of(self.sink_stats.as_ref())
    }

    /// Expose the pool's live counters in `registry`: per-shard
    /// processed/event counts and watermark lag, plus pool-level
    /// restart/skip/loss totals and the router watermark. All series
    /// are scrape-time callbacks over counters the pool already
    /// maintains — registering them costs the hot path nothing.
    pub fn register_metrics(&self, registry: &Registry) {
        for (shard, _) in self.obs.shards.iter().enumerate() {
            let label = shard.to_string();
            let labels = [("shard", label.as_str())];
            let obs = Arc::clone(&self.obs);
            registry.register_counter_fn(
                "saad_pool_shard_processed_total",
                "Synopses applied by this shard worker",
                &labels,
                move || obs.shards[shard].processed.load(Ordering::Relaxed),
            );
            let obs = Arc::clone(&self.obs);
            registry.register_counter_fn(
                "saad_pool_shard_events_total",
                "Anomaly events emitted by this shard worker",
                &labels,
                move || obs.shards[shard].events.load(Ordering::Relaxed),
            );
            let obs = Arc::clone(&self.obs);
            registry.register_gauge_fn(
                "saad_pool_shard_watermark_lag_us",
                "Stream time between the router watermark and this shard's last applied watermark",
                &labels,
                move || {
                    let router = obs.watermark_micros.load(Ordering::Relaxed);
                    let shard_wm = obs.shards[shard].watermark_micros.load(Ordering::Relaxed);
                    router.saturating_sub(shard_wm) as i64
                },
            );
        }
        let obs = Arc::clone(&self.obs);
        registry.register_counter_fn(
            "saad_pool_batches_routed_total",
            "Input batches routed to shard workers",
            &[],
            move || obs.batches_routed.load(Ordering::Relaxed),
        );
        let obs = Arc::clone(&self.obs);
        registry.register_gauge_fn(
            "saad_pool_watermark_us",
            "Global stream watermark at the router, in stream microseconds",
            &[],
            move || obs.watermark_micros.load(Ordering::Relaxed) as i64,
        );
        let processed = Arc::clone(&self.processed);
        registry.register_counter_fn(
            "saad_pool_processed_total",
            "Synopses delivered to shard workers",
            &[],
            move || processed.load(Ordering::Relaxed),
        );
        let restarts = Arc::clone(&self.restarts);
        registry.register_counter_fn(
            "saad_pool_restarts_total",
            "Shard worker restarts after panics",
            &[],
            move || restarts.load(Ordering::Relaxed),
        );
        let skipped = Arc::clone(&self.skipped);
        registry.register_counter_fn(
            "saad_pool_skipped_total",
            "Poison synopses skipped across all shards",
            &[],
            move || skipped.load(Ordering::Relaxed),
        );
        let tasks_lost = Arc::clone(&self.tasks_lost);
        registry.register_counter_fn(
            "saad_pool_tasks_lost_total",
            "Synopses the transport reported lost, counted once per report",
            &[],
            move || tasks_lost.load(Ordering::Relaxed),
        );
        if let Some(stats) = &self.sink_stats {
            stats.register_metrics(registry, "pool");
        }
    }

    /// Drain any events currently queued without blocking.
    pub fn drain_events(&self) -> Vec<AnomalyEvent> {
        let mut out = Vec::new();
        while let Ok(e) = self.events.try_recv() {
            out.push(e);
        }
        out
    }

    /// Wait for the pool to finish (input channel closed), returning each
    /// shard's detector for inspection. Remaining windows are flushed
    /// before workers exit.
    ///
    /// # Errors
    ///
    /// Returns the first [`AnalyzerError`] if the router panicked or any
    /// shard exhausted its restart budget; the remaining shards are still
    /// joined first so no thread is leaked.
    pub fn join(mut self) -> Result<Vec<AnomalyDetector>, AnalyzerError> {
        let mut first_err = None;
        if let Some(router) = self.router.take() {
            if let Err(payload) = router.join() {
                first_err = Some(AnalyzerError::Panicked(panic_message(payload.as_ref())));
            }
        }
        let mut detectors = Vec::with_capacity(self.workers.len());
        for worker in self.workers.drain(..) {
            match worker.join() {
                Ok(Ok(detector)) => detectors.push(detector),
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(payload) => {
                    first_err
                        .get_or_insert(AnalyzerError::Panicked(panic_message(payload.as_ref())));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(detectors),
        }
    }
}

/// Spawn a sharded analyzer pool over a stream of synopsis batches.
///
/// A router thread receives whole batches (e.g. one decoded transport
/// frame per send, see [`feed_frame`]), runs per-host liveness tracking
/// over the full ordered stream, and splits each batch by
/// `hash(host, stage)` into per-shard sub-batches — one channel send per
/// shard per batch. Each of the `workers` shard threads runs its own
/// supervised [`AnomalyDetector`] (same snapshot/replay/poison-skip
/// semantics as [`spawn_supervised_analyzer`]) against a **shared**
/// signature interner and compiled model, built once here.
///
/// Because the detector's windowed state is keyed per `(host, stage)` and
/// each pair is pinned to one shard, the pool's event stream is — as a
/// multiset — identical to a single supervised analyzer's over the same
/// input; only channel interleaving differs.
///
/// `supervisor.panic_after` counts per shard (each worker panics on its
/// own Nth synopsis), which keeps fault injection deterministic per
/// route.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn spawn_analyzer_pool(
    model: Arc<OutlierModel>,
    config: DetectorConfig,
    supervisor: SupervisorConfig,
    workers: usize,
    rx: Receiver<Vec<TaskSynopsis>>,
    loss_rx: Option<Receiver<LossReport>>,
) -> PoolHandle {
    assert!(workers > 0, "analyzer pool needs at least one worker");
    // One interner and one compiled model, shared read-only by every
    // shard: interning and compilation costs are paid once, regardless of
    // the worker count.
    let interner = Arc::new(SignatureInterner::new());
    let compiled = Arc::new(model.compile(&interner));
    let detectors = (0..workers)
        .map(|_| {
            AnomalyDetector::with_shared(model.clone(), compiled.clone(), interner.clone(), config)
        })
        .collect();
    spawn_pool_inner(
        detectors,
        supervisor,
        config.window,
        PoolInput::Raw(rx),
        loss_rx,
        None,
        None,
    )
}

/// Spawn a batch-native analyzer pool over a stream of pre-built SoA
/// batches — the zero-copy fast path.
///
/// Semantics are identical to [`spawn_analyzer_pool`]; only the input
/// currency differs. Producers build [`SynopsisBatch`]es against
/// `interner` (one intern per synopsis at the edge — e.g. a
/// [`BatchSink`] behind trackers, or a transport decoder filling columns
/// straight from the wire) and the router repartitions columns into
/// per-shard sub-batches with one channel send per (shard, batch). No
/// per-synopsis struct is materialized and no per-synopsis channel send
/// happens anywhere on the path. Producer-side watermarks are re-stamped
/// with the pool's global running maximum, so window-close points are
/// bit-identical to the single-threaded analyzer's.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn spawn_batch_analyzer_pool(
    model: Arc<OutlierModel>,
    config: DetectorConfig,
    supervisor: SupervisorConfig,
    workers: usize,
    interner: Arc<SignatureInterner>,
    rx: Receiver<SynopsisBatch>,
    loss_rx: Option<Receiver<LossReport>>,
) -> PoolHandle {
    assert!(workers > 0, "analyzer pool needs at least one worker");
    let compiled = Arc::new(model.compile(&interner));
    let detectors = (0..workers)
        .map(|_| {
            AnomalyDetector::with_shared(model.clone(), compiled.clone(), interner.clone(), config)
        })
        .collect();
    spawn_pool_inner(
        detectors,
        supervisor,
        config.window,
        PoolInput::Batches(rx),
        loss_rx,
        None,
        None,
    )
}

/// Run `work` as a tracked meta task when a monitor is attached, or
/// plainly when self-observation is off. Keeping the untracked path a
/// bare call means a `None` monitor costs one branch.
fn meta_tick<R>(meta: &Option<Arc<MetaMonitor>>, stage: MetaStage, work: impl FnOnce() -> R) -> R {
    match meta {
        Some(m) => m.tick(stage, work),
        None => work(),
    }
}

/// Backoff before checkpoint-write retry `attempt` (1-based): the base
/// doubles per retry, capped at 8x, scaled by a jitter factor in
/// [0.5, 1.5) mixed from the generation and attempt with a splitmix64
/// finalizer. Deterministic — replays and tests see identical schedules —
/// yet de-synchronized across generations and attempts.
fn checkpoint_retry_delay(base: Duration, attempt: u32, generation: u64) -> Duration {
    let capped = base.saturating_mul(1u32 << (attempt - 1).min(3));
    let mut x = generation ^ (u64::from(attempt) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let jitter = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64;
    capped.mul_f64(jitter)
}

/// The pool core shared by [`spawn_analyzer_pool`] and
/// [`spawn_analyzer_pool_with_lifecycle`]: one shard worker per initial
/// detector, plus the router thread that stamps watermarks, routes
/// batches, tracks liveness, and — when a [`RouterLifecycle`] is given —
/// drives checkpoints, hot swaps, and bootstrap promotion at batch
/// boundaries.
fn spawn_pool_inner(
    detectors: Vec<AnomalyDetector>,
    supervisor: SupervisorConfig,
    window: SimDuration,
    input: PoolInput,
    loss_rx: Option<Receiver<LossReport>>,
    mut lifecycle: Option<RouterLifecycle>,
    meta: Option<Arc<MetaMonitor>>,
) -> PoolHandle {
    let workers = detectors.len();
    assert!(workers > 0, "analyzer pool needs at least one worker");
    // The router interns raw synopses into the same interner every shard
    // detector already shares.
    let interner = detectors[0].interner().clone();
    let (event_tx, event_rx) = unbounded();
    let processed = Arc::new(AtomicU64::new(0));
    let restarts = Arc::new(AtomicU64::new(0));
    let skipped = Arc::new(AtomicU64::new(0));
    let tasks_lost = Arc::new(AtomicU64::new(0));
    let obs = Arc::new(PoolObs::new(workers));
    // Drained batch buffers flow back to the router on this channel for
    // reuse — after warm-up the router never allocates a batch. Bounded:
    // when the router routes faster than it recycles (e.g. the
    // single-shard forwarding path, which consumes no arenas), surplus
    // buffers are dropped instead of piling up.
    let (recycle_tx, recycle_rx) = bounded::<SynopsisBatch>(2 * workers);

    let mut shard_txs = Vec::with_capacity(workers);
    let mut worker_joins = Vec::with_capacity(workers);
    for (shard, detector) in detectors.into_iter().enumerate() {
        let (shard_tx, shard_rx) = unbounded::<ShardMsg>();
        shard_txs.push(shard_tx);
        let supervisor = supervisor.clone();
        let event_tx = event_tx.clone();
        let (processed, restarts, skipped) = (processed.clone(), restarts.clone(), skipped.clone());
        let obs = Arc::clone(&obs);
        let meta = meta.clone();
        let recycle_tx = recycle_tx.clone();
        let join = std::thread::Builder::new()
            .name(format!("saad-analyzer-shard-{shard}"))
            .spawn(move || {
                if supervisor.pin_shards {
                    // Best-effort: a refused pin just runs unpinned.
                    let _ = crate::affinity::pin_current_thread(shard);
                }
                let shard_obs = &obs.shards[shard];
                let emit = |event: AnomalyEvent| {
                    shard_obs.events.fetch_add(1, Ordering::Relaxed);
                    let _ = event_tx.send(event);
                };
                let mut supervised =
                    SupervisedDetector::new(detector, supervisor, restarts, skipped);
                let mut verdicts = VerdictMask::new();
                for msg in shard_rx.iter() {
                    match msg {
                        ShardMsg::Loss(report) => supervised.record_loss(report),
                        ShardMsg::Batch(mut batch) => {
                            processed.fetch_add(batch.len() as u64, Ordering::Relaxed);
                            shard_obs
                                .processed
                                .fetch_add(batch.len() as u64, Ordering::Relaxed);
                            meta_tick(&meta, MetaStage::Shard, || {
                                for event in supervised.observe_batch(&batch, &mut verdicts)? {
                                    emit(event);
                                }
                                if let Some(&watermark) = batch.watermarks.last() {
                                    shard_obs
                                        .watermark_micros
                                        .store(watermark.as_micros(), Ordering::Relaxed);
                                }
                                Ok(())
                            })?;
                            batch.clear();
                            let _ = recycle_tx.try_send(batch);
                        }
                        ShardMsg::Swap {
                            model,
                            compiled,
                            watermark,
                        } => {
                            for event in supervised.install(model, compiled, watermark) {
                                emit(event);
                            }
                        }
                        ShardMsg::Snapshot(reply) => {
                            let _ = reply.send(supervised.checkpoint_snapshot());
                        }
                        ShardMsg::FinalWatermark(watermark) => {
                            for event in supervised.advance(watermark) {
                                emit(event);
                            }
                            shard_obs
                                .watermark_micros
                                .store(watermark.as_micros(), Ordering::Relaxed);
                        }
                    }
                }
                let (events, detector) = supervised.finish();
                for event in events {
                    emit(event);
                }
                Ok(detector)
            })
            .expect("spawn analyzer pool worker");
        worker_joins.push(join);
    }

    let silent_after = supervisor.silent_after;
    let tasks_lost_inner = tasks_lost.clone();
    let obs_router = Arc::clone(&obs);
    let meta_router = meta.clone();
    let router = std::thread::Builder::new()
        .name("saad-analyzer-router".into())
        .spawn(move || {
            let mut liveness = LivenessTracker::default();
            let mut watermark = SimTime::ZERO;
            let mut fanout = ShardFanout::new(workers, recycle_rx);
            let broadcast_losses = |losses: &Receiver<LossReport>| {
                for report in losses.try_iter() {
                    tasks_lost_inner.fetch_add(report.count, Ordering::Relaxed);
                    for tx in &shard_txs {
                        let _ = tx.send(ShardMsg::Loss(report));
                    }
                }
            };
            // The per-input-batch boundary work shared by both input
            // shapes: one flush per shard, then lifecycle pumping —
            // arenas are empty whenever a control message goes out.
            macro_rules! batch_boundary {
                () => {
                    fanout.flush(&shard_txs);
                    if let Some(lc) = lifecycle.as_mut() {
                        lc.pump(watermark, &shard_txs);
                    }
                    obs_router.batches_routed.fetch_add(1, Ordering::Relaxed);
                    obs_router
                        .watermark_micros
                        .store(watermark.as_micros(), Ordering::Relaxed);
                };
            }
            match input {
                PoolInput::Raw(rx) => {
                    for batch in rx.iter() {
                        meta_tick(&meta_router, MetaStage::Router, || {
                            if let Some(loss_rx) = &loss_rx {
                                broadcast_losses(loss_rx);
                            }
                            for synopsis in batch {
                                for event in liveness.observe(
                                    synopsis.host,
                                    synopsis.start,
                                    window,
                                    silent_after,
                                ) {
                                    let _ = event_tx.send(event);
                                }
                                watermark = watermark.max(synopsis.start);
                                let feature = InternedFeature::from_synopsis(&synopsis, &interner);
                                if let Some(lc) = lifecycle.as_mut() {
                                    lc.absorb(&feature);
                                }
                                fanout.push(&feature, watermark);
                            }
                            batch_boundary!();
                        });
                    }
                }
                PoolInput::Sequenced(rx) => {
                    for step in rx.iter() {
                        meta_tick(&meta_router, MetaStage::Router, || match step {
                            SequencedInput::Loss(report) => {
                                // In-band: the report takes effect exactly
                                // here. Arenas are empty between batch
                                // boundaries, so shards see it at the same
                                // stream position the producer pinned.
                                tasks_lost_inner.fetch_add(report.count, Ordering::Relaxed);
                                for tx in &shard_txs {
                                    let _ = tx.send(ShardMsg::Loss(report));
                                }
                            }
                            SequencedInput::Batch(batch) => {
                                for synopsis in batch {
                                    for event in liveness.observe(
                                        synopsis.host,
                                        synopsis.start,
                                        window,
                                        silent_after,
                                    ) {
                                        let _ = event_tx.send(event);
                                    }
                                    watermark = watermark.max(synopsis.start);
                                    let feature =
                                        InternedFeature::from_synopsis(&synopsis, &interner);
                                    if let Some(lc) = lifecycle.as_mut() {
                                        lc.absorb(&feature);
                                    }
                                    fanout.push(&feature, watermark);
                                }
                                batch_boundary!();
                            }
                        });
                    }
                }
                PoolInput::Batches(rx) => {
                    // With a single shard and no lifecycle duties the
                    // router degenerates to a forwarder: re-stamp the
                    // watermark column in place with the global running
                    // max and hand the whole batch through untouched —
                    // no per-element repartition copy at all.
                    let forward_only = workers == 1 && lifecycle.is_none();
                    for mut batch in rx.iter() {
                        if forward_only {
                            meta_tick(&meta_router, MetaStage::Router, || {
                                if let Some(loss_rx) = &loss_rx {
                                    broadcast_losses(loss_rx);
                                }
                                for i in 0..batch.len() {
                                    for event in liveness.observe(
                                        batch.hosts[i],
                                        batch.starts[i],
                                        window,
                                        silent_after,
                                    ) {
                                        let _ = event_tx.send(event);
                                    }
                                    watermark = watermark.max(batch.starts[i]);
                                    batch.watermarks[i] = watermark;
                                }
                                if !batch.is_empty() {
                                    let _ = shard_txs[0].send(ShardMsg::Batch(batch));
                                }
                                batch_boundary!();
                            });
                            continue;
                        }
                        meta_tick(&meta_router, MetaStage::Router, || {
                            if let Some(loss_rx) = &loss_rx {
                                broadcast_losses(loss_rx);
                            }
                            for i in 0..batch.len() {
                                for event in liveness.observe(
                                    batch.hosts[i],
                                    batch.starts[i],
                                    window,
                                    silent_after,
                                ) {
                                    let _ = event_tx.send(event);
                                }
                                watermark = watermark.max(batch.starts[i]);
                                let feature = batch.feature(i);
                                if let Some(lc) = lifecycle.as_mut() {
                                    lc.absorb(&feature);
                                }
                                // Re-stamp with the GLOBAL watermark: the
                                // producer's per-batch watermark only saw
                                // its own stream.
                                fanout.push(&feature, watermark);
                            }
                            batch_boundary!();
                        });
                    }
                }
            }
            // Stream closed: deliver any last gap reports and pending
            // control commands, advance every shard to the final global
            // watermark (so stale windows close exactly where one thread
            // would close them), persist a last checkpoint of that state,
            // then drop the shard senders so every worker flushes and
            // exits.
            if let Some(loss_rx) = &loss_rx {
                broadcast_losses(loss_rx);
            }
            fanout.flush(&shard_txs);
            if let Some(lc) = lifecycle.as_mut() {
                lc.pump(watermark, &shard_txs);
            }
            for tx in &shard_txs {
                let _ = tx.send(ShardMsg::FinalWatermark(watermark));
            }
            if let Some(lc) = lifecycle.as_mut() {
                if lc.detecting {
                    lc.take_checkpoint(&shard_txs, None);
                }
            }
        })
        .expect("spawn analyzer pool router");

    PoolHandle {
        events: event_rx,
        processed,
        restarts,
        skipped,
        tasks_lost,
        sink_stats: None,
        obs,
        router: Some(router),
        workers: worker_joins,
    }
}

/// Feed one decoded transport frame into an analyzer pool's input: the
/// frame's synopses go to `batch_tx` as a **single** batch send, and a
/// newly discovered gap becomes a [`LossReport`] on `loss_tx` (stamped,
/// by convention, with the first synopsis's start time). Duplicate frames
/// are ignored — the transport already counted them. Returns the number
/// of synopses forwarded.
pub fn feed_frame(
    outcome: FrameOutcome,
    batch_tx: &Sender<Vec<TaskSynopsis>>,
    loss_tx: &Sender<LossReport>,
) -> usize {
    match outcome {
        FrameOutcome::Fresh {
            host,
            synopses,
            newly_lost,
        } => {
            if newly_lost > 0 {
                let at = synopses.first().map(|s| s.start).unwrap_or(SimTime::ZERO);
                let _ = loss_tx.send(LossReport {
                    host,
                    at,
                    count: newly_lost,
                });
            }
            let n = synopses.len();
            if n > 0 {
                let _ = batch_tx.send(synopses);
            }
            n
        }
        FrameOutcome::Duplicate { .. } => 0,
    }
}

/// SoA counterpart of [`feed_frame`]: the frame's synopses are interned
/// into one [`SynopsisBatch`] (against the interner shared with the
/// consuming [`spawn_batch_analyzer_pool`]) and forwarded as a **single**
/// batch send; gap discoveries become [`LossReport`]s exactly as in
/// [`feed_frame`]. Returns the number of synopses forwarded.
pub fn feed_frame_soa(
    outcome: FrameOutcome,
    batch_tx: &Sender<SynopsisBatch>,
    interner: &SignatureInterner,
    loss_tx: &Sender<LossReport>,
) -> usize {
    match outcome {
        FrameOutcome::Fresh {
            host,
            synopses,
            newly_lost,
        } => {
            if newly_lost > 0 {
                let at = synopses.first().map(|s| s.start).unwrap_or(SimTime::ZERO);
                let _ = loss_tx.send(LossReport {
                    host,
                    at,
                    count: newly_lost,
                });
            }
            let n = synopses.len();
            if n > 0 {
                let mut batch = SynopsisBatch::with_capacity(n);
                for s in &synopses {
                    batch.push_synopsis(s, interner);
                }
                let _ = batch_tx.send(batch);
            }
            n
        }
        FrameOutcome::Duplicate { .. } => 0,
    }
}

// ---------------------------------------------------------------------------
// Durable model lifecycle: checkpointed pools, crash recovery, hot swap.
// ---------------------------------------------------------------------------

/// Tuning for [`spawn_analyzer_pool_with_lifecycle`].
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Automatically checkpoint after this many routed synopses
    /// (0 disables automatic checkpoints; explicit
    /// [`LifecyclePool::checkpoint_now`] and the final shutdown
    /// checkpoint still run).
    pub checkpoint_every: u64,
    /// Checkpoint generations retained on disk (older ones are pruned).
    pub keep: usize,
    /// In bootstrap mode, attempt promotion to detecting mode once this
    /// many synopses have been observed (and again after every further
    /// `promote_after` observations while the stability gate refuses).
    pub promote_after: u64,
    /// Capacity of the ring buffer of recent synopses kept by the router
    /// for retraining.
    pub retrain_window: usize,
    /// Minimum synopses in the ring buffer before a retrain (or bootstrap
    /// promotion) is allowed.
    pub min_retrain_samples: u64,
    /// Training configuration for retrained models.
    pub model_config: ModelConfig,
    /// Meta-monitor delimiting the pool's own router/shard/checkpoint
    /// iterations as tracked tasks (see [`MetaMonitor`]). `None` disables
    /// self-observation.
    pub meta: Option<Arc<MetaMonitor>>,
    /// Fault injection: sleep this long inside every checkpoint write.
    /// Lets tests make the checkpoint stage observably slow, the same
    /// way [`SupervisorConfig::panic_after`] injects worker crashes.
    pub checkpoint_stall: Option<Duration>,
    /// Transient checkpoint write failures ([`CheckpointError::Io`]) are
    /// retried up to this many times before the generation is abandoned
    /// and the error surfaced. Corruption-class errors (bad magic,
    /// checksum mismatch, version skew) are never retried — rewriting
    /// won't fix those.
    pub checkpoint_retries: u32,
    /// Base backoff before the first checkpoint retry. Doubles per
    /// retry, capped at 8x the base, with deterministic jitter in
    /// [0.5, 1.5) derived from the checkpoint generation and attempt
    /// number so concurrent pools don't retry in lockstep.
    pub checkpoint_retry_backoff: Duration,
    /// Fault injection: fail this many checkpoint write attempts with a
    /// synthesized transient I/O error before letting writes through —
    /// the transient-failure counterpart of `checkpoint_stall`.
    pub checkpoint_fail_first: u32,
    /// Continuous adaptation: when set, the router runs a Page-Hinkley
    /// drift detector over window-level traffic summaries and triggers
    /// the in-band retrain/hot-swap itself when drift is confirmed.
    /// `None` (the default) keeps the pool's episodic behaviour —
    /// retrains happen only on explicit [`LifecyclePool::retrain_now`]
    /// and at bootstrap promotion.
    pub adapt: Option<AdaptPolicy>,
}

impl Default for LifecycleConfig {
    fn default() -> LifecycleConfig {
        LifecycleConfig {
            checkpoint_every: 4096,
            keep: 3,
            promote_after: 5_000,
            retrain_window: 16_384,
            min_retrain_samples: 1_000,
            model_config: ModelConfig::default(),
            meta: None,
            checkpoint_stall: None,
            checkpoint_retries: 3,
            checkpoint_retry_backoff: Duration::from_millis(10),
            checkpoint_fail_first: 0,
            adapt: None,
        }
    }
}

/// Drift-triggered adaptation policy for a lifecycle pool.
///
/// The router accumulates each adapt window's traffic into a
/// [`saad_stats::QuantileSketch`] (durations) and a signature-frequency
/// table, then at every watermark-aligned window close feeds two scalars
/// into per-dimension [`saad_stats::PageHinkley`] tests:
///
/// * the **flow statistic** — L1 divergence between the window's
///   signature-share distribution and the baseline captured at the last
///   swap (range `[0, 2]`);
/// * the **duration statistic** — relative delta between the window
///   sketch's `duration_percentile` quantile and the baseline sketch's.
///
/// When either test trips (sustained shift, not a one-window spike) the
/// router drops the retrain ring — it still holds the regime the drift
/// just invalidated — and marks a retrain pending. Once the ring has
/// refilled with `min_retrain_samples` of purely post-drift traffic, the
/// router invokes the *existing* retrain path at the current watermark
/// boundary — the same k-fold-gated, zero-drop [`ShardMsg`] swap that
/// [`LifecyclePool::retrain_now`] uses; there is no second swap
/// mechanism. After a swap the baseline is re-captured from the retrain
/// ring, both tests reset, and `cooldown_windows` windows must close
/// before drift evidence accrues again.
#[derive(Debug, Clone)]
pub struct AdaptPolicy {
    /// Width of one adapt window. Windows are aligned to the first
    /// absorbed task's start time and closed by the routed watermark.
    pub window: SimDuration,
    /// Windows with fewer routed tasks than this contribute no drift
    /// evidence (a sparse window says nothing about the distribution).
    pub min_window_samples: u64,
    /// Page-Hinkley tolerance: per-window deviations below this never
    /// accumulate evidence.
    pub delta: f64,
    /// Page-Hinkley trip threshold on accumulated evidence.
    pub lambda: f64,
    /// Windows to wait after any swap before drift can trigger again.
    pub cooldown_windows: u32,
    /// Relative-error bound of the per-window duration sketch.
    pub sketch_alpha: f64,
}

impl Default for AdaptPolicy {
    fn default() -> AdaptPolicy {
        AdaptPolicy {
            window: SimDuration::from_secs(60),
            min_window_samples: 200,
            delta: 0.005,
            lambda: 0.25,
            cooldown_windows: 2,
            sketch_alpha: saad_stats::sketch::DEFAULT_ALPHA,
        }
    }
}

/// Why a lifecycle operation (checkpoint, retrain, swap, recovery) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleError {
    /// Reading or writing the checkpoint store failed.
    Checkpoint(CheckpointError),
    /// The retrained model's configuration was rejected.
    Config(ConfigError),
    /// The pool is still in bootstrap (collect-only) mode, which is never
    /// checkpointed — there is no model to persist.
    Bootstrapping,
    /// Not enough recent synopses to train a model.
    InsufficientData {
        /// Synopses available in the retrain ring buffer.
        have: u64,
        /// Synopses required by the lifecycle configuration.
        need: u64,
    },
    /// The k-fold stability gate refused the candidate model: held-out
    /// outlier rates stray too far from the nominal rate, so thresholds
    /// trained from this window would not be trustworthy.
    UnstableModel {
        /// Mean held-out outlier rate across folds.
        heldout_rate: f64,
        /// Nominal outlier rate implied by the duration percentile.
        nominal_rate: f64,
    },
    /// The pool's router (or a shard worker) is gone.
    PoolClosed,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Checkpoint(e) => write!(f, "checkpoint store: {e}"),
            LifecycleError::Config(e) => write!(f, "retrain config: {e}"),
            LifecycleError::Bootstrapping => {
                write!(f, "pool is in bootstrap mode (no model to checkpoint)")
            }
            LifecycleError::InsufficientData { have, need } => {
                write!(f, "retrain needs {need} recent synopses, have {have}")
            }
            LifecycleError::UnstableModel {
                heldout_rate,
                nominal_rate,
            } => write!(
                f,
                "k-fold gate refused the model: held-out outlier rate {heldout_rate:.4} \
                 vs nominal {nominal_rate:.4}"
            ),
            LifecycleError::PoolClosed => write!(f, "analyzer pool is no longer running"),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl From<CheckpointError> for LifecycleError {
    fn from(e: CheckpointError) -> LifecycleError {
        LifecycleError::Checkpoint(e)
    }
}

impl From<ConfigError> for LifecycleError {
    fn from(e: ConfigError) -> LifecycleError {
        LifecycleError::Config(e)
    }
}

/// Outcome of a successful hot model swap (or bootstrap promotion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapReport {
    /// Synopses the new model was trained from.
    pub trained_from: u64,
    /// Whether this swap promoted the pool out of bootstrap mode.
    pub promoted: bool,
    /// Stages covered by the new model.
    pub stages: usize,
}

/// Control commands accepted by a lifecycle pool's router, applied at the
/// next batch boundary (or at end of stream).
enum PoolCommand {
    Checkpoint(Sender<Result<u64, LifecycleError>>),
    Retrain(Sender<Result<SwapReport, LifecycleError>>),
}

/// A checkpoint handed to the writer thread, with an optional reply
/// channel for an explicit [`LifecyclePool::checkpoint_now`] request.
type WriterJob = (Checkpoint, Option<Sender<Result<u64, LifecycleError>>>);

/// Router-side drift detection state for an [`AdaptPolicy`].
struct AdaptState {
    policy: AdaptPolicy,
    /// Percentile compared between window and baseline sketches (the
    /// model's own duration percentile, so drift is measured where the
    /// thresholds live).
    quantile: f64,
    /// Start of the currently accumulating window; set by the first
    /// absorbed feature and advanced in lockstep with the watermark.
    window_start: Option<SimTime>,
    /// Current window's duration sketch.
    win_sketch: QuantileSketch,
    /// Current window's per-signature task counts.
    win_sigs: DecayedFrequency,
    /// Baseline captured from the retrain ring at the last swap: what
    /// the live model was trained on.
    base_sketch: QuantileSketch,
    base_sigs: DecayedFrequency,
    /// Change tests over the per-window statistics.
    ph_duration: PageHinkley,
    ph_flow: PageHinkley,
    /// Windows remaining before drift may trigger a swap again.
    cooldown: u32,
    /// A drift trip is waiting for enough *fresh* post-drift traffic to
    /// retrain on. While pending, further trips are ignored and the ring
    /// (cleared at the trip) refills with new-regime tasks only, so the
    /// swap never trains on a mixture dominated by the old regime.
    pending: bool,
    /// Drift-triggered swaps, shared with [`LifecyclePool`].
    drift_swaps: Arc<AtomicU64>,
    /// Adapt windows evaluated (closed with enough samples), shared with
    /// [`LifecyclePool`].
    windows_evaluated: Arc<AtomicU64>,
}

impl AdaptState {
    fn new(
        policy: AdaptPolicy,
        quantile: f64,
        drift_swaps: Arc<AtomicU64>,
        windows_evaluated: Arc<AtomicU64>,
    ) -> AdaptState {
        assert!(
            policy.window > SimDuration::ZERO,
            "adapt window must be positive"
        );
        AdaptState {
            win_sketch: QuantileSketch::new(policy.sketch_alpha),
            win_sigs: DecayedFrequency::new(1.0),
            base_sketch: QuantileSketch::new(policy.sketch_alpha),
            base_sigs: DecayedFrequency::new(1.0),
            ph_duration: PageHinkley::new(policy.delta, policy.lambda),
            ph_flow: PageHinkley::new(policy.delta, policy.lambda),
            cooldown: 0,
            pending: false,
            window_start: None,
            quantile,
            drift_swaps,
            windows_evaluated,
            policy,
        }
    }

    /// Accumulate one routed task into the current window.
    fn absorb(&mut self, feature: &InternedFeature) {
        if self.window_start.is_none() {
            self.window_start = Some(feature.start);
        }
        self.win_sketch.record(feature.duration_us);
        self.win_sigs.record(u64::from(feature.sig.0), 1.0);
    }

    /// Re-anchor the baseline to `ring` (what the freshly swapped model
    /// was trained on), reset both change tests, and start the cooldown.
    /// Called after *every* successful swap — drift-triggered, manual,
    /// or bootstrap promotion — so "no drift" always means "like the
    /// live model's training window".
    fn on_swap(&mut self, ring: &VecDeque<(StageId, SigId, f64)>) {
        self.base_sketch = QuantileSketch::new(self.policy.sketch_alpha);
        self.base_sigs = DecayedFrequency::new(1.0);
        for &(_, sig, duration_us) in ring {
            self.base_sketch.record(duration_us);
            self.base_sigs.record(u64::from(sig.0), 1.0);
        }
        self.ph_duration.reset();
        self.ph_flow.reset();
        self.cooldown = self.policy.cooldown_windows;
        self.pending = false;
    }

    /// Close every window the watermark has passed and return whether a
    /// confirmed drift should trigger a retrain now.
    fn evaluate(&mut self, watermark: SimTime) -> bool {
        let Some(mut start) = self.window_start else {
            return false;
        };
        let mut drifted = false;
        while start + self.policy.window <= watermark {
            drifted |= self.close_window();
            start += self.policy.window;
        }
        self.window_start = Some(start);
        drifted
    }

    /// Close one window: feed the change tests when the window carries
    /// enough samples and a baseline exists, then reset the accumulators.
    fn close_window(&mut self) -> bool {
        let enough = self.win_sketch.count() >= self.policy.min_window_samples;
        let mut tripped = false;
        if enough && !self.base_sketch.is_empty() {
            self.windows_evaluated.fetch_add(1, Ordering::SeqCst);
            let flow_stat = self.win_sigs.l1_distance(&self.base_sigs);
            let dur_stat = match (
                self.win_sketch.percentile(self.quantile),
                self.base_sketch.percentile(self.quantile),
            ) {
                (Some(win), Some(base)) if base > 0.0 => (win - base).abs() / base,
                _ => 0.0,
            };
            tripped = self.ph_flow.observe(flow_stat);
            tripped |= self.ph_duration.observe(dur_stat);
        }
        if self.win_sketch.count() > 0 {
            self.win_sketch = QuantileSketch::new(self.policy.sketch_alpha);
            self.win_sigs = DecayedFrequency::new(1.0);
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return false;
        }
        tripped
    }
}

/// Lifecycle state owned by the router thread of a
/// [`spawn_analyzer_pool_with_lifecycle`] pool.
struct RouterLifecycle {
    cfg: LifecycleConfig,
    control_rx: Receiver<PoolCommand>,
    writer_tx: Sender<WriterJob>,
    interner: Arc<SignatureInterner>,
    model: Arc<OutlierModel>,
    compiled: Arc<CompiledModel>,
    /// False while in bootstrap (collect-only) mode.
    detecting: bool,
    detecting_flag: Arc<AtomicBool>,
    /// Next checkpoint generation to assemble.
    generation: u64,
    /// Recent traffic for retraining, newest at the back — compacted to
    /// the three fields training needs (stage, interned signature,
    /// duration) instead of whole cloned synopses: 24 bytes per element
    /// and no per-element heap allocation. Signatures are resolved back
    /// through the shared interner only on the (cold) retrain path.
    ring: VecDeque<(StageId, SigId, f64)>,
    seen: u64,
    since_checkpoint: u64,
    next_attempt: u64,
    /// Drift detection state, present when the configuration carries an
    /// [`AdaptPolicy`].
    adapt: Option<AdaptState>,
}

impl RouterLifecycle {
    /// Record one routed element in the retrain ring buffer and counters.
    fn absorb(&mut self, feature: &InternedFeature) {
        if self.ring.len() == self.cfg.retrain_window {
            self.ring.pop_front();
        }
        self.ring
            .push_back((feature.stage, feature.sig, feature.duration_us));
        self.seen += 1;
        self.since_checkpoint += 1;
        if let Some(adapt) = self.adapt.as_mut() {
            adapt.absorb(feature);
        }
    }

    /// Batch-boundary lifecycle work: drain control commands, attempt
    /// bootstrap promotion, and take an automatic checkpoint when due.
    fn pump(&mut self, watermark: SimTime, shard_txs: &[Sender<ShardMsg>]) {
        let commands: Vec<PoolCommand> = self.control_rx.try_iter().collect();
        for command in commands {
            match command {
                PoolCommand::Checkpoint(reply) => self.take_checkpoint(shard_txs, Some(reply)),
                PoolCommand::Retrain(reply) => {
                    let _ = reply.send(self.try_retrain(watermark, shard_txs));
                }
            }
        }
        if !self.detecting
            && self.seen >= self.next_attempt
            && self.try_retrain(watermark, shard_txs).is_err()
        {
            // The gate refused; observe more traffic before retrying.
            self.next_attempt = self.seen + self.cfg.promote_after.max(1);
        }
        // Drift-triggered adaptation: close any adapt windows the
        // watermark has passed. A confirmed trip does NOT retrain on the
        // spot — the ring still holds the regime the drift just
        // invalidated. Instead the trip drops the ring and marks the
        // retrain pending; the swap happens at a later watermark
        // boundary, once enough purely post-drift traffic has refilled
        // the ring (reusing the existing retrain/hot-swap path).
        let drifted = self
            .adapt
            .as_mut()
            .is_some_and(|adapt| adapt.evaluate(watermark));
        if drifted && self.detecting {
            if let Some(adapt) = self.adapt.as_mut() {
                if !adapt.pending {
                    adapt.pending = true;
                    self.ring.clear();
                }
            }
        }
        let retrain_ready = self.detecting
            && self.adapt.as_ref().is_some_and(|adapt| adapt.pending)
            && self.ring.len() as u64 >= self.cfg.min_retrain_samples;
        if retrain_ready {
            match self.try_retrain(watermark, shard_txs) {
                Ok(_) => {
                    // on_swap already cleared `pending` and re-anchored
                    // the baseline to the fresh ring.
                    if let Some(adapt) = self.adapt.as_ref() {
                        adapt.drift_swaps.fetch_add(1, Ordering::SeqCst);
                    }
                }
                Err(_) => {
                    // The gate refused the candidate (sparse or unstable
                    // window); wait at least one window before retrying
                    // so a refusal can't retrain every batch.
                    if let Some(adapt) = self.adapt.as_mut() {
                        adapt.cooldown = adapt.cooldown.max(1);
                    }
                }
            }
        }
        if self.detecting
            && self.cfg.checkpoint_every > 0
            && self.since_checkpoint >= self.cfg.checkpoint_every
        {
            self.take_checkpoint(shard_txs, None);
        }
    }

    /// Collect a snapshot from every shard (in shard order, in-band) and
    /// hand the assembled checkpoint to the writer thread. Bootstrap mode
    /// is never checkpointed: there is no model worth persisting, and
    /// recovery falls back to bootstrap anyway.
    fn take_checkpoint(
        &mut self,
        shard_txs: &[Sender<ShardMsg>],
        reply: Option<Sender<Result<u64, LifecycleError>>>,
    ) {
        let fail = |reply: Option<Sender<Result<u64, LifecycleError>>>, e: LifecycleError| {
            if let Some(reply) = reply {
                let _ = reply.send(Err(e));
            }
        };
        if !self.detecting {
            return fail(reply, LifecycleError::Bootstrapping);
        }
        let mut pending = Vec::with_capacity(shard_txs.len());
        for tx in shard_txs {
            let (snap_tx, snap_rx) = bounded(1);
            if tx.send(ShardMsg::Snapshot(snap_tx)).is_err() {
                return fail(reply, LifecycleError::PoolClosed);
            }
            pending.push(snap_rx);
        }
        let mut shards = Vec::with_capacity(pending.len());
        for snap_rx in pending {
            match snap_rx.recv() {
                Ok(snapshot) => shards.push(snapshot),
                Err(_) => return fail(reply, LifecycleError::PoolClosed),
            }
        }
        let checkpoint = Checkpoint::new(
            self.generation,
            self.model.clone(),
            self.compiled.clone(),
            self.interner.clone(),
            shards,
        );
        self.generation += 1;
        self.since_checkpoint = 0;
        if self.writer_tx.send((checkpoint, reply)).is_err() {
            // Writer gone; the reply (if any) went with the job.
        }
    }

    /// Train a candidate model from the retrain ring buffer, gate it with
    /// k-fold cross-validation over the pooled durations, and — if it
    /// passes — broadcast an in-band swap to every shard.
    fn try_retrain(
        &mut self,
        watermark: SimTime,
        shard_txs: &[Sender<ShardMsg>],
    ) -> Result<SwapReport, LifecycleError> {
        let have = self.ring.len() as u64;
        let need = self.cfg.min_retrain_samples;
        if have < need {
            return Err(LifecycleError::InsufficientData { have, need });
        }
        let mc = self.cfg.model_config;
        // Whole-window stability gate: if even the pooled duration
        // distribution cannot support a stable percentile threshold, the
        // traffic window is too heterogeneous to train from.
        let durations: Vec<f64> = self.ring.iter().map(|&(_, _, d)| d).collect();
        let outcome = saad_stats::kfold::validate_percentile_threshold(
            &durations,
            mc.kfold,
            mc.duration_percentile,
        )
        .ok_or(LifecycleError::InsufficientData { have, need })?;
        if outcome.is_unstable(mc.kfold_tolerance) {
            return Err(LifecycleError::UnstableModel {
                heldout_rate: outcome.mean_heldout_rate,
                nominal_rate: outcome.nominal_rate,
            });
        }
        let mut builder = ModelBuilder::new();
        // Resolve each distinct SigId back to its signature once; the
        // ring's ids all came from this pool's shared interner.
        let mut resolved: HashMap<SigId, Signature> = HashMap::new();
        for &(stage, sig, duration_us) in &self.ring {
            let signature = resolved.entry(sig).or_insert_with(|| {
                self.interner
                    .resolve(sig)
                    .expect("retrain ring SigId interned by this pool")
            });
            builder.observe_parts(stage, signature, duration_us);
        }
        let model = Arc::new(builder.try_build(mc)?);
        // Compiled against the SAME shared interner every shard already
        // uses, so interned features stay valid across the swap.
        let compiled = Arc::new(model.compile(&self.interner));
        for tx in shard_txs {
            if tx
                .send(ShardMsg::Swap {
                    model: model.clone(),
                    compiled: compiled.clone(),
                    watermark,
                })
                .is_err()
            {
                return Err(LifecycleError::PoolClosed);
            }
        }
        let promoted = !self.detecting;
        self.model = model;
        self.compiled = compiled;
        self.detecting = true;
        self.detecting_flag.store(true, Ordering::SeqCst);
        if let Some(adapt) = self.adapt.as_mut() {
            // Every swap re-anchors the drift baseline: the no-drift
            // reference is always the live model's training window.
            adapt.on_swap(&self.ring);
        }
        Ok(SwapReport {
            trained_from: have,
            promoted,
            stages: self.model.stage_count(),
        })
    }
}

/// Handle to an analyzer pool with a durable model lifecycle: everything
/// [`PoolHandle`] offers, plus checkpoint/retrain control and recovery
/// introspection. See [`spawn_analyzer_pool_with_lifecycle`].
#[derive(Debug)]
pub struct LifecyclePool {
    pool: PoolHandle,
    control: Sender<PoolCommand>,
    writer: Option<JoinHandle<()>>,
    detecting: Arc<AtomicBool>,
    checkpoints_written: Arc<AtomicU64>,
    checkpoint_retries: Arc<AtomicU64>,
    last_generation: Arc<AtomicU64>,
    last_error: Arc<parking_lot::Mutex<Option<LifecycleError>>>,
    checkpoint_latency: Arc<Histogram>,
    recovered_generation: Option<u64>,
    rejected: Vec<(PathBuf, CheckpointError)>,
    drift_swaps: Arc<AtomicU64>,
    adapt_windows: Arc<AtomicU64>,
}

/// Sentinel for "no checkpoint written yet" in `last_generation`.
const NO_GENERATION: u64 = u64::MAX;

impl LifecyclePool {
    /// Receiver of detected anomaly events, merged across all shards.
    pub fn events(&self) -> &Receiver<AnomalyEvent> {
        self.pool.events()
    }

    /// Drain any events currently queued without blocking.
    pub fn drain_events(&self) -> Vec<AnomalyEvent> {
        self.pool.drain_events()
    }

    /// Synopses delivered to shard workers so far.
    pub fn processed(&self) -> u64 {
        self.pool.processed()
    }

    /// Total shard-worker restarts after panics.
    pub fn restarts(&self) -> u64 {
        self.pool.restarts()
    }

    /// Poison synopses skipped across all shards.
    pub fn skipped(&self) -> u64 {
        self.pool.skipped()
    }

    /// Synopses the transport reported lost, counted once per report.
    pub fn tasks_lost(&self) -> u64 {
        self.pool.tasks_lost()
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Whether the pool has a model and is classifying (true), or is in
    /// bootstrap collect-only mode (false).
    pub fn is_detecting(&self) -> bool {
        self.detecting.load(Ordering::SeqCst)
    }

    /// Checkpoints durably written so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written.load(Ordering::SeqCst)
    }

    /// Hot swaps triggered by the drift detector (0 without an
    /// [`AdaptPolicy`]; manual retrains and bootstrap promotion are not
    /// counted here).
    pub fn drift_swaps(&self) -> u64 {
        self.drift_swaps.load(Ordering::SeqCst)
    }

    /// Adapt windows that closed with enough samples to contribute drift
    /// evidence (0 without an [`AdaptPolicy`]).
    pub fn adapt_windows(&self) -> u64 {
        self.adapt_windows.load(Ordering::SeqCst)
    }

    /// Transient checkpoint write failures retried with backoff so far
    /// (each failed attempt that was retried counts once).
    pub fn checkpoint_retries(&self) -> u64 {
        self.checkpoint_retries.load(Ordering::SeqCst)
    }

    /// Generation of the most recent durable checkpoint, if any.
    pub fn last_checkpoint_generation(&self) -> Option<u64> {
        match self.last_generation.load(Ordering::SeqCst) {
            NO_GENERATION => None,
            generation => Some(generation),
        }
    }

    /// The most recent background checkpoint-write failure, if any.
    /// (Explicit [`LifecyclePool::checkpoint_now`] calls surface their
    /// errors directly.)
    pub fn last_checkpoint_error(&self) -> Option<LifecycleError> {
        self.last_error.lock().clone()
    }

    /// Generation this pool was restored from at startup (`None` if it
    /// started in bootstrap mode).
    pub fn recovered_generation(&self) -> Option<u64> {
        self.recovered_generation
    }

    /// Checkpoint files rejected during startup recovery, newest first,
    /// each with the typed reason (corruption, truncation, version skew).
    pub fn rejected_checkpoints(&self) -> &[(PathBuf, CheckpointError)] {
        &self.rejected
    }

    /// Expose the pool's live counters plus the lifecycle layer's own:
    /// checkpoint write latency (wall-clock histogram recorded on the
    /// writer thread), checkpoints written, last durable generation, and
    /// the detecting/bootstrap flag.
    pub fn register_metrics(&self, registry: &Registry) {
        self.pool.register_metrics(registry);
        registry.attach_histogram(
            "saad_checkpoint_write_latency_us",
            "Wall-clock time to durably write one checkpoint, in microseconds",
            &[],
            Arc::clone(&self.checkpoint_latency),
        );
        let written = Arc::clone(&self.checkpoints_written);
        registry.register_counter_fn(
            "saad_checkpoints_written_total",
            "Checkpoints durably written by this pool",
            &[],
            move || written.load(Ordering::SeqCst),
        );
        let retries = Arc::clone(&self.checkpoint_retries);
        registry.register_counter_fn(
            "saad_checkpoint_retries",
            "Transient checkpoint write failures retried with backoff",
            &[],
            move || retries.load(Ordering::SeqCst),
        );
        let last_gen = Arc::clone(&self.last_generation);
        registry.register_gauge_fn(
            "saad_checkpoint_last_generation",
            "Generation of the most recent durable checkpoint (-1 before the first)",
            &[],
            move || match last_gen.load(Ordering::SeqCst) {
                NO_GENERATION => -1,
                generation => generation as i64,
            },
        );
        let detecting = Arc::clone(&self.detecting);
        registry.register_gauge_fn(
            "saad_pool_detecting",
            "1 while the pool classifies with a model, 0 in bootstrap collect-only mode",
            &[],
            move || i64::from(detecting.load(Ordering::SeqCst)),
        );
        let drift_swaps = Arc::clone(&self.drift_swaps);
        registry.register_counter_fn(
            "saad_drift_swaps_total",
            "Hot model swaps triggered by the drift detector",
            &[],
            move || drift_swaps.load(Ordering::SeqCst),
        );
        let adapt_windows = Arc::clone(&self.adapt_windows);
        registry.register_counter_fn(
            "saad_adapt_windows_total",
            "Adapt windows that closed with enough samples for drift evidence",
            &[],
            move || adapt_windows.load(Ordering::SeqCst),
        );
    }

    /// Request a checkpoint; the reply arrives once the checkpoint is
    /// durably on disk. Commands are applied at the next batch boundary
    /// (or at end of stream), so an idle pool replies only after the next
    /// batch — send an empty batch to nudge it if needed.
    pub fn request_checkpoint(&self) -> Receiver<Result<u64, LifecycleError>> {
        let (tx, rx) = bounded(1);
        if self
            .control
            .send(PoolCommand::Checkpoint(tx.clone()))
            .is_err()
        {
            let _ = tx.send(Err(LifecycleError::PoolClosed));
        }
        rx
    }

    /// Blocking convenience for [`LifecyclePool::request_checkpoint`].
    ///
    /// # Errors
    ///
    /// [`LifecycleError::Bootstrapping`] before promotion,
    /// [`LifecycleError::Checkpoint`] if the write failed, or
    /// [`LifecycleError::PoolClosed`] if the pool is gone.
    pub fn checkpoint_now(&self) -> Result<u64, LifecycleError> {
        self.request_checkpoint()
            .recv()
            .unwrap_or(Err(LifecycleError::PoolClosed))
    }

    /// Request a hot model swap retrained from the recent synopsis
    /// window. Applied at the next batch boundary, like
    /// [`LifecyclePool::request_checkpoint`].
    pub fn request_retrain(&self) -> Receiver<Result<SwapReport, LifecycleError>> {
        let (tx, rx) = bounded(1);
        if self.control.send(PoolCommand::Retrain(tx.clone())).is_err() {
            let _ = tx.send(Err(LifecycleError::PoolClosed));
        }
        rx
    }

    /// Blocking convenience for [`LifecyclePool::request_retrain`].
    ///
    /// # Errors
    ///
    /// [`LifecycleError::InsufficientData`] or
    /// [`LifecycleError::UnstableModel`] when the gate refuses the
    /// candidate, [`LifecycleError::Config`] for an invalid training
    /// configuration, or [`LifecycleError::PoolClosed`].
    pub fn retrain_now(&self) -> Result<SwapReport, LifecycleError> {
        self.request_retrain()
            .recv()
            .unwrap_or(Err(LifecycleError::PoolClosed))
    }

    /// Wait for the pool to finish (input channel closed): the final
    /// checkpoint is durable once this returns. Returns each shard's
    /// detector for inspection, like [`PoolHandle::join`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`AnalyzerError`] from the router or any
    /// shard, after joining every thread.
    pub fn join(mut self) -> Result<Vec<AnomalyDetector>, AnalyzerError> {
        drop(self.control);
        let result = self.pool.join();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        result
    }
}

/// Spawn an analyzer pool with a durable model lifecycle rooted at `dir`:
///
/// * **Recovery** — on startup the newest checkpoint that decodes cleanly
///   is restored (model, signature interner, and every shard's windowed
///   state); corrupt, truncated, or version-skewed files are skipped with
///   typed reasons (see [`LifecyclePool::rejected_checkpoints`]). A
///   checkpoint taken with a different worker count is resharded by
///   merging the snapshots and re-partitioning along the pool's own
///   routing function.
/// * **Bootstrap** — with no usable checkpoint the pool starts in
///   collect-only mode: windows are observed and accounted (emitting
///   [`AnomalyKind::ModelUnavailable`] events with completeness ratios)
///   but nothing is classified. After
///   [`LifecycleConfig::promote_after`] observations the router trains a
///   model from the recent synopsis window and — if the k-fold stability
///   gate passes — promotes the pool to detecting mode.
/// * **Checkpoints** — while detecting, the router snapshots every shard
///   at batch boundaries (every [`LifecycleConfig::checkpoint_every`]
///   synopses, on [`LifecyclePool::checkpoint_now`], and at shutdown) and
///   a dedicated writer thread persists them atomically, pruning old
///   generations.
/// * **Hot swap** — [`LifecyclePool::retrain_now`] retrains from recent
///   traffic and broadcasts the new model in-band to every shard, which
///   installs it at the swap watermark: no synopsis is dropped, double
///   counted, or classified by a half-installed model.
///
/// # Errors
///
/// Fails with [`LifecycleError::Checkpoint`] if the store directory is
/// unusable or recovery I/O fails (individual bad checkpoint files are
/// recovered around, not errors), or [`LifecycleError::Config`] for an
/// invalid detector configuration.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn spawn_analyzer_pool_with_lifecycle(
    config: DetectorConfig,
    supervisor: SupervisorConfig,
    lifecycle: LifecycleConfig,
    workers: usize,
    dir: impl Into<PathBuf>,
    rx: Receiver<Vec<TaskSynopsis>>,
    loss_rx: Option<Receiver<LossReport>>,
) -> Result<LifecyclePool, LifecycleError> {
    spawn_lifecycle_pool_inner(
        config,
        supervisor,
        lifecycle,
        workers,
        dir,
        PoolInput::Raw(rx),
        loss_rx,
    )
}

/// [`spawn_analyzer_pool_with_lifecycle`] over a single ordered channel
/// of [`SequencedInput`] steps instead of separate batch and loss
/// channels.
///
/// Loss reports take effect at exactly their stream position, so the
/// pool's event multiset is a pure function of the sequence it is fed:
/// two pools consuming identical sequences emit identical event
/// multisets. Use this when detection output must be reproducible or
/// auditable against a recorded stream — e.g. replaying a root
/// collector's linearized output through an oracle pool to prove a
/// failover degraded detection by exactly its accounted gap.
///
/// # Errors
///
/// Same conditions as [`spawn_analyzer_pool_with_lifecycle`].
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn spawn_sequenced_analyzer_pool_with_lifecycle(
    config: DetectorConfig,
    supervisor: SupervisorConfig,
    lifecycle: LifecycleConfig,
    workers: usize,
    dir: impl Into<PathBuf>,
    rx: Receiver<SequencedInput>,
) -> Result<LifecyclePool, LifecycleError> {
    spawn_lifecycle_pool_inner(
        config,
        supervisor,
        lifecycle,
        workers,
        dir,
        PoolInput::Sequenced(rx),
        None,
    )
}

fn spawn_lifecycle_pool_inner(
    config: DetectorConfig,
    supervisor: SupervisorConfig,
    lifecycle: LifecycleConfig,
    workers: usize,
    dir: impl Into<PathBuf>,
    input: PoolInput,
    loss_rx: Option<Receiver<LossReport>>,
) -> Result<LifecyclePool, LifecycleError> {
    assert!(workers > 0, "analyzer pool needs at least one worker");
    let store = CheckpointStore::create(dir, lifecycle.keep)?;
    let recovery = store.recover()?;
    let next_generation = store.latest_generation()?.map_or(0, |g| g + 1);
    let rejected = recovery.rejected;

    let (recovered_generation, detecting, model, compiled, interner, detectors) =
        match recovery.checkpoint {
            Some(checkpoint) => {
                let Checkpoint {
                    generation,
                    model,
                    compiled,
                    interner,
                    shards,
                } = checkpoint;
                let shards = if shards.len() == workers {
                    shards
                } else {
                    // Worker count changed since the checkpoint: merge the
                    // old shards and re-partition along this pool's own
                    // routing, so every (host, stage) window lands on the
                    // shard that will keep feeding it.
                    match DetectorSnapshot::merge(shards) {
                        Some(merged) => {
                            merged.partition(workers, |host, stage| shard_for(host, stage, workers))
                        }
                        None => Vec::new(),
                    }
                };
                let detectors: Vec<AnomalyDetector> = if shards.is_empty() {
                    (0..workers)
                        .map(|_| {
                            AnomalyDetector::with_shared(
                                model.clone(),
                                compiled.clone(),
                                interner.clone(),
                                config,
                            )
                        })
                        .collect()
                } else {
                    shards
                        .into_iter()
                        .map(AnomalyDetector::from_snapshot)
                        .collect()
                };
                (Some(generation), true, model, compiled, interner, detectors)
            }
            None => {
                // Bootstrap: no usable checkpoint. Collect-only detectors
                // share a fresh interner; the placeholder model never
                // classifies anything and is replaced at promotion.
                let interner = Arc::new(SignatureInterner::new());
                let model = Arc::new(ModelBuilder::new().build(ModelConfig::default()));
                let compiled = Arc::new(model.compile(&interner));
                let mut detectors = Vec::with_capacity(workers);
                for _ in 0..workers {
                    detectors.push(AnomalyDetector::collecting(interner.clone(), config)?);
                }
                (None, false, model, compiled, interner, detectors)
            }
        };

    let detecting_flag = Arc::new(AtomicBool::new(detecting));
    let checkpoints_written = Arc::new(AtomicU64::new(0));
    let checkpoint_retries = Arc::new(AtomicU64::new(0));
    let last_generation = Arc::new(AtomicU64::new(NO_GENERATION));
    let last_error: Arc<parking_lot::Mutex<Option<LifecycleError>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let checkpoint_latency = Arc::new(Histogram::new());
    let meta = lifecycle.meta.clone();
    let checkpoint_stall = lifecycle.checkpoint_stall;
    let retry_cap = lifecycle.checkpoint_retries;
    let retry_base = lifecycle.checkpoint_retry_backoff;
    let mut fail_first = lifecycle.checkpoint_fail_first;

    let (writer_tx, writer_rx) = unbounded::<WriterJob>();
    let (written, last_gen, errors) = (
        checkpoints_written.clone(),
        last_generation.clone(),
        last_error.clone(),
    );
    let latency = checkpoint_latency.clone();
    let retries_counter = checkpoint_retries.clone();
    let writer_meta = meta.clone();
    let writer = std::thread::Builder::new()
        .name("saad-checkpoint-writer".into())
        .spawn(move || {
            for (checkpoint, reply) in writer_rx.iter() {
                let started = Instant::now();
                let result = meta_tick(&writer_meta, MetaStage::Checkpoint, || {
                    if let Some(stall) = checkpoint_stall {
                        std::thread::sleep(stall);
                    }
                    let mut attempt = 0u32;
                    loop {
                        let saved = if fail_first > 0 {
                            fail_first -= 1;
                            Err(CheckpointError::Io(
                                "injected transient write failure".to_owned(),
                            ))
                        } else {
                            store.save(&checkpoint).map(|_| ())
                        };
                        match saved {
                            Ok(()) => break Ok(checkpoint.generation),
                            // Only transient I/O failures are worth a
                            // rewrite; corruption-class errors surface
                            // immediately.
                            Err(CheckpointError::Io(_)) if attempt < retry_cap => {
                                attempt += 1;
                                retries_counter.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(checkpoint_retry_delay(
                                    retry_base,
                                    attempt,
                                    checkpoint.generation,
                                ));
                            }
                            Err(e) => break Err(LifecycleError::from(e)),
                        }
                    }
                });
                latency.record(started.elapsed().as_micros() as u64);
                match &result {
                    Ok(generation) => {
                        written.fetch_add(1, Ordering::SeqCst);
                        last_gen.store(*generation, Ordering::SeqCst);
                    }
                    Err(e) => *errors.lock() = Some(e.clone()),
                }
                if let Some(reply) = reply {
                    let _ = reply.send(result);
                }
            }
        })
        .expect("spawn checkpoint writer thread");

    let (control_tx, control_rx) = unbounded();
    let next_attempt = lifecycle.promote_after;
    let drift_swaps = Arc::new(AtomicU64::new(0));
    let adapt_windows = Arc::new(AtomicU64::new(0));
    let adapt = lifecycle.adapt.clone().map(|policy| {
        AdaptState::new(
            policy,
            lifecycle.model_config.duration_percentile,
            drift_swaps.clone(),
            adapt_windows.clone(),
        )
    });
    let router_lifecycle = RouterLifecycle {
        cfg: lifecycle,
        control_rx,
        writer_tx,
        interner,
        model,
        compiled,
        detecting,
        detecting_flag: detecting_flag.clone(),
        generation: next_generation,
        ring: VecDeque::new(),
        seen: 0,
        since_checkpoint: 0,
        next_attempt,
        adapt,
    };
    let pool = spawn_pool_inner(
        detectors,
        supervisor,
        config.window,
        input,
        loss_rx,
        Some(router_lifecycle),
        meta,
    );
    Ok(LifecyclePool {
        pool,
        control: control_tx,
        writer: Some(writer),
        detecting: detecting_flag,
        checkpoints_written,
        checkpoint_retries,
        last_generation,
        last_error,
        checkpoint_latency,
        recovered_generation,
        rejected,
        drift_swaps,
        adapt_windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelBuilder, ModelConfig};
    use crate::TaskUid;
    use saad_logging::LogPointId;
    use saad_sim::{SimDuration, SimTime};

    fn synopsis(points: &[u16], dur_us: u64, start: SimTime, uid: u64) -> TaskSynopsis {
        synopsis_on(0, points, dur_us, start, uid)
    }

    fn synopsis_on(
        host: u16,
        points: &[u16],
        dur_us: u64,
        start: SimTime,
        uid: u64,
    ) -> TaskSynopsis {
        TaskSynopsis {
            host: HostId(host),
            stage: StageId(0),
            uid: TaskUid(uid),
            start,
            duration: SimDuration::from_micros(dur_us),
            log_points: points.iter().map(|&p| (LogPointId(p), 1)).collect(),
        }
    }

    fn model() -> Arc<OutlierModel> {
        let mut b = ModelBuilder::new();
        for i in 0..5000u64 {
            b.observe(&synopsis(&[1, 2], 1_000 + (i % 53) * 5, SimTime::ZERO, i));
        }
        Arc::new(b.build(ModelConfig::default()))
    }

    #[test]
    fn pipeline_detects_anomalies_end_to_end() {
        let (sink, rx) = ChannelSink::new();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        // A minute of traffic with a burst of a brand-new signature.
        for i in 0..100u64 {
            let s = if i.is_multiple_of(4) {
                synopsis(&[1, 9], 1_000, SimTime::from_millis(i * 100), i)
            } else {
                synopsis(&[1, 2], 1_000, SimTime::from_millis(i * 100), i)
            };
            sink.submit(s);
        }
        drop(sink);
        let detector = handle.join().unwrap();
        assert_eq!(detector.tasks_seen(), 100);
    }

    #[test]
    fn events_are_delivered_over_channel() {
        let (sink, rx) = ChannelSink::new();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        for i in 0..50u64 {
            sink.submit(synopsis(&[7], 1_000, SimTime::from_millis(i), i));
        }
        drop(sink);
        // Collect all events until the channel closes.
        let mut events = Vec::new();
        while let Ok(e) = handle.events().recv() {
            events.push(e);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "events: {events:?}"
        );
        assert_eq!(handle.processed(), 50);
        handle.join().unwrap();
    }

    #[test]
    fn multiple_sinks_can_feed_one_analyzer() {
        let (sink, rx) = ChannelSink::new();
        let sink2 = sink.clone();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        let t1 = std::thread::spawn(move || {
            for i in 0..500u64 {
                sink.submit(synopsis(&[1, 2], 1_000, SimTime::from_millis(i), i));
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 0..500u64 {
                sink2.submit(synopsis(&[1, 2], 1_000, SimTime::from_millis(i), 1000 + i));
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let detector = handle.join().unwrap();
        assert_eq!(detector.tasks_seen(), 1000);
    }

    #[test]
    fn model_sink_trains_inline() {
        let sink = ModelSink::new();
        for i in 0..200u64 {
            sink.submit(synopsis(&[1, 2], 1_000, SimTime::ZERO, i));
        }
        assert_eq!(sink.observed(), 200);
        let model = sink.build(ModelConfig::default());
        assert_eq!(model.stage_count(), 1);
    }

    #[test]
    fn detector_sink_detects_inline() {
        let sink = DetectorSink::new(model(), DetectorConfig::default());
        for i in 0..60u64 {
            sink.submit(synopsis(&[3], 1_000, SimTime::from_millis(i * 10), i));
        }
        assert_eq!(sink.tasks_seen(), 60);
        assert!(sink.events_so_far().is_empty(), "window still open");
        let events = sink.finish();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "events: {events:?}"
        );
    }

    #[test]
    fn drain_events_is_nonblocking() {
        let (sink, rx) = ChannelSink::new();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        assert!(handle.drain_events().is_empty());
        drop(sink);
        handle.join().unwrap();
    }

    #[test]
    fn unbounded_sink_counts_disconnected_drops() {
        let (sink, rx) = ChannelSink::new();
        drop(rx);
        for i in 0..3u64 {
            sink.submit(synopsis_on(9, &[1, 2], 1_000, SimTime::ZERO, i));
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.stats().drops_for(HostId(9)).disconnected, 3);
    }

    #[test]
    fn drop_newest_counts_exact_per_host_drops() {
        let (sink, rx) = ChannelSink::bounded(4, OverloadPolicy::DropNewest);
        for i in 0..10u64 {
            let host = (i % 2) as u16;
            sink.submit(synopsis_on(host, &[1, 2], 1_000, SimTime::ZERO, i));
        }
        // 4 queued (uids 0..4), 6 dropped (uids 4..10 → hosts 0,1,0,1,0,1).
        assert_eq!(sink.dropped(), 6);
        assert_eq!(sink.stats().drops_for(HostId(0)).newest, 3);
        assert_eq!(sink.stats().drops_for(HostId(1)).newest, 3);
        let queued: Vec<u64> = rx.try_iter().map(|s| s.uid.0).collect();
        assert_eq!(queued, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_synopses() {
        let (sink, rx) = ChannelSink::bounded(4, OverloadPolicy::DropOldest);
        for i in 0..10u64 {
            sink.submit(synopsis_on(5, &[1, 2], 1_000, SimTime::ZERO, i));
        }
        assert_eq!(sink.dropped(), 6);
        assert_eq!(sink.stats().drops_for(HostId(5)).oldest, 6);
        let queued: Vec<u64> = rx.try_iter().map(|s| s.uid.0).collect();
        assert_eq!(queued, vec![6, 7, 8, 9]);
    }

    #[test]
    fn block_policy_bounds_the_stall_and_counts_timeouts() {
        let timeout = Duration::from_millis(40);
        let (sink, rx) = ChannelSink::bounded(1, OverloadPolicy::Block { timeout });
        sink.submit(synopsis(&[1, 2], 1_000, SimTime::ZERO, 0));
        let start = std::time::Instant::now();
        sink.submit(synopsis(&[1, 2], 1_000, SimTime::ZERO, 1));
        let stalled = start.elapsed();
        assert!(stalled >= timeout, "returned before the timeout");
        assert!(
            stalled < timeout * 20,
            "stalled far beyond the policy bound: {stalled:?}"
        );
        assert_eq!(sink.stats().drops_for(HostId(0)).timed_out, 1);
        drop(rx);
    }

    #[test]
    fn handle_exposes_sink_stats() {
        let (sink, rx) = ChannelSink::bounded(2, OverloadPolicy::DropNewest);
        let stats = sink.stats();
        for i in 0..5u64 {
            sink.submit(synopsis(&[1, 2], 1_000, SimTime::ZERO, i));
        }
        drop(sink);
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx).with_sink_stats(stats);
        assert_eq!(handle.dropped(), 3);
        assert_eq!(handle.drops_by_host()[&HostId(0)].newest, 3);
        handle.join().unwrap();
    }

    #[test]
    fn sink_stats_exact_under_concurrent_multi_host_drops() {
        // N threads hammer one SinkStats with drops across disjoint and
        // shared hosts; every count must land exactly once.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1_000;
        let stats = Arc::new(SinkStats::default());
        let threads: Vec<_> = (0..THREADS)
            .map(|t| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Half the traffic contends on a shared host 0,
                        // half goes to a per-thread host.
                        let host = if i % 2 == 0 {
                            HostId(0)
                        } else {
                            HostId(t as u16 + 1)
                        };
                        match i % 4 {
                            0 => stats.record(host, |c| {
                                c.newest.fetch_add(1, Ordering::Relaxed);
                            }),
                            1 => stats.record(host, |c| {
                                c.oldest.fetch_add(1, Ordering::Relaxed);
                            }),
                            2 => stats.record(host, |c| {
                                c.timed_out.fetch_add(1, Ordering::Relaxed);
                            }),
                            _ => stats.record(host, |c| {
                                c.disconnected.fetch_add(1, Ordering::Relaxed);
                            }),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(stats.dropped(), THREADS * PER_THREAD);
        let totals = stats.drop_totals();
        assert_eq!(totals.total(), THREADS * PER_THREAD);
        assert_eq!(totals.newest, THREADS * PER_THREAD / 4);
        assert_eq!(totals.oldest, THREADS * PER_THREAD / 4);
        assert_eq!(totals.timed_out, THREADS * PER_THREAD / 4);
        assert_eq!(totals.disconnected, THREADS * PER_THREAD / 4);
        let by_host = stats.drops_by_host();
        assert_eq!(by_host.len(), THREADS as usize + 1);
        assert_eq!(by_host[&HostId(0)].total(), THREADS * PER_THREAD / 2);
        for t in 0..THREADS {
            assert_eq!(by_host[&HostId(t as u16 + 1)].total(), PER_THREAD / 2);
        }
    }

    #[test]
    fn pool_register_metrics_exposes_live_counters() {
        let registry = saad_obs::Registry::new();
        let (batch_tx, batch_rx) = unbounded();
        let handle = spawn_analyzer_pool(
            model(),
            DetectorConfig::default(),
            SupervisorConfig::default(),
            2,
            batch_rx,
            None,
        );
        handle.register_metrics(&registry);
        let batch: Vec<TaskSynopsis> = (0..10)
            .map(|i| synopsis(&[1, 2], 1_000, SimTime::from_millis(i * 10), i))
            .collect();
        batch_tx.send(batch).unwrap();
        drop(batch_tx);
        let text = registry.render();
        saad_obs::validate_text(&text).unwrap();
        handle.join().unwrap();
        let text = registry.render();
        assert!(text.contains("saad_pool_processed_total 10"), "{text}");
        assert!(text.contains("saad_pool_batches_routed_total 1"), "{text}");
        assert!(
            text.contains(r#"saad_pool_shard_processed_total{shard="0"}"#),
            "{text}"
        );
    }

    #[test]
    fn join_reports_analyzer_panic_as_error() {
        let (sink, rx) = ChannelSink::new();
        let supervisor = SupervisorConfig {
            max_restarts: 0,
            panic_after: Some(1),
            ..SupervisorConfig::default()
        };
        let handle =
            spawn_supervised_analyzer(model(), DetectorConfig::default(), supervisor, rx, None);
        sink.submit(synopsis(&[1, 2], 1_000, SimTime::ZERO, 0));
        drop(sink);
        match handle.join() {
            Err(AnalyzerError::RestartsExhausted { restarts: 0, panic }) => {
                assert!(panic.contains("injected"), "{panic}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn supervisor_restarts_from_snapshot_and_skips_poison() {
        let (sink, rx) = ChannelSink::new();
        let supervisor = SupervisorConfig {
            snapshot_every: 10,
            panic_after: Some(30),
            ..SupervisorConfig::default()
        };
        let handle =
            spawn_supervised_analyzer(model(), DetectorConfig::default(), supervisor, rx, None);
        for i in 0..60u64 {
            sink.submit(synopsis(&[7], 1_000, SimTime::from_millis(i * 10), i));
        }
        drop(sink);
        let mut events = Vec::new();
        while let Ok(e) = handle.events().recv() {
            events.push(e);
        }
        assert_eq!(handle.restarts(), 1);
        assert_eq!(handle.skipped(), 1);
        assert_eq!(handle.processed(), 60);
        let detector = handle.join().unwrap();
        // Everything except the poison synopsis was analyzed…
        assert_eq!(detector.tasks_seen(), 59);
        // …and detection survived the crash.
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "events: {events:?}"
        );
    }

    #[test]
    fn silent_host_raises_liveness_event_and_rearms() {
        let (sink, rx) = ChannelSink::new();
        let supervisor = SupervisorConfig {
            silent_after: 2,
            ..SupervisorConfig::default()
        };
        let handle =
            spawn_supervised_analyzer(model(), DetectorConfig::default(), supervisor, rx, None);
        let mut uid = 0u64;
        let at = |min: u64, sec: u64| SimTime::from_secs(min * 60 + sec);
        // Both hosts active in minute 0.
        for s in 0..10u64 {
            for host in [0u16, 1] {
                sink.submit(synopsis_on(host, &[1, 2], 1_000, at(0, s * 6), uid));
                uid += 1;
            }
        }
        // Host 1 goes silent; host 0 keeps the clock moving for 4 minutes.
        for min in 1..=4u64 {
            for s in 0..10u64 {
                sink.submit(synopsis_on(0, &[1, 2], 1_000, at(min, s * 6), uid));
                uid += 1;
            }
        }
        // Host 1 comes back.
        sink.submit(synopsis_on(1, &[1, 2], 1_000, at(5, 0), uid));
        drop(sink);
        let mut events = Vec::new();
        while let Ok(e) = handle.events().recv() {
            events.push(e);
        }
        handle.join().unwrap();
        let silent: Vec<_> = events.iter().filter(|e| e.kind.is_liveness()).collect();
        assert_eq!(silent.len(), 1, "{events:?}");
        assert_eq!(silent[0].host, HostId(1));
        assert_eq!(silent[0].stage, StageId::NONE);
        assert_eq!(silent[0].completeness, 0.0);
        assert!(matches!(
            silent[0].kind,
            AnomalyKind::HostSilent { windows } if windows >= 2
        ));
    }

    #[test]
    fn loss_reports_reach_the_detector() {
        let (sink, rx) = ChannelSink::new();
        let (loss_tx, loss_rx) = unbounded();
        let handle = spawn_supervised_analyzer(
            model(),
            DetectorConfig::default(),
            SupervisorConfig::default(),
            rx,
            Some(loss_rx),
        );
        loss_tx
            .send(LossReport {
                host: HostId(0),
                at: SimTime::from_secs(5),
                count: 40,
            })
            .unwrap();
        for i in 0..20u64 {
            sink.submit(synopsis(&[1, 2], 1_000, SimTime::from_secs(i), i));
        }
        drop(sink);
        let detector = handle.join().unwrap();
        assert_eq!(detector.tasks_lost(), 40);
        assert_eq!(detector.tasks_seen(), 20);
    }

    /// Sorted Debug strings — order-insensitive event comparison.
    fn event_keys(events: &[AnomalyEvent]) -> Vec<String> {
        let mut keys: Vec<String> = events.iter().map(|e| format!("{e:?}")).collect();
        keys.sort_unstable();
        keys
    }

    /// A mixed stream over several hosts and stages: mostly healthy, plus
    /// a rare-signature surge on (host 1, stage 0) in minute 1 and a
    /// brand-new signature on (host 2, stage 1) in minute 2.
    fn mixed_stream() -> Vec<TaskSynopsis> {
        let mut out = Vec::new();
        let mut uid = 0u64;
        for minute in 0..4u64 {
            for i in 0..120u64 {
                let host = (i % 3) as u16;
                let stage = (i % 2) as u16;
                let points: &[u16] = if minute == 1 && host == 1 && stage == 0 && i % 4 == 0 {
                    &[1, 2, 3] // trained-rare surge
                } else if minute == 2 && host == 2 && stage == 1 && i == 7 {
                    &[9] // never trained
                } else {
                    &[1, 2]
                };
                let mut s = synopsis_on(host, points, 1_000, SimTime::ZERO, uid);
                s.stage = StageId(stage);
                s.start = SimTime::from_mins(minute) + SimDuration::from_millis(i * 450);
                out.push(s);
                uid += 1;
            }
        }
        out
    }

    /// A model covering stages 0 and 1 with [1,2] common and [1,2,3]
    /// rare, so the mixed stream's anomalies are detectable.
    fn multi_stage_model() -> Arc<OutlierModel> {
        let mut b = ModelBuilder::new();
        for i in 0..20_000u64 {
            let mut s = if i.is_multiple_of(1000) {
                synopsis(&[1, 2, 3], 1_000, SimTime::ZERO, i)
            } else {
                synopsis(&[1, 2], 1_000 + (i % 53) * 5, SimTime::ZERO, i)
            };
            s.stage = StageId((i % 2) as u16);
            b.observe(&s);
        }
        Arc::new(b.build(ModelConfig::default()))
    }

    #[test]
    fn pool_matches_single_supervised_analyzer() {
        let model = multi_stage_model();
        let stream = mixed_stream();
        // Reference: single supervised analyzer over the same stream.
        let (sink, rx) = ChannelSink::new();
        let single = spawn_supervised_analyzer(
            model.clone(),
            DetectorConfig::default(),
            SupervisorConfig::default(),
            rx,
            None,
        );
        for s in &stream {
            sink.submit(s.clone());
        }
        drop(sink);
        let mut single_events = Vec::new();
        while let Ok(e) = single.events().recv() {
            single_events.push(e);
        }
        let single_detector = single.join().unwrap();
        assert!(!single_events.is_empty(), "stream should produce events");

        for workers in [1usize, 3] {
            let (batch_tx, batch_rx) = unbounded();
            let pool = spawn_analyzer_pool(
                model.clone(),
                DetectorConfig::default(),
                SupervisorConfig::default(),
                workers,
                batch_rx,
                None,
            );
            // Batches of 16, as a frame-batched transport would send them.
            for chunk in stream.chunks(16) {
                batch_tx.send(chunk.to_vec()).unwrap();
            }
            drop(batch_tx);
            let mut pool_events = Vec::new();
            while let Ok(e) = pool.events().recv() {
                pool_events.push(e);
            }
            assert_eq!(pool.processed(), stream.len() as u64);
            let detectors = pool.join().unwrap();
            assert_eq!(detectors.len(), workers);
            let seen: u64 = detectors.iter().map(|d| d.tasks_seen()).sum();
            assert_eq!(seen, single_detector.tasks_seen());
            assert_eq!(
                event_keys(&pool_events),
                event_keys(&single_events),
                "pool with {workers} workers diverged"
            );
        }
    }

    #[test]
    fn batch_pool_matches_raw_pool_and_single_analyzer() {
        let model = multi_stage_model();
        let stream = mixed_stream();
        // Reference: single supervised analyzer over the same stream.
        let (sink, rx) = ChannelSink::new();
        let single = spawn_supervised_analyzer(
            model.clone(),
            DetectorConfig::default(),
            SupervisorConfig::default(),
            rx,
            None,
        );
        for s in &stream {
            sink.submit(s.clone());
        }
        drop(sink);
        let mut single_events = Vec::new();
        while let Ok(e) = single.events().recv() {
            single_events.push(e);
        }
        let single_detector = single.join().unwrap();

        for workers in [1usize, 3] {
            // Producer side: a BatchSink interning into the pool's own
            // interner, 16 synopses per SoA batch.
            let interner = Arc::new(SignatureInterner::new());
            let (batch_sink, batch_rx) = BatchSink::new(16, interner.clone());
            let pool = spawn_batch_analyzer_pool(
                model.clone(),
                DetectorConfig::default(),
                SupervisorConfig {
                    pin_shards: true, // benign wherever pinning is refused
                    ..SupervisorConfig::default()
                },
                workers,
                interner,
                batch_rx,
                None,
            );
            for s in &stream {
                batch_sink.submit(s.clone());
            }
            drop(batch_sink); // flushes the partial tail batch
            let mut pool_events = Vec::new();
            while let Ok(e) = pool.events().recv() {
                pool_events.push(e);
            }
            assert_eq!(pool.processed(), stream.len() as u64);
            let detectors = pool.join().unwrap();
            let seen: u64 = detectors.iter().map(|d| d.tasks_seen()).sum();
            assert_eq!(seen, single_detector.tasks_seen());
            assert_eq!(
                event_keys(&pool_events),
                event_keys(&single_events),
                "batch pool with {workers} workers diverged"
            );
        }
    }

    #[test]
    fn batch_sink_flushes_partial_batch_on_drop() {
        let interner = Arc::new(SignatureInterner::new());
        let (sink, rx) = BatchSink::new(8, interner);
        for i in 0..13u64 {
            sink.submit(synopsis(&[1, 2], 1_000, SimTime::from_millis(i), i));
        }
        let first = rx.try_recv().unwrap();
        assert_eq!(first.len(), 8);
        assert!(rx.try_recv().is_err(), "partial batch must wait for drop");
        drop(sink);
        let tail = rx.try_recv().unwrap();
        assert_eq!(tail.len(), 5);
        // Watermarks within a producer batch are a running maximum.
        assert!(tail.watermarks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn batch_pool_restarts_from_snapshot_and_skips_poison() {
        // Mirror of pool_shard_restarts_from_snapshot_and_skips_poison
        // over the SoA input path: one worker, poison at synopsis 30.
        let interner = Arc::new(SignatureInterner::new());
        let (batch_sink, batch_rx) = BatchSink::new(60, interner.clone());
        let pool = spawn_batch_analyzer_pool(
            model(),
            DetectorConfig::default(),
            SupervisorConfig {
                snapshot_every: 10,
                panic_after: Some(30),
                ..SupervisorConfig::default()
            },
            1,
            interner,
            batch_rx,
            None,
        );
        for i in 0..60u64 {
            batch_sink.submit(synopsis(&[7], 1_000, SimTime::from_millis(i * 10), i));
        }
        drop(batch_sink);
        let mut events = Vec::new();
        while let Ok(e) = pool.events().recv() {
            events.push(e);
        }
        assert_eq!(pool.restarts(), 1);
        assert_eq!(pool.skipped(), 1);
        let detectors = pool.join().unwrap();
        assert_eq!(detectors[0].tasks_seen(), 59);
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "events: {events:?}"
        );
    }

    #[test]
    fn pool_counts_losses_once_despite_broadcast() {
        let (batch_tx, batch_rx) = unbounded();
        let (loss_tx, loss_rx) = unbounded();
        let pool = spawn_analyzer_pool(
            model(),
            DetectorConfig::default(),
            SupervisorConfig::default(),
            4,
            batch_rx,
            Some(loss_rx),
        );
        loss_tx
            .send(LossReport {
                host: HostId(0),
                at: SimTime::from_secs(5),
                count: 40,
            })
            .unwrap();
        let batch: Vec<TaskSynopsis> = (0..20u64)
            .map(|i| synopsis(&[1, 2], 1_000, SimTime::from_secs(i), i))
            .collect();
        batch_tx.send(batch).unwrap();
        drop(batch_tx);
        drop(loss_tx);
        while pool.events().recv().is_ok() {}
        // Counted once at the pool level…
        assert_eq!(pool.tasks_lost(), 40);
        let detectors = pool.join().unwrap();
        // …while every shard detector knows the loss for its own windows.
        assert!(detectors.iter().all(|d| d.tasks_lost() == 40));
    }

    #[test]
    fn pool_shard_restarts_from_snapshot_and_skips_poison() {
        // One worker so panic_after hits a deterministic synopsis.
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool(
            model(),
            DetectorConfig::default(),
            SupervisorConfig {
                snapshot_every: 10,
                panic_after: Some(30),
                ..SupervisorConfig::default()
            },
            1,
            batch_rx,
            None,
        );
        let batch: Vec<TaskSynopsis> = (0..60u64)
            .map(|i| synopsis(&[7], 1_000, SimTime::from_millis(i * 10), i))
            .collect();
        batch_tx.send(batch).unwrap();
        drop(batch_tx);
        let mut events = Vec::new();
        while let Ok(e) = pool.events().recv() {
            events.push(e);
        }
        assert_eq!(pool.restarts(), 1);
        assert_eq!(pool.skipped(), 1);
        let detectors = pool.join().unwrap();
        assert_eq!(detectors[0].tasks_seen(), 59);
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "events: {events:?}"
        );
    }

    #[test]
    fn pool_surfaces_exhausted_restarts() {
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool(
            model(),
            DetectorConfig::default(),
            SupervisorConfig {
                max_restarts: 0,
                panic_after: Some(1),
                ..SupervisorConfig::default()
            },
            2,
            batch_rx,
            None,
        );
        batch_tx
            .send(vec![synopsis(&[1, 2], 1_000, SimTime::ZERO, 0)])
            .unwrap();
        drop(batch_tx);
        match pool.join() {
            Err(AnalyzerError::RestartsExhausted { restarts: 0, panic }) => {
                assert!(panic.contains("injected"), "{panic}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn pool_router_tracks_liveness_across_shards() {
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool(
            model(),
            DetectorConfig::default(),
            SupervisorConfig {
                silent_after: 2,
                ..SupervisorConfig::default()
            },
            4,
            batch_rx,
            None,
        );
        let mut uid = 0u64;
        let at = |min: u64, sec: u64| SimTime::from_secs(min * 60 + sec);
        let mut batch = Vec::new();
        for s in 0..10u64 {
            for host in [0u16, 1] {
                batch.push(synopsis_on(host, &[1, 2], 1_000, at(0, s * 6), uid));
                uid += 1;
            }
        }
        // Host 1 goes silent; host 0 keeps the clock moving.
        for min in 1..=4u64 {
            for s in 0..10u64 {
                batch.push(synopsis_on(0, &[1, 2], 1_000, at(min, s * 6), uid));
                uid += 1;
            }
        }
        batch_tx.send(batch).unwrap();
        drop(batch_tx);
        let mut events = Vec::new();
        while let Ok(e) = pool.events().recv() {
            events.push(e);
        }
        pool.join().unwrap();
        let silent: Vec<_> = events.iter().filter(|e| e.kind.is_liveness()).collect();
        assert_eq!(silent.len(), 1, "{events:?}");
        assert_eq!(silent[0].host, HostId(1));
    }

    #[test]
    fn feed_frame_forwards_fresh_and_ignores_duplicates() {
        let (batch_tx, batch_rx) = unbounded();
        let (loss_tx, loss_rx) = unbounded();
        let fresh = FrameOutcome::Fresh {
            host: HostId(3),
            synopses: vec![
                synopsis_on(3, &[1, 2], 1_000, SimTime::from_secs(9), 0),
                synopsis_on(3, &[1, 2], 1_000, SimTime::from_secs(10), 1),
            ],
            newly_lost: 5,
        };
        assert_eq!(feed_frame(fresh, &batch_tx, &loss_tx), 2);
        let batch = batch_rx.try_recv().unwrap();
        assert_eq!(batch.len(), 2);
        let report = loss_rx.try_recv().unwrap();
        assert_eq!(report.host, HostId(3));
        assert_eq!(report.count, 5);
        assert_eq!(report.at, SimTime::from_secs(9));
        let dup = FrameOutcome::Duplicate {
            host: HostId(3),
            seq: 7,
        };
        assert_eq!(feed_frame(dup, &batch_tx, &loss_tx), 0);
        assert!(batch_rx.try_recv().is_err());
        assert!(loss_rx.try_recv().is_err());
    }

    // --- durable model lifecycle ---

    /// Self-cleaning unique temp directory (no tempfile crate).
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "saad-pipeline-test-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn quick_lifecycle() -> LifecycleConfig {
        LifecycleConfig {
            checkpoint_every: 0,
            promote_after: 300,
            min_retrain_samples: 200,
            ..LifecycleConfig::default()
        }
    }

    /// Healthy two-host traffic: `per_min` tasks per minute of signature
    /// [1, 2] with mildly varying durations.
    fn healthy_stream(mins: u64, per_min: u64) -> Vec<TaskSynopsis> {
        let mut out = Vec::new();
        let mut uid = 0u64;
        for minute in 0..mins {
            for i in 0..per_min {
                let mut s = synopsis_on(
                    (i % 2) as u16,
                    &[1, 2],
                    1_000 + (uid % 53) * 5,
                    SimTime::ZERO,
                    uid,
                );
                s.start =
                    SimTime::from_mins(minute) + SimDuration::from_millis(i * (60_000 / per_min));
                out.push(s);
                uid += 1;
            }
        }
        out
    }

    fn feed(batch_tx: &Sender<Vec<TaskSynopsis>>, stream: &[TaskSynopsis]) {
        for chunk in stream.chunks(60) {
            batch_tx.send(chunk.to_vec()).unwrap();
        }
    }

    /// Control commands apply at the router's next batch boundary, so a
    /// command sent while queued batches are still in flight could land
    /// before them. Wait until the pool has consumed what was fed.
    fn wait_processed(pool: &LifecyclePool, target: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.processed() < target {
            assert!(std::time::Instant::now() < deadline, "pool stalled");
            std::thread::yield_now();
        }
    }

    #[test]
    fn shutdown_advances_every_shard_to_the_final_watermark() {
        // Hosts 1..=5 stop after minute 0; host 0 keeps the clock moving
        // to minute 9. Without the FinalWatermark broadcast, shards owning
        // only the early hosts would shut down with a stale watermark.
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool(
            model(),
            DetectorConfig::default(),
            SupervisorConfig::default(),
            4,
            batch_rx,
            None,
        );
        let mut batch = Vec::new();
        let mut uid = 0u64;
        for host in 0..6u16 {
            batch.push(synopsis_on(
                host,
                &[1, 2],
                1_000,
                SimTime::from_secs(1),
                uid,
            ));
            uid += 1;
        }
        let last = SimTime::from_mins(9);
        batch.push(synopsis_on(0, &[1, 2], 1_000, last, uid));
        batch_tx.send(batch).unwrap();
        drop(batch_tx);
        while pool.events().recv().is_ok() {}
        let mut detectors = pool.join().unwrap();
        for detector in &mut detectors {
            assert_eq!(
                detector.snapshot().watermark(),
                last,
                "shard shut down with a stale watermark"
            );
            assert!(
                detector.flush().is_empty(),
                "shard left windows open through shutdown"
            );
        }
    }

    #[test]
    fn lifecycle_pool_bootstraps_promotes_and_checkpoints() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            quick_lifecycle(),
            2,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        assert!(!pool.is_detecting(), "no checkpoint: must start bootstrap");
        assert_eq!(pool.recovered_generation(), None);

        // Healthy traffic through promotion (promote_after = 300)…
        feed(&batch_tx, &healthy_stream(3, 240));
        // …then a burst of a never-seen signature that only a promoted,
        // detecting pool can flag.
        let mut tail = Vec::new();
        for i in 0..100u64 {
            let points: &[u16] = if i.is_multiple_of(4) {
                &[1, 9]
            } else {
                &[1, 2]
            };
            let mut s = synopsis_on(0, points, 1_000, SimTime::ZERO, 10_000 + i);
            s.start = SimTime::from_mins(4) + SimDuration::from_millis(i * 400);
            tail.push(s);
        }
        feed(&batch_tx, &tail);
        drop(batch_tx);
        let mut events = Vec::new();
        while let Ok(e) = pool.events().recv() {
            events.push(e);
        }
        assert!(pool.is_detecting(), "pool never promoted");
        assert!(
            events.iter().any(|e| e.kind.is_model_unavailable()),
            "bootstrap windows must be accounted as ModelUnavailable: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "promoted pool missed the anomaly burst: {events:?}"
        );
        // The shutdown checkpoint is durable once join returns.
        pool.join().unwrap();
        let store = CheckpointStore::create(dir.path(), 3).unwrap();
        assert!(store.latest_generation().unwrap().is_some());
    }

    /// Like [`healthy_stream`] but with durations scaled by `factor`
    /// (a rollout changing the stage's performance profile) starting at
    /// `start_min`, with uids offset so streams can be concatenated.
    fn scaled_stream(start_min: u64, mins: u64, per_min: u64, factor: f64) -> Vec<TaskSynopsis> {
        let mut out = Vec::new();
        let mut uid = start_min * per_min;
        for minute in start_min..start_min + mins {
            for i in 0..per_min {
                let dur = ((1_000 + (uid % 53) * 5) as f64 * factor) as u64;
                let mut s = synopsis_on((i % 2) as u16, &[1, 2], dur, SimTime::ZERO, uid);
                s.start =
                    SimTime::from_mins(minute) + SimDuration::from_millis(i * (60_000 / per_min));
                out.push(s);
                uid += 1;
            }
        }
        out
    }

    fn adaptive_lifecycle() -> LifecycleConfig {
        LifecycleConfig {
            checkpoint_every: 0,
            promote_after: 300,
            min_retrain_samples: 200,
            // Keep the ring close to one adapt window of traffic so a
            // post-drift retrain trains on the *new* regime, not a
            // mixture dominated by history.
            retrain_window: 500,
            adapt: Some(AdaptPolicy {
                window: SimDuration::from_secs(60),
                min_window_samples: 50,
                cooldown_windows: 1,
                ..AdaptPolicy::default()
            }),
            ..LifecycleConfig::default()
        }
    }

    #[test]
    fn drift_triggers_auto_swap_at_watermark_boundary() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            adaptive_lifecycle(),
            2,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        // Healthy run-in (promotes around minute 1.25, then quiet
        // windows establish the Page-Hinkley null), then a rollout that
        // quintuples every duration.
        feed(&batch_tx, &scaled_stream(0, 6, 240, 1.0));
        feed(&batch_tx, &scaled_stream(6, 6, 240, 5.0));
        drop(batch_tx);
        while pool.events().recv().is_ok() {}
        assert!(pool.is_detecting());
        assert!(
            pool.adapt_windows() > 0,
            "adapt windows never closed with evidence"
        );
        assert!(
            pool.drift_swaps() >= 1,
            "sustained rollout drift must trigger an auto-swap \
             (windows evaluated: {})",
            pool.adapt_windows()
        );
        pool.join().unwrap();
    }

    #[test]
    fn quiet_traffic_never_drift_swaps() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            adaptive_lifecycle(),
            2,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        feed(&batch_tx, &scaled_stream(0, 12, 240, 1.0));
        drop(batch_tx);
        while pool.events().recv().is_ok() {}
        assert!(pool.is_detecting());
        assert!(
            pool.adapt_windows() > 0,
            "quiet windows must still be evaluated"
        );
        assert_eq!(
            pool.drift_swaps(),
            0,
            "stationary traffic must not trigger drift swaps"
        );
        pool.join().unwrap();
    }

    #[test]
    fn checkpoint_is_rejected_in_bootstrap_mode() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            quick_lifecycle(),
            2,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        let reply = pool.request_checkpoint();
        batch_tx.send(Vec::new()).unwrap(); // nudge the batch boundary
        assert_eq!(reply.recv().unwrap(), Err(LifecycleError::Bootstrapping));
        let retrain = pool.request_retrain();
        batch_tx.send(Vec::new()).unwrap();
        assert_eq!(
            retrain.recv().unwrap(),
            Err(LifecycleError::InsufficientData { have: 0, need: 200 })
        );
        drop(batch_tx);
        pool.join().unwrap();
        // Nothing durable came out of bootstrap.
        let store = CheckpointStore::create(dir.path(), 3).unwrap();
        assert_eq!(store.latest_generation().unwrap(), None);
    }

    #[test]
    fn lifecycle_pool_recovers_and_reshards_checkpointed_state() {
        let dir = TempDir::new();
        let stream = healthy_stream(3, 240);
        let seen = stream.len() as u64;
        {
            let (batch_tx, batch_rx) = unbounded();
            let pool = spawn_analyzer_pool_with_lifecycle(
                DetectorConfig::default(),
                SupervisorConfig::default(),
                quick_lifecycle(),
                2,
                dir.path(),
                batch_rx,
                None,
            )
            .unwrap();
            feed(&batch_tx, &stream);
            drop(batch_tx);
            while pool.events().recv().is_ok() {}
            assert!(pool.is_detecting());
            pool.join().unwrap();
        }
        // Same worker count: shard-for-shard restore.
        {
            let (batch_tx, batch_rx) = unbounded();
            let pool = spawn_analyzer_pool_with_lifecycle(
                DetectorConfig::default(),
                SupervisorConfig::default(),
                quick_lifecycle(),
                2,
                dir.path(),
                batch_rx,
                None,
            )
            .unwrap();
            assert!(pool.is_detecting(), "recovered pool must skip bootstrap");
            assert!(pool.recovered_generation().is_some());
            drop(batch_tx);
            while pool.events().recv().is_ok() {}
            let detectors = pool.join().unwrap();
            let total: u64 = detectors.iter().map(|d| d.tasks_seen()).sum();
            assert_eq!(total, seen, "recovered tasks_seen diverged");
        }
        // Different worker count: merge + re-partition along the pool's
        // own routing.
        {
            let (batch_tx, batch_rx) = unbounded();
            let pool = spawn_analyzer_pool_with_lifecycle(
                DetectorConfig::default(),
                SupervisorConfig::default(),
                quick_lifecycle(),
                3,
                dir.path(),
                batch_rx,
                None,
            )
            .unwrap();
            assert!(pool.is_detecting());
            drop(batch_tx);
            while pool.events().recv().is_ok() {}
            let detectors = pool.join().unwrap();
            assert_eq!(detectors.len(), 3);
            let total: u64 = detectors.iter().map(|d| d.tasks_seen()).sum();
            assert_eq!(total, seen, "resharded tasks_seen diverged");
        }
    }

    #[test]
    fn explicit_checkpoint_is_durable_when_the_call_returns() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            quick_lifecycle(),
            2,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        feed(&batch_tx, &healthy_stream(2, 240));
        wait_processed(&pool, 480);
        let reply = pool.request_checkpoint();
        batch_tx.send(Vec::new()).unwrap();
        let generation = reply.recv().unwrap().expect("checkpoint failed");
        // Durable right now — not merely queued.
        let store = CheckpointStore::create(dir.path(), 3).unwrap();
        assert!(store.load(generation).is_ok());
        assert_eq!(pool.last_checkpoint_generation(), Some(generation));
        assert_eq!(pool.checkpoints_written(), 1);
        assert_eq!(pool.last_checkpoint_error(), None);
        drop(batch_tx);
        while pool.events().recv().is_ok() {}
        pool.join().unwrap();
    }

    #[test]
    fn transient_checkpoint_write_failures_are_retried_and_counted() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            LifecycleConfig {
                checkpoint_fail_first: 2,
                checkpoint_retry_backoff: Duration::from_millis(1),
                ..quick_lifecycle()
            },
            2,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        feed(&batch_tx, &healthy_stream(2, 240));
        wait_processed(&pool, 480);
        let reply = pool.request_checkpoint();
        batch_tx.send(Vec::new()).unwrap();
        let generation = reply
            .recv()
            .unwrap()
            .expect("retries must absorb transient write failures");
        let store = CheckpointStore::create(dir.path(), 3).unwrap();
        assert!(store.load(generation).is_ok());
        assert_eq!(pool.checkpoint_retries(), 2, "each failed attempt counts");
        assert_eq!(pool.checkpoints_written(), 1);
        assert_eq!(pool.last_checkpoint_error(), None);
        drop(batch_tx);
        while pool.events().recv().is_ok() {}
        pool.join().unwrap();
    }

    #[test]
    fn exhausted_checkpoint_retries_surface_the_io_error() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            LifecycleConfig {
                // More injected failures than 1 initial try + 2 retries.
                checkpoint_fail_first: 10,
                checkpoint_retries: 2,
                checkpoint_retry_backoff: Duration::from_millis(1),
                ..quick_lifecycle()
            },
            2,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        feed(&batch_tx, &healthy_stream(2, 240));
        wait_processed(&pool, 480);
        let reply = pool.request_checkpoint();
        batch_tx.send(Vec::new()).unwrap();
        let err = reply
            .recv()
            .unwrap()
            .expect_err("all attempts were injected to fail");
        assert!(
            matches!(err, LifecycleError::Checkpoint(CheckpointError::Io(_))),
            "unexpected error: {err:?}"
        );
        assert_eq!(pool.checkpoint_retries(), 2, "retries stop at the cap");
        assert_eq!(pool.checkpoints_written(), 0);
        drop(batch_tx);
        while pool.events().recv().is_ok() {}
        pool.join().unwrap();
    }

    #[test]
    fn hot_swap_loses_and_double_counts_nothing_under_load() {
        let dir = TempDir::new();
        let (batch_tx, batch_rx) = unbounded();
        let pool = spawn_analyzer_pool_with_lifecycle(
            DetectorConfig::default(),
            SupervisorConfig::default(),
            quick_lifecycle(),
            3,
            dir.path(),
            batch_rx,
            None,
        )
        .unwrap();
        let stream = healthy_stream(4, 240);
        feed(&batch_tx, &stream[..720]);
        wait_processed(&pool, 720);
        // Mid-stream explicit retrain → hot swap broadcast to all shards.
        let reply = pool.request_retrain();
        batch_tx.send(Vec::new()).unwrap();
        let report = reply.recv().unwrap().expect("retrain refused");
        assert!(report.trained_from >= 200);
        feed(&batch_tx, &stream[720..]);
        drop(batch_tx);
        while pool.events().recv().is_ok() {}
        assert_eq!(pool.processed(), stream.len() as u64);
        let detectors = pool.join().unwrap();
        let total: u64 = detectors.iter().map(|d| d.tasks_seen()).sum();
        assert_eq!(total, stream.len() as u64, "swap lost or duplicated tasks");
    }
}
