//! Real-time streaming pipeline: tracker → channel → analyzer thread.
//!
//! In the paper, synopses are streamed from every node to a centralized
//! statistical analyzer that handles "streams of task synopses as fast as
//! they are generated, up to ... 1500 task synopses per second" on one
//! core. This module provides that wiring for the live (threaded) runtime:
//! a [`ChannelSink`] for trackers and an analyzer thread that classifies,
//! windows, and emits [`AnomalyEvent`]s in real time.

use crate::detector::{AnomalyDetector, AnomalyEvent, DetectorConfig};
use crate::feature::FeatureVector;
use crate::model::OutlierModel;
use crate::synopsis::TaskSynopsis;
use crate::tracker::SynopsisSink;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A [`SynopsisSink`] that streams synopses over a channel to the analyzer.
#[derive(Debug, Clone)]
pub struct ChannelSink {
    tx: Sender<TaskSynopsis>,
}

impl ChannelSink {
    /// Create a sink/receiver pair.
    pub fn new() -> (ChannelSink, Receiver<TaskSynopsis>) {
        let (tx, rx) = unbounded();
        (ChannelSink { tx }, rx)
    }
}

impl SynopsisSink for ChannelSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        // If the analyzer is gone the stream is simply dropped; monitoring
        // must never take the server down.
        let _ = self.tx.send(synopsis);
    }
}

/// A sink that feeds synopses straight into a [`crate::model::ModelBuilder`] —
/// train from a simulated run without buffering millions of synopses.
#[derive(Debug, Default)]
pub struct ModelSink {
    builder: parking_lot::Mutex<crate::model::ModelBuilder>,
}

impl ModelSink {
    /// Create a sink over an empty builder.
    pub fn new() -> ModelSink {
        ModelSink::default()
    }

    /// Number of synopses observed.
    pub fn observed(&self) -> u64 {
        self.builder.lock().observed()
    }

    /// Build the model from everything observed so far.
    pub fn build(&self, config: crate::model::ModelConfig) -> OutlierModel {
        self.builder.lock().build(config)
    }
}

impl SynopsisSink for ModelSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        self.builder.lock().observe(&synopsis);
    }
}

/// A sink that classifies and windows synopses inline — the single-threaded
/// analogue of the analyzer thread, used by the deterministic simulators.
#[derive(Debug)]
pub struct DetectorSink {
    detector: parking_lot::Mutex<AnomalyDetector>,
    events: parking_lot::Mutex<Vec<AnomalyEvent>>,
}

impl DetectorSink {
    /// Create a sink over a fresh detector.
    pub fn new(model: Arc<OutlierModel>, config: DetectorConfig) -> DetectorSink {
        DetectorSink {
            detector: parking_lot::Mutex::new(AnomalyDetector::new(model, config)),
            events: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Flush remaining windows and return every event detected.
    pub fn finish(self) -> Vec<AnomalyEvent> {
        let mut events = self.events.into_inner();
        events.extend(self.detector.into_inner().flush());
        events
    }

    /// Events detected so far (without flushing open windows).
    pub fn events_so_far(&self) -> Vec<AnomalyEvent> {
        self.events.lock().clone()
    }

    /// Synopses observed so far.
    pub fn tasks_seen(&self) -> u64 {
        self.detector.lock().tasks_seen()
    }
}

impl SynopsisSink for DetectorSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        let feature = FeatureVector::from(&synopsis);
        let new_events = self.detector.lock().observe(&feature);
        if !new_events.is_empty() {
            self.events.lock().extend(new_events);
        }
    }
}

/// Handle to a running analyzer thread.
#[derive(Debug)]
pub struct AnalyzerHandle {
    events: Receiver<AnomalyEvent>,
    processed: Arc<AtomicU64>,
    join: Option<JoinHandle<AnomalyDetector>>,
}

impl AnalyzerHandle {
    /// Receiver of detected anomaly events.
    pub fn events(&self) -> &Receiver<AnomalyEvent> {
        &self.events
    }

    /// Synopses processed so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Drain any events currently queued without blocking.
    pub fn drain_events(&self) -> Vec<AnomalyEvent> {
        let mut out = Vec::new();
        loop {
            match self.events.try_recv() {
                Ok(e) => out.push(e),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        out
    }

    /// Wait for the analyzer to finish (all sinks dropped), returning the
    /// detector for inspection. Remaining windows are flushed first.
    ///
    /// # Panics
    ///
    /// Panics if the analyzer thread panicked.
    pub fn join(mut self) -> AnomalyDetector {
        self.join
            .take()
            .expect("join called once")
            .join()
            .expect("analyzer thread panicked")
    }
}

/// Spawn the analyzer thread over a synopsis stream.
///
/// The thread runs until every [`ChannelSink`] clone feeding `rx` is
/// dropped, then flushes remaining windows and exits.
///
/// # Example
///
/// ```
/// use saad_core::pipeline::{spawn_analyzer, ChannelSink};
/// use saad_core::prelude::*;
/// use std::sync::Arc;
///
/// let model = Arc::new(ModelBuilder::new().build(ModelConfig::default()));
/// let (sink, rx) = ChannelSink::new();
/// let handle = spawn_analyzer(model, DetectorConfig::default(), rx);
/// drop(sink); // close the stream
/// let detector = handle.join();
/// assert_eq!(detector.tasks_seen(), 0);
/// ```
pub fn spawn_analyzer(
    model: Arc<OutlierModel>,
    config: DetectorConfig,
    rx: Receiver<TaskSynopsis>,
) -> AnalyzerHandle {
    let (event_tx, event_rx) = unbounded();
    let processed = Arc::new(AtomicU64::new(0));
    let processed_inner = processed.clone();
    let join = std::thread::Builder::new()
        .name("saad-analyzer".into())
        .spawn(move || {
            let mut detector = AnomalyDetector::new(model, config);
            for synopsis in rx.iter() {
                processed_inner.fetch_add(1, Ordering::Relaxed);
                let feature = FeatureVector::from(&synopsis);
                for event in detector.observe(&feature) {
                    let _ = event_tx.send(event);
                }
            }
            for event in detector.flush() {
                let _ = event_tx.send(event);
            }
            detector
        })
        .expect("spawn analyzer thread");
    AnalyzerHandle {
        events: event_rx,
        processed,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::AnomalyKind;
    use crate::model::{ModelBuilder, ModelConfig};
    use crate::{HostId, StageId, TaskUid};
    use saad_logging::LogPointId;
    use saad_sim::{SimDuration, SimTime};

    fn synopsis(points: &[u16], dur_us: u64, start: SimTime, uid: u64) -> TaskSynopsis {
        TaskSynopsis {
            host: HostId(0),
            stage: StageId(0),
            uid: TaskUid(uid),
            start,
            duration: SimDuration::from_micros(dur_us),
            log_points: points.iter().map(|&p| (LogPointId(p), 1)).collect(),
        }
    }

    fn model() -> Arc<OutlierModel> {
        let mut b = ModelBuilder::new();
        for i in 0..5000u64 {
            b.observe(&synopsis(&[1, 2], 1_000 + (i % 53) * 5, SimTime::ZERO, i));
        }
        Arc::new(b.build(ModelConfig::default()))
    }

    #[test]
    fn pipeline_detects_anomalies_end_to_end() {
        let (sink, rx) = ChannelSink::new();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        // A minute of traffic with a burst of a brand-new signature.
        for i in 0..100u64 {
            let s = if i % 4 == 0 {
                synopsis(&[1, 9], 1_000, SimTime::from_millis(i * 100), i)
            } else {
                synopsis(&[1, 2], 1_000, SimTime::from_millis(i * 100), i)
            };
            sink.submit(s);
        }
        drop(sink);
        let detector = handle.join();
        assert_eq!(detector.tasks_seen(), 100);
    }

    #[test]
    fn events_are_delivered_over_channel() {
        let (sink, rx) = ChannelSink::new();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        for i in 0..50u64 {
            sink.submit(synopsis(&[7], 1_000, SimTime::from_millis(i), i));
        }
        drop(sink);
        // Collect all events until the channel closes.
        let mut events = Vec::new();
        while let Ok(e) = handle.events().recv() {
            events.push(e);
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "events: {events:?}"
        );
        assert_eq!(handle.processed(), 50);
        handle.join();
    }

    #[test]
    fn multiple_sinks_can_feed_one_analyzer() {
        let (sink, rx) = ChannelSink::new();
        let sink2 = sink.clone();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        let t1 = std::thread::spawn(move || {
            for i in 0..500u64 {
                sink.submit(synopsis(&[1, 2], 1_000, SimTime::from_millis(i), i));
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 0..500u64 {
                sink2.submit(synopsis(&[1, 2], 1_000, SimTime::from_millis(i), 1000 + i));
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let detector = handle.join();
        assert_eq!(detector.tasks_seen(), 1000);
    }

    #[test]
    fn model_sink_trains_inline() {
        let sink = ModelSink::new();
        for i in 0..200u64 {
            sink.submit(synopsis(&[1, 2], 1_000, SimTime::ZERO, i));
        }
        assert_eq!(sink.observed(), 200);
        let model = sink.build(ModelConfig::default());
        assert_eq!(model.stage_count(), 1);
    }

    #[test]
    fn detector_sink_detects_inline() {
        let sink = DetectorSink::new(model(), DetectorConfig::default());
        for i in 0..60u64 {
            sink.submit(synopsis(&[3], 1_000, SimTime::from_millis(i * 10), i));
        }
        assert_eq!(sink.tasks_seen(), 60);
        assert!(sink.events_so_far().is_empty(), "window still open");
        let events = sink.finish();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, AnomalyKind::FlowNew(_))),
            "events: {events:?}"
        );
    }

    #[test]
    fn drain_events_is_nonblocking() {
        let (sink, rx) = ChannelSink::new();
        let handle = spawn_analyzer(model(), DetectorConfig::default(), rx);
        assert!(handle.drain_events().is_empty());
        drop(sink);
        handle.join();
    }
}
