//! Task synopses — the tiny per-task records SAAD streams instead of logs.
//!
//! Mirrors the paper's synopsis struct:
//!
//! ```c
//! struct synopsis {
//!   byte sid;        // stage id
//!   int  uid;        // unique id per task
//!   int  ts;         // task start time (ms)
//!   int  duration;   // task duration (us)
//!   struct { short int lpid; int count; } log_points[];
//! }
//! ```

use crate::{HostId, Signature, StageId, TaskUid};
use saad_logging::LogPointId;
use saad_sim::{SimDuration, SimTime};

/// Summary of one task execution, produced by the tracker at task
/// termination and streamed to the statistical analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSynopsis {
    /// Host the task ran on (added when synopses are tagged for the
    /// centralized analyzer).
    pub host: HostId,
    /// Stage the task is an instance of.
    pub stage: StageId,
    /// Unique id of this task execution.
    pub uid: TaskUid,
    /// Task start time.
    pub start: SimTime,
    /// Task duration — time from start to the *last log point* the task
    /// encountered (paper §3.3.1).
    pub duration: SimDuration,
    /// Visited log points with visit frequencies, ascending by point id.
    pub log_points: Vec<(LogPointId, u32)>,
}

impl TaskSynopsis {
    /// The task's flow signature: its distinct visited points.
    pub fn signature(&self) -> Signature {
        Signature::from_points(self.log_points.iter().map(|&(p, _)| p))
    }

    /// Whether the task visited a given log point — the allocation-free
    /// form of `self.signature().contains(point)`, for callers that only
    /// probe membership and don't need the whole signature built.
    pub fn has_point(&self, point: LogPointId) -> bool {
        // Tracker-emitted synopses keep `log_points` sorted, but
        // hand-built ones need not; a linear scan over a handful of
        // points is cheap either way.
        self.log_points.iter().any(|&(p, _)| p == point)
    }

    /// Total log point visits (sum of frequencies).
    pub fn total_visits(&self) -> u64 {
        self.log_points.iter().map(|&(_, c)| c as u64).sum()
    }

    /// Approximate in-memory/wire size in bytes (for the Figure 8 volume
    /// accounting; the paper reports ~48 bytes per synopsis on average).
    pub fn approx_bytes(&self) -> usize {
        // sid + uid + ts + duration + host ≈ 17 bytes fixed, 6 per point.
        17 + 6 * self.log_points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synopsis(points: &[(u16, u32)]) -> TaskSynopsis {
        TaskSynopsis {
            host: HostId(1),
            stage: StageId(2),
            uid: TaskUid(3),
            start: SimTime::from_millis(5),
            duration: SimDuration::from_micros(1500),
            log_points: points.iter().map(|&(p, c)| (LogPointId(p), c)).collect(),
        }
    }

    #[test]
    fn signature_drops_frequencies() {
        let s = synopsis(&[(1, 5), (4, 1)]);
        assert_eq!(
            s.signature(),
            Signature::from_points([LogPointId(1), LogPointId(4)])
        );
    }

    #[test]
    fn has_point_probes_without_allocating() {
        let s = synopsis(&[(1, 5), (4, 1)]);
        assert!(s.has_point(LogPointId(1)));
        assert!(s.has_point(LogPointId(4)));
        assert!(!s.has_point(LogPointId(2)));
        assert!(!synopsis(&[]).has_point(LogPointId(1)));
    }

    #[test]
    fn total_visits_sums_counts() {
        assert_eq!(synopsis(&[(1, 5), (4, 2)]).total_visits(), 7);
        assert_eq!(synopsis(&[]).total_visits(), 0);
    }

    #[test]
    fn approx_bytes_is_tens_of_bytes() {
        // The paper's claim: a synopsis is "a tiny data structure of few
        // tens of bytes" (~48 bytes average).
        let s = synopsis(&[(1, 2), (2, 1), (3, 1), (4, 9), (5, 1)]);
        assert!(s.approx_bytes() < 64, "{}", s.approx_bytes());
    }
}
