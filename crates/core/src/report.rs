//! Human-readable anomaly reporting (paper §3.3.3, "Anomaly Reporting").
//!
//! "Each anomalous signature is presented to the user by its stage name,
//! and the list of log templates of its log points." This module renders
//! that presentation, including the Table-1-style side-by-side comparison
//! of a normal and an anomalous signature.

use crate::detector::{AnomalyEvent, AnomalyKind};
use crate::{Signature, StageId, StageRegistry};
use saad_logging::LogPointRegistry;
use std::fmt::Write as _;

/// Renderer that resolves stage ids and log point ids to names/templates.
#[derive(Debug)]
pub struct AnomalyReport<'a> {
    stages: &'a StageRegistry,
    points: &'a LogPointRegistry,
}

impl<'a> AnomalyReport<'a> {
    /// Create a renderer over the given registries.
    pub fn new(stages: &'a StageRegistry, points: &'a LogPointRegistry) -> AnomalyReport<'a> {
        AnomalyReport { stages, points }
    }

    /// The paper's `Stage (host id)` label, e.g. `DataXceiver(3)`. Liveness
    /// events carry no stage ([`StageId::NONE`]) and are labeled by host.
    pub fn stage_label(&self, event: &AnomalyEvent) -> String {
        if event.stage == StageId::NONE {
            return event.host.to_string();
        }
        let name = self
            .stages
            .name(event.stage)
            .unwrap_or_else(|| event.stage.to_string());
        format!("{}({})", name, event.host.0)
    }

    /// Render one anomaly event with its signature's log templates.
    pub fn render(&self, event: &AnomalyEvent) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "[{:>8.2} min] {} {}",
            event.window_start.as_mins_f64(),
            self.stage_label(event),
            event.kind
        );
        if let Some(p) = event.p_value {
            let _ = write!(out, " (p = {p:.2e})");
        }
        if event.kind.is_liveness() {
            let _ = writeln!(out);
        } else {
            let _ = write!(out, " — {} of {} tasks", event.outliers, event.window_tasks);
            if event.completeness < 1.0 {
                let _ = write!(out, " ({:.0}% data)", event.completeness * 100.0);
            }
            let _ = writeln!(out);
        }
        let sig = match &event.kind {
            AnomalyKind::FlowNew(sig) | AnomalyKind::Performance(sig) => Some(sig),
            AnomalyKind::FlowRare
            | AnomalyKind::HostSilent { .. }
            | AnomalyKind::ModelUnavailable => None,
        };
        if let Some(sig) = sig {
            out.push_str(&self.render_signature(sig, "    "));
        }
        out
    }

    /// Render the templates of a signature's log points, one per line.
    pub fn render_signature(&self, sig: &Signature, indent: &str) -> String {
        let mut out = String::new();
        for &p in sig.points() {
            match self.points.template(p) {
                Some(t) => {
                    let _ = writeln!(out, "{indent}{p}: \"{}\" ({}:{})", t.text, t.file, t.line);
                }
                None => {
                    let _ = writeln!(out, "{indent}{p}: <unregistered log point>");
                }
            }
        }
        out
    }

    /// Table-1-style comparison: every log template of the normal flow,
    /// with check marks for which flows hit it.
    ///
    /// # Example output
    ///
    /// ```text
    /// Description of log statements                         | Normal | Anomalous
    /// MemTable is already frozen; another thread must be... |   x    |    x
    /// Start applying update to MemTable                     |   x    |
    /// ```
    pub fn render_signature_comparison(&self, normal: &Signature, anomalous: &Signature) -> String {
        let mut all: Vec<_> = normal.points().to_vec();
        for &p in anomalous.points() {
            if !normal.contains(p) {
                all.push(p);
            }
        }
        let rows: Vec<(String, bool, bool)> = all
            .iter()
            .map(|&p| {
                let text = self
                    .points
                    .template(p)
                    .map(|t| t.text.clone())
                    .unwrap_or_else(|| p.to_string());
                (text, normal.contains(p), anomalous.contains(p))
            })
            .collect();
        let width = rows
            .iter()
            .map(|(t, _, _)| t.len())
            .chain(["Description of log statements".len()])
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<width$} | Normal | Anomalous",
            "Description of log statements"
        );
        for (text, n, a) in rows {
            let _ = writeln!(
                out,
                "{text:<width$} |   {}    |     {}",
                if n { "x" } else { " " },
                if a { "x" } else { " " }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostId, StageId};
    use saad_logging::{Level, LogPointId};
    use saad_sim::SimTime;

    fn registries() -> (StageRegistry, LogPointRegistry) {
        let stages = StageRegistry::new();
        stages.register("Table");
        let points = LogPointRegistry::new();
        points.register(
            "MemTable is already frozen; another thread must be flushing it",
            Level::Debug,
            "Table.rs",
            10,
        );
        points.register(
            "Start applying update to MemTable",
            Level::Debug,
            "Table.rs",
            20,
        );
        points.register("Applying mutation of row", Level::Debug, "Table.rs", 30);
        points.register(
            "Applied mutation. Sending response",
            Level::Debug,
            "Table.rs",
            40,
        );
        (stages, points)
    }

    fn event(kind: AnomalyKind) -> AnomalyEvent {
        AnomalyEvent {
            host: HostId(4),
            stage: StageId(0),
            window_start: SimTime::from_mins(18),
            kind,
            p_value: Some(1.5e-7),
            outliers: 37,
            window_tasks: 412,
            completeness: 1.0,
        }
    }

    #[test]
    fn stage_label_matches_paper_format() {
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        assert_eq!(r.stage_label(&event(AnomalyKind::FlowRare)), "Table(4)");
    }

    #[test]
    fn render_includes_kind_pvalue_and_counts() {
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        let s = r.render(&event(AnomalyKind::FlowRare));
        assert!(s.contains("Table(4)"));
        assert!(s.contains("rare pattern"));
        assert!(s.contains("1.50e-7"));
        assert!(s.contains("37 of 412"));
    }

    #[test]
    fn render_shows_completeness_when_degraded() {
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        let mut e = event(AnomalyKind::FlowRare);
        e.completeness = 0.72;
        let s = r.render(&e);
        assert!(s.contains("72% data"), "{s}");
        // Intact windows stay quiet about completeness.
        let s = r.render(&event(AnomalyKind::FlowRare));
        assert!(!s.contains("% data"), "{s}");
    }

    #[test]
    fn render_host_silent_is_labeled_by_host() {
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        let mut e = event(AnomalyKind::HostSilent { windows: 2 });
        e.stage = StageId::NONE;
        e.p_value = None;
        e.completeness = 0.0;
        let s = r.render(&e);
        assert!(s.contains("host4"), "{s}");
        assert!(s.contains("host silent"), "{s}");
        assert!(!s.contains("of 412 tasks"), "{s}");
    }

    #[test]
    fn render_new_signature_lists_templates() {
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        let sig = Signature::from_points([LogPointId(0)]);
        let s = r.render(&event(AnomalyKind::FlowNew(sig)));
        assert!(s.contains("already frozen"), "{s}");
        assert!(s.contains("Table.rs:10"));
    }

    #[test]
    fn unregistered_points_render_placeholder() {
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        let sig = Signature::from_points([LogPointId(999)]);
        let s = r.render_signature(&sig, "");
        assert!(s.contains("unregistered"));
    }

    #[test]
    fn table1_comparison_shows_premature_termination() {
        // Reproduces the structure of the paper's Table 1 exactly.
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        let normal = Signature::from_points([0, 1, 2, 3].map(LogPointId));
        let frozen = Signature::from_points([LogPointId(0)]);
        let table = r.render_signature_comparison(&normal, &frozen);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 templates
        assert!(lines[0].contains("Normal") && lines[0].contains("Anomalous"));
        // First template hit by both flows.
        assert!(lines[1].contains("frozen"));
        assert_eq!(lines[1].matches('x').count(), 2);
        // Remaining templates only in the normal flow.
        for line in &lines[2..] {
            assert_eq!(line.matches('x').count(), 1, "{line}");
        }
    }

    #[test]
    fn comparison_includes_points_unique_to_anomalous() {
        let (stages, points) = registries();
        let r = AnomalyReport::new(&stages, &points);
        let normal = Signature::from_points([LogPointId(0)]);
        let anomalous = Signature::from_points([LogPointId(0), LogPointId(3)]);
        let table = r.render_signature_comparison(&normal, &anomalous);
        assert!(table.contains("Sending response"));
    }
}
