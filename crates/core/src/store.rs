//! Durable checkpoints for the analyzer's trained state.
//!
//! The analyzer is only useful if its trained model survives the
//! failures it is supposed to detect. This module persists everything a
//! restarted analyzer pool needs to resume detection —
//! [`OutlierModel`], [`SignatureInterner`], and one
//! [`DetectorSnapshot`] per shard — in a versioned, CRC-32-framed file
//! written atomically (temp file + fsync + rename + directory fsync).
//!
//! ## File format
//!
//! Fixed big-endian header in the style of [`crate::transport`] frames,
//! varint/delta payload in the style of [`crate::codec`]:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SAADCKPT"
//! 8       2     format version (u16, currently 1)
//! 10      8     generation (u64, monotonically increasing)
//! 18      4     payload length (u32)
//! 22      n     payload
//! 22+n    4     CRC-32 (IEEE) over bytes 8..22+n (version..payload)
//! ```
//!
//! The payload is `model | interner | shard count | shard snapshots`:
//! the model via [`OutlierModel::encode_into`], the interner as its
//! per-shard signature lists (so restore reproduces **exactly** the same
//! [`crate::intern::SigId`] assignment, keeping the ids inside detector
//! snapshots valid), and each shard via
//! [`DetectorSnapshot::encode_into`]. The compiled model is *not*
//! stored; it is deterministically recompiled from the restored model
//! and interner on load.
//!
//! ## Recovery
//!
//! [`CheckpointStore::recover`] scans the directory newest-generation
//! first and returns the first checkpoint that decodes cleanly, along
//! with a typed [`CheckpointError`] for every newer file it had to
//! reject (corrupt, truncated, or version-skewed). A crash mid-write
//! can therefore cost at most the newest generation, never the store.

use crate::codec::{get_points, get_varint, put_points, put_varint, DecodeError};
use crate::detector::DetectorSnapshot;
use crate::intern::SignatureInterner;
use crate::model::{CompiledModel, OutlierModel};
use crate::transport::crc32;
use crate::Signature;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"SAADCKPT";

/// Checkpoint format version written by this build and the only one it
/// accepts; older/newer files are rejected with
/// [`CheckpointError::VersionSkew`].
pub const CHECKPOINT_VERSION: u16 = 1;

/// magic + version + generation + payload length.
const HEADER_LEN: usize = 8 + 2 + 8 + 4;

/// Sanity bound on interner shards and detector shards in a checkpoint.
const MAX_CHECKPOINT_SHARDS: u64 = 1 << 16;
/// Sanity bound on interned signatures per interner shard.
const MAX_CHECKPOINT_SIGS: u64 = 1 << 26;

/// Why a checkpoint file was rejected (or could not be written).
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem error (message form of the underlying `io::Error`).
    Io(String),
    /// File shorter than its header + declared payload + trailer.
    Truncated,
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not the one this build supports.
    VersionSkew {
        /// Version found in the file.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// The CRC-32 trailer does not match the file contents.
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the file contents.
        computed: u32,
    },
    /// The payload passed the checksum but failed structural decoding
    /// (format drift or a buggy writer).
    Codec(DecodeError),
    /// The payload decoded but left unconsumed bytes.
    TrailingBytes(usize),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::Truncated => f.write_str("checkpoint file truncated"),
            CheckpointError::BadMagic => f.write_str("not a checkpoint file (bad magic)"),
            CheckpointError::VersionSkew { found, supported } => write!(
                f,
                "checkpoint version {found} not supported (this build reads {supported})"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::Codec(e) => write!(f, "checkpoint payload malformed: {e}"),
            CheckpointError::TrailingBytes(n) => {
                write!(f, "checkpoint payload has {n} trailing bytes")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> CheckpointError {
        CheckpointError::Codec(e)
    }
}

fn io_err(e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(e.to_string())
}

/// One durable generation of analyzer state: the trained model, the
/// signature interner that issued every id the model and snapshots
/// reference, and one detector snapshot per shard.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Monotonically increasing generation number (embedded in the file
    /// name and header; recovery prefers the newest valid one).
    pub generation: u64,
    /// The trained model.
    pub model: Arc<OutlierModel>,
    /// Compiled form of `model` against `interner` (recomputed on load,
    /// never serialized).
    pub compiled: Arc<CompiledModel>,
    /// The interner, restored with identical id assignment.
    pub interner: Arc<SignatureInterner>,
    /// Per-shard detector state, in shard order.
    pub shards: Vec<DetectorSnapshot>,
}

impl Checkpoint {
    /// Assemble a checkpoint from live pool state.
    pub fn new(
        generation: u64,
        model: Arc<OutlierModel>,
        compiled: Arc<CompiledModel>,
        interner: Arc<SignatureInterner>,
        shards: Vec<DetectorSnapshot>,
    ) -> Checkpoint {
        Checkpoint {
            generation,
            model,
            compiled,
            interner,
            shards,
        }
    }

    /// Serialize to the framed file format (header + payload + CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = BytesMut::new();
        self.model.encode_into(&mut payload);
        let contents = self.interner.shard_contents();
        put_varint(&mut payload, contents.len() as u64);
        for shard in &contents {
            put_varint(&mut payload, shard.len() as u64);
            for sig in shard {
                put_points(&mut payload, sig.points());
            }
        }
        put_varint(&mut payload, self.shards.len() as u64);
        for shard in &self.shards {
            shard.encode_into(&mut payload);
        }
        let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len() + 4);
        out.extend_from_slice(MAGIC);
        out.put_u16(CHECKPOINT_VERSION);
        out.put_u64(self.generation);
        out.put_u32(payload.len() as u32);
        out.extend_from_slice(&payload);
        let crc = crc32(&[&out[8..]]);
        out.put_u32(crc);
        out.to_vec()
    }

    /// Decode a checkpoint file, with typed rejection of truncated,
    /// corrupt, and version-skewed inputs.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] / [`CheckpointError::BadMagic`] on
    /// framing damage, [`CheckpointError::ChecksumMismatch`] on payload
    /// corruption (checked before anything else is parsed),
    /// [`CheckpointError::VersionSkew`] for files written by a different
    /// format version, and [`CheckpointError::Codec`] /
    /// [`CheckpointError::TrailingBytes`] for structurally malformed
    /// payloads.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(CheckpointError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u16::from_be_bytes([bytes[8], bytes[9]]);
        let mut gen_raw = [0u8; 8];
        gen_raw.copy_from_slice(&bytes[10..18]);
        let generation = u64::from_be_bytes(gen_raw);
        let payload_len = u32::from_be_bytes([bytes[18], bytes[19], bytes[20], bytes[21]]) as usize;
        if bytes.len() != HEADER_LEN + payload_len + 4 {
            return Err(CheckpointError::Truncated);
        }
        let body_end = HEADER_LEN + payload_len;
        let mut crc_raw = [0u8; 4];
        crc_raw.copy_from_slice(&bytes[body_end..]);
        let stored = u32::from_be_bytes(crc_raw);
        let computed = crc32(&[&bytes[8..body_end]]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionSkew {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let mut payload = Bytes::copy_from_slice(&bytes[HEADER_LEN..body_end]);
        let model = Arc::new(OutlierModel::decode_from(&mut payload)?);
        let shard_count = get_varint(&mut payload)?;
        if shard_count > MAX_CHECKPOINT_SHARDS {
            return Err(DecodeError::LengthOutOfRange(shard_count).into());
        }
        let mut contents = Vec::with_capacity(shard_count as usize);
        for _ in 0..shard_count {
            let sig_count = get_varint(&mut payload)?;
            if sig_count > MAX_CHECKPOINT_SIGS {
                return Err(DecodeError::LengthOutOfRange(sig_count).into());
            }
            let mut sigs = Vec::with_capacity(sig_count as usize);
            for _ in 0..sig_count {
                sigs.push(Signature::from_points(get_points(&mut payload)?));
            }
            contents.push(sigs);
        }
        let interner = Arc::new(SignatureInterner::from_shard_contents(contents));
        let compiled = Arc::new(model.compile(&interner));
        let detector_shards = get_varint(&mut payload)?;
        if detector_shards > MAX_CHECKPOINT_SHARDS {
            return Err(DecodeError::LengthOutOfRange(detector_shards).into());
        }
        let mut shards = Vec::with_capacity(detector_shards as usize);
        for _ in 0..detector_shards {
            shards.push(DetectorSnapshot::decode_from(
                &mut payload,
                model.clone(),
                compiled.clone(),
                interner.clone(),
            )?);
        }
        if !payload.is_empty() {
            return Err(CheckpointError::TrailingBytes(payload.remaining()));
        }
        Ok(Checkpoint {
            generation,
            model,
            compiled,
            interner,
            shards,
        })
    }
}

/// What [`CheckpointStore::recover`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The newest checkpoint that decoded cleanly, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Newer files that were rejected, newest first, with why.
    pub rejected: Vec<(PathBuf, CheckpointError)>,
}

/// A directory of checkpoint generations with atomic writes and
/// newest-valid recovery.
///
/// Files are named `ckpt-<generation, 16 hex digits>.ckpt`, so
/// lexicographic order is generation order. Writes go through a `.tmp`
/// file that is fsynced and renamed into place, then the directory is
/// fsynced — a crash at any point leaves either the old set of files or
/// the old set plus one complete new file, never a torn checkpoint
/// under the final name.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory, retaining the
    /// newest `keep` generations on save (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be created.
    pub fn create(
        dir: impl Into<PathBuf>,
        keep: usize,
    ) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
        })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:016x}.ckpt"))
    }

    /// Completed checkpoint generations on disk, ascending, with paths.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be read.
    pub fn generations(&self) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            else {
                continue;
            };
            let Ok(generation) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            out.push((generation, entry.path()));
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Newest generation number present on disk (valid or not).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be read.
    pub fn latest_generation(&self) -> Result<Option<u64>, CheckpointError> {
        Ok(self.generations()?.last().map(|&(g, _)| g))
    }

    /// Atomically persist a checkpoint and prune old generations.
    /// Returns the final path.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure; the final file
    /// name is never left containing a partial write.
    pub fn save(&self, checkpoint: &Checkpoint) -> Result<PathBuf, CheckpointError> {
        let bytes = checkpoint.encode();
        let tmp = self
            .dir
            .join(format!("ckpt-{:016x}.tmp", checkpoint.generation));
        {
            let mut f = fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(&bytes).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        let path = self.path_for(checkpoint.generation);
        fs::rename(&tmp, &path).map_err(io_err)?;
        // Make the rename itself durable. Directory fsync can fail on
        // filesystems that don't support opening directories; the data
        // file is already synced, so treat that as best-effort.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.prune()?;
        Ok(path)
    }

    /// Delete all but the newest `keep` generations.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if listing or deletion fails.
    pub fn prune(&self) -> Result<(), CheckpointError> {
        let generations = self.generations()?;
        if generations.len() > self.keep {
            for (_, path) in &generations[..generations.len() - self.keep] {
                fs::remove_file(path).map_err(io_err)?;
            }
        }
        Ok(())
    }

    /// Load and decode one specific generation.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read, otherwise any
    /// [`Checkpoint::decode`] rejection.
    pub fn load(&self, generation: u64) -> Result<Checkpoint, CheckpointError> {
        let bytes = fs::read(self.path_for(generation)).map_err(io_err)?;
        Checkpoint::decode(&bytes)
    }

    /// Recover the newest checkpoint that decodes cleanly, recording a
    /// typed rejection for every newer file that didn't. An empty or
    /// absent set of files yields `checkpoint: None` (bootstrap mode).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] only if the directory itself cannot be
    /// listed — unreadable individual files are rejections, not errors.
    pub fn recover(&self) -> Result<Recovery, CheckpointError> {
        let mut rejected = Vec::new();
        for (_, path) in self.generations()?.into_iter().rev() {
            let result = fs::read(&path)
                .map_err(io_err)
                .and_then(|bytes| Checkpoint::decode(&bytes));
            match result {
                Ok(checkpoint) => {
                    return Ok(Recovery {
                        checkpoint: Some(checkpoint),
                        rejected,
                    })
                }
                Err(e) => rejected.push((path, e)),
            }
        }
        Ok(Recovery {
            checkpoint: None,
            rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{AnomalyDetector, DetectorConfig};
    use crate::feature::FeatureVector;
    use crate::model::{ModelBuilder, ModelConfig};
    use crate::synopsis::TaskSynopsis;
    use crate::{HostId, StageId, TaskUid};
    use saad_logging::LogPointId;
    use saad_sim::{SimDuration, SimTime};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Fresh scratch directory per test, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("saad-store-test-{}-{n}", std::process::id()));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn synopsis(stage: u16, points: &[u16], dur_us: u64, start: SimTime, uid: u64) -> TaskSynopsis {
        TaskSynopsis {
            host: HostId(0),
            stage: StageId(stage),
            uid: TaskUid(uid),
            start,
            duration: SimDuration::from_micros(dur_us),
            log_points: points.iter().map(|&p| (LogPointId(p), 1)).collect(),
        }
    }

    /// A checkpoint with real trained state and open detector windows.
    fn sample_checkpoint(generation: u64) -> Checkpoint {
        let mut b = ModelBuilder::new();
        for i in 0..2_000u64 {
            let s = if i.is_multiple_of(500) {
                synopsis(0, &[1, 2, 3], 10_000, SimTime::ZERO, i)
            } else {
                synopsis(0, &[1, 2], 9_000 + (i % 37) * 25, SimTime::ZERO, i)
            };
            b.observe(&s);
        }
        let model = Arc::new(b.build(ModelConfig::default()));
        let mut d = AnomalyDetector::new(model.clone(), DetectorConfig::default());
        d.record_loss(HostId(0), SimTime::from_secs(20), 7);
        for i in 0..80u64 {
            let mut s = if i % 9 == 0 {
                synopsis(0, &[1, 2, 3], 10_000, SimTime::ZERO, i)
            } else {
                synopsis(0, &[1, 2], 9_500, SimTime::ZERO, i)
            };
            s.start = SimTime::from_millis(i * 30);
            d.observe(&FeatureVector::from(&s));
        }
        let interner = d.interner().clone();
        let compiled = d.compiled().clone();
        Checkpoint::new(generation, model, compiled, interner, vec![d.snapshot()])
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = sample_checkpoint(42);
        let bytes = ckpt.encode();
        let decoded = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(decoded.generation, 42);
        assert_eq!(decoded.shards.len(), 1);
        assert_eq!(decoded.interner.len(), ckpt.interner.len());
        assert_eq!(decoded.interner.capacity(), ckpt.interner.capacity());
        // Byte-identical re-encode ⇒ identical restored state.
        assert_eq!(decoded.encode(), bytes);
        assert_eq!(decoded.shards[0].tasks_seen(), ckpt.shards[0].tasks_seen());
        assert_eq!(decoded.shards[0].tasks_lost(), ckpt.shards[0].tasks_lost());
    }

    #[test]
    fn corrupt_byte_is_checksum_mismatch() {
        let bytes = sample_checkpoint(1).encode();
        // Flip one byte everywhere past the magic: every position must be
        // caught by the CRC (header fields may also trip Truncated when
        // the declared length changes — either way, typed rejection).
        for pos in [8, 12, HEADER_LEN, HEADER_LEN + 10, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = Checkpoint::decode(&bad).expect_err("corruption accepted");
            assert!(
                matches!(
                    err,
                    CheckpointError::ChecksumMismatch { .. } | CheckpointError::Truncated
                ),
                "pos {pos}: {err:?}"
            );
        }
        // Corrupting the stored CRC itself is also a mismatch.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            Checkpoint::decode(&bad),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample_checkpoint(1).encode();
        for len in [0, 4, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            assert_eq!(
                Checkpoint::decode(&bytes[..len]).unwrap_err(),
                CheckpointError::Truncated,
                "len {len}"
            );
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_checkpoint(1).encode();
        bytes[0] = b'X';
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            CheckpointError::BadMagic
        );
    }

    #[test]
    fn version_skew_is_typed_and_checked_after_crc() {
        let mut bytes = sample_checkpoint(1).encode();
        // Bump the version and re-seal the CRC so only the skew remains.
        bytes[9] = 2;
        let body_end = bytes.len() - 4;
        let crc = crc32(&[&bytes[8..body_end]]);
        bytes[body_end..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes).unwrap_err(),
            CheckpointError::VersionSkew {
                found: 2,
                supported: CHECKPOINT_VERSION
            }
        );
    }

    #[test]
    fn save_load_and_latest_generation() {
        let tmp = TempDir::new();
        let store = CheckpointStore::create(tmp.path(), 4).unwrap();
        assert_eq!(store.latest_generation().unwrap(), None);
        let path = store.save(&sample_checkpoint(7)).unwrap();
        assert!(path.ends_with("ckpt-0000000000000007.ckpt"));
        assert!(path.exists());
        assert_eq!(store.latest_generation().unwrap(), Some(7));
        let loaded = store.load(7).unwrap();
        assert_eq!(loaded.generation, 7);
        // No temp files left behind.
        let stray: Vec<_> = fs::read_dir(tmp.path())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(stray.is_empty());
    }

    #[test]
    fn recover_prefers_newest_valid_and_reports_rejects() {
        let tmp = TempDir::new();
        let store = CheckpointStore::create(tmp.path(), 8).unwrap();
        store.save(&sample_checkpoint(1)).unwrap();
        store.save(&sample_checkpoint(2)).unwrap();
        store.save(&sample_checkpoint(3)).unwrap();
        // Corrupt generation 3 (bit flip) and truncate generation 2.
        let p3 = tmp.path().join("ckpt-0000000000000003.ckpt");
        let mut b3 = fs::read(&p3).unwrap();
        let mid = b3.len() / 2;
        b3[mid] ^= 0x01;
        fs::write(&p3, &b3).unwrap();
        let p2 = tmp.path().join("ckpt-0000000000000002.ckpt");
        let b2 = fs::read(&p2).unwrap();
        fs::write(&p2, &b2[..b2.len() / 3]).unwrap();
        let recovery = store.recover().unwrap();
        let ckpt = recovery.checkpoint.expect("generation 1 is intact");
        assert_eq!(ckpt.generation, 1);
        assert_eq!(recovery.rejected.len(), 2);
        assert_eq!(recovery.rejected[0].0, p3);
        assert!(matches!(
            recovery.rejected[0].1,
            CheckpointError::ChecksumMismatch { .. }
        ));
        assert_eq!(recovery.rejected[1].0, p2);
        assert_eq!(recovery.rejected[1].1, CheckpointError::Truncated);
    }

    #[test]
    fn recover_empty_store_is_bootstrap() {
        let tmp = TempDir::new();
        let store = CheckpointStore::create(tmp.path(), 2).unwrap();
        let recovery = store.recover().unwrap();
        assert!(recovery.checkpoint.is_none());
        assert!(recovery.rejected.is_empty());
    }

    #[test]
    fn prune_keeps_newest_generations() {
        let tmp = TempDir::new();
        let store = CheckpointStore::create(tmp.path(), 2).unwrap();
        for generation in 1..=5 {
            store.save(&sample_checkpoint(generation)).unwrap();
        }
        let generations: Vec<u64> = store
            .generations()
            .unwrap()
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        assert_eq!(generations, vec![4, 5]);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::VersionSkew {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains('9'));
        assert!(CheckpointError::ChecksumMismatch {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("mismatch"));
        let e: CheckpointError = DecodeError::UnexpectedEof.into();
        assert!(e.to_string().contains("malformed"));
    }
}
