//! The learned outlier model (paper §3.3.2).
//!
//! Training is deliberately cheap — counting and percentiles:
//!
//! 1. **Flow outliers.** Per stage, tasks are grouped by signature and
//!    counted. Signatures whose share of the stage's tasks falls below the
//!    rank threshold (99th percentile ⇒ signatures accounting for < 1% of
//!    tasks) are flow outliers.
//! 2. **Performance outliers.** Per (stage, signature) group, the
//!    99th-percentile duration becomes the outlier threshold.
//! 3. **k-fold validation.** Signatures whose duration distribution does
//!    not support a stable threshold (held-out outlier rate far above
//!    nominal) are discarded from performance detection.

use crate::codec::{get_f64, get_u8, get_varint, put_f64, put_varint, DecodeError};
use crate::feature::{FeatureVector, InternedFeature};
use crate::intern::{SigId, SignatureInterner};
use crate::synopsis::TaskSynopsis;
use crate::{Signature, StageId};
use bytes::{BufMut, Bytes, BytesMut};
use saad_stats::kfold::validate_percentile_threshold;
use saad_stats::percentile_nan_below;
use std::collections::HashMap;
use std::fmt;

/// A configuration parameter outside its valid domain, reported by
/// [`ModelConfig::validate`] and
/// [`crate::detector::DetectorConfig::validate`] instead of a
/// debug-assert, so invalid configurations are rejected identically in
/// release builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A percentile parameter was outside `[0, 100]`.
    PercentileOutOfRange {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The significance level was outside the open interval `(0, 1)`.
    AlphaOutOfRange(f64),
    /// The detection window was zero.
    ZeroWindow,
    /// The number of cross-validation folds was zero.
    ZeroKfold,
    /// The k-fold tolerance factor was not a positive finite number.
    NonPositiveTolerance(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::PercentileOutOfRange { name, value } => {
                write!(f, "{name} must be in [0, 100], got {value}")
            }
            ConfigError::AlphaOutOfRange(a) => {
                write!(f, "alpha must be in the open interval (0, 1), got {a}")
            }
            ConfigError::ZeroWindow => f.write_str("detection window must be positive"),
            ConfigError::ZeroKfold => f.write_str("kfold must be at least 1"),
            ConfigError::NonPositiveTolerance(t) => {
                write!(f, "kfold_tolerance must be positive and finite, got {t}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

fn check_percentile(name: &'static str, value: f64) -> Result<(), ConfigError> {
    if (0.0..=100.0).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::PercentileOutOfRange { name, value })
    }
}

/// Training configuration. The defaults are the paper's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Percentile-rank threshold for flow outliers (default 99.0: a
    /// signature covering < 1% of a stage's tasks is a flow outlier).
    pub flow_rank_percentile: f64,
    /// Duration percentile used as the performance-outlier threshold
    /// (default 99.0).
    pub duration_percentile: f64,
    /// Number of cross-validation folds (default 10).
    pub kfold: usize,
    /// Held-out-rate multiple above nominal at which a signature is
    /// discarded from performance detection (default 3.0).
    pub kfold_tolerance: f64,
    /// Minimum training tasks for a signature to participate in
    /// performance detection at all (default 50).
    pub min_signature_samples: usize,
}

impl Default for ModelConfig {
    fn default() -> ModelConfig {
        ModelConfig {
            flow_rank_percentile: 99.0,
            duration_percentile: 99.0,
            kfold: 10,
            kfold_tolerance: 3.0,
            min_signature_samples: 50,
        }
    }
}

impl ModelConfig {
    /// Check every parameter against its valid domain.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: percentiles must lie in
    /// `[0, 100]`, `kfold` must be at least 1, and `kfold_tolerance` must
    /// be positive and finite.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_percentile("flow_rank_percentile", self.flow_rank_percentile)?;
        check_percentile("duration_percentile", self.duration_percentile)?;
        if self.kfold == 0 {
            return Err(ConfigError::ZeroKfold);
        }
        if !(self.kfold_tolerance > 0.0 && self.kfold_tolerance.is_finite()) {
            return Err(ConfigError::NonPositiveTolerance(self.kfold_tolerance));
        }
        Ok(())
    }
}

/// Classification of a runtime task against the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// Known common signature, duration within threshold.
    Normal,
    /// Known but rare signature (flow outlier).
    FlowOutlier,
    /// Signature never seen in training — the strongest flow signal.
    NewSignature,
    /// Common signature but duration above the learned threshold.
    PerformanceOutlier,
}

/// Learned statistics for one (stage, signature) group.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureModel {
    /// Training task count with this signature.
    pub count: u64,
    /// Share of the stage's training tasks.
    pub share: f64,
    /// Whether the signature is a flow outlier (share below rank cutoff).
    pub is_flow_outlier: bool,
    /// Duration threshold in µs; `None` when the signature was excluded
    /// from performance detection (too few samples or failed k-fold).
    pub duration_threshold_us: Option<f64>,
    /// Fraction of training tasks above the threshold (≈ 1 − percentile).
    pub training_perf_outlier_rate: f64,
}

/// Learned statistics for one stage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageModel {
    /// Training task count for the stage.
    pub task_count: u64,
    /// Per-signature models.
    pub signatures: HashMap<Signature, SignatureModel>,
    /// Fraction of training tasks whose signature is a flow outlier.
    pub flow_outlier_rate: f64,
}

impl StageModel {
    /// Signature counts in descending order (the Figure 6 distribution).
    pub fn signature_counts_desc(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.signatures.values().map(|s| s.count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }
}

/// Accumulates a training trace and builds an [`OutlierModel`].
///
/// # Example
///
/// ```
/// use saad_core::prelude::*;
///
/// # fn training_trace() -> Vec<TaskSynopsis> { Vec::new() }
/// let mut builder = ModelBuilder::new();
/// for synopsis in training_trace() {
///     builder.observe(&synopsis);
/// }
/// let model = builder.build(ModelConfig::default());
/// assert_eq!(model.stage_count(), 0);
/// ```
#[derive(Debug, Default)]
pub struct ModelBuilder {
    // durations in µs per (stage, signature)
    groups: HashMap<StageId, HashMap<Signature, Vec<f64>>>,
    observed: u64,
}

impl ModelBuilder {
    /// Create an empty builder.
    pub fn new() -> ModelBuilder {
        ModelBuilder::default()
    }

    /// Add one training synopsis.
    pub fn observe(&mut self, synopsis: &TaskSynopsis) {
        self.observe_feature(&FeatureVector::from(synopsis));
    }

    /// Add one training feature vector.
    pub fn observe_feature(&mut self, f: &FeatureVector) {
        self.observed += 1;
        let sigs = self.groups.entry(f.stage).or_default();
        // `entry(sig.clone())` would clone the boxed signature on every
        // observation; clone only when the group is first created.
        match sigs.get_mut(&f.signature) {
            Some(durations) => durations.push(f.duration_us),
            None => {
                sigs.insert(f.signature.clone(), vec![f.duration_us]);
            }
        }
    }

    /// Add one training observation from already-destructured parts —
    /// the clone-free counterpart of [`ModelBuilder::observe_feature`]
    /// for retrain paths that keep `(stage, signature, duration)`
    /// triples instead of whole synopses. The signature is cloned only
    /// when its group is first created, exactly like `observe_feature`.
    pub fn observe_parts(&mut self, stage: StageId, signature: &Signature, duration_us: f64) {
        self.observed += 1;
        let sigs = self.groups.entry(stage).or_default();
        match sigs.get_mut(signature) {
            Some(durations) => durations.push(duration_us),
            None => {
                sigs.insert(signature.clone(), vec![duration_us]);
            }
        }
    }

    /// Number of training tasks observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Build the model. Consumes nothing; the builder can keep absorbing
    /// a later trace and rebuild.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`ModelConfig::validate`]); use [`ModelBuilder::try_build`] for a
    /// typed error instead.
    pub fn build(&self, config: ModelConfig) -> OutlierModel {
        match self.try_build(config) {
            Ok(model) => model,
            Err(e) => panic!("invalid model config: {e}"),
        }
    }

    /// Build the model, first validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any parameter is outside its valid
    /// domain; no training work happens in that case.
    pub fn try_build(&self, config: ModelConfig) -> Result<OutlierModel, ConfigError> {
        config.validate()?;
        let mut stages = HashMap::with_capacity(self.groups.len());
        for (&stage, sig_groups) in &self.groups {
            let task_count: u64 = sig_groups.values().map(|d| d.len() as u64).sum();
            let rare_share_cutoff = 1.0 - config.flow_rank_percentile / 100.0;
            let mut signatures = HashMap::with_capacity(sig_groups.len());
            let mut flow_outlier_tasks = 0u64;
            for (sig, durations) in sig_groups {
                let count = durations.len() as u64;
                let share = count as f64 / task_count as f64;
                let is_flow_outlier = share < rare_share_cutoff;
                if is_flow_outlier {
                    flow_outlier_tasks += count;
                }
                // Performance thresholding only for signatures with enough
                // samples and a k-fold-stable distribution.
                let mut duration_threshold_us = None;
                let mut training_perf_outlier_rate = 0.0;
                if !is_flow_outlier && durations.len() >= config.min_signature_samples {
                    let stable = validate_percentile_threshold(
                        durations,
                        config.kfold,
                        config.duration_percentile,
                    )
                    .map(|o| !o.is_unstable(config.kfold_tolerance))
                    .unwrap_or(false);
                    if stable {
                        // NaN-safe: a corrupt duration sorts below the
                        // threshold instead of panicking a release-path
                        // retrain (NaN→below, matching `classify_batch`).
                        let threshold = percentile_nan_below(durations, config.duration_percentile)
                            .expect("non-empty group");
                        let above = durations.iter().filter(|&&d| d > threshold).count() as f64;
                        duration_threshold_us = Some(threshold);
                        training_perf_outlier_rate = above / durations.len() as f64;
                    }
                }
                signatures.insert(
                    sig.clone(),
                    SignatureModel {
                        count,
                        share,
                        is_flow_outlier,
                        duration_threshold_us,
                        training_perf_outlier_rate,
                    },
                );
            }
            stages.insert(
                stage,
                StageModel {
                    task_count,
                    signatures,
                    flow_outlier_rate: flow_outlier_tasks as f64 / task_count as f64,
                },
            );
        }
        Ok(OutlierModel { stages, config })
    }
}

impl Extend<TaskSynopsis> for ModelBuilder {
    fn extend<T: IntoIterator<Item = TaskSynopsis>>(&mut self, iter: T) {
        for s in iter {
            self.observe(&s);
        }
    }
}

/// The trained classifier: labels runtime tasks normal or outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierModel {
    stages: HashMap<StageId, StageModel>,
    config: ModelConfig,
}

impl OutlierModel {
    /// Assemble a model directly from per-stage tables, bypassing
    /// [`ModelBuilder`]. This is the constructor the streaming path
    /// (`saad-adapt`) uses: its per-(stage, signature) sketches already
    /// hold counts, shares, and percentile thresholds, so a raw-duration
    /// replay would be wasted work. The caller owns the statistical
    /// guarantees of its inputs; `config` must still validate.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `config` is outside its valid
    /// domain, exactly like [`ModelBuilder::try_build`].
    pub fn from_stages(
        stages: HashMap<StageId, StageModel>,
        config: ModelConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self { stages, config })
    }

    /// Classify one runtime task.
    pub fn classify(&self, f: &FeatureVector) -> TaskClass {
        let Some(stage) = self.stages.get(&f.stage) else {
            // A whole stage never seen in training: every signature is new.
            return TaskClass::NewSignature;
        };
        let Some(sig) = stage.signatures.get(&f.signature) else {
            return TaskClass::NewSignature;
        };
        if sig.is_flow_outlier {
            return TaskClass::FlowOutlier;
        }
        if let Some(threshold) = sig.duration_threshold_us {
            if f.duration_us > threshold {
                return TaskClass::PerformanceOutlier;
            }
        }
        TaskClass::Normal
    }

    /// The training configuration the model was built with.
    pub fn config(&self) -> ModelConfig {
        self.config
    }

    /// Per-stage model, if the stage appeared in training.
    pub fn stage(&self, stage: StageId) -> Option<&StageModel> {
        self.stages.get(&stage)
    }

    /// All trained stages.
    pub fn stages(&self) -> impl Iterator<Item = (StageId, &StageModel)> + '_ {
        self.stages.iter().map(|(&s, m)| (s, m))
    }

    /// Number of trained stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Training flow-outlier proportion for a stage (0 if untrained).
    pub fn flow_outlier_rate(&self, stage: StageId) -> f64 {
        self.stages.get(&stage).map_or(0.0, |s| s.flow_outlier_rate)
    }

    /// Training performance-outlier proportion for a (stage, signature)
    /// group; `None` when the group is not performance-eligible.
    pub fn perf_outlier_rate(&self, stage: StageId, signature: &Signature) -> Option<f64> {
        let sig = self.stages.get(&stage)?.signatures.get(signature)?;
        sig.duration_threshold_us
            .map(|_| sig.training_perf_outlier_rate)
    }

    /// Compile the model into dense [`SigId`]-indexed tables.
    ///
    /// Every training signature is interned into `interner`; the
    /// resulting [`CompiledModel`] classifies with two array indexes and
    /// a float compare — no hashing, no locks — and is immutable, so it
    /// can be shared across analyzer shards behind an `Arc`. Signatures
    /// interned *after* compilation get ids beyond the compiled tables
    /// and classify as [`TaskClass::NewSignature`], exactly like the
    /// map-based [`OutlierModel::classify`].
    pub fn compile(&self, interner: &SignatureInterner) -> CompiledModel {
        let p0_floor = 1.0 - self.config.duration_percentile / 100.0;
        // Intern everything first: table sizes depend on the final id
        // range.
        let mut entries: Vec<(StageId, Vec<(SigId, CompiledSig)>)> = self
            .stages
            .iter()
            .map(|(&stage, sm)| {
                let sigs = sm
                    .signatures
                    .iter()
                    .map(|(sig, s)| {
                        let id = interner.intern(sig);
                        let compiled = if s.is_flow_outlier {
                            CompiledSig::Flow
                        } else if let Some(threshold_us) = s.duration_threshold_us {
                            CompiledSig::Perf {
                                threshold_us,
                                p0: s.training_perf_outlier_rate.max(p0_floor),
                            }
                        } else {
                            CompiledSig::Normal
                        };
                        (id, compiled)
                    })
                    .collect();
                (stage, sigs)
            })
            .collect();
        let sig_table_len = interner.capacity();
        let stage_table_len = entries
            .iter()
            .map(|&(stage, _)| stage.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let mut stages: Vec<Option<CompiledStage>> = Vec::new();
        stages.resize_with(stage_table_len, || None);
        for (stage, sigs) in entries.drain(..) {
            let mut table = vec![CompiledSig::New; sig_table_len];
            for (id, compiled) in sigs {
                table[id.0 as usize] = compiled;
            }
            stages[stage.0 as usize] = Some(CompiledStage {
                sigs: table.into_boxed_slice(),
                flow_outlier_rate: self.flow_outlier_rate(stage),
            });
        }

        // Flatten into the branch-free batch-classify tables: one row of
        // `sig_cap + 1` entries per trained stage (the trailing entry
        // catches ids interned after compilation), plus a shared all-New
        // fallback row at offset 0 for untrained / out-of-range stages.
        // Every entry is `(threshold, class-if-below, class-if-above)`;
        // non-performance entries use an infinite threshold so the
        // compare always picks the below class (NaN durations compare
        // false too, matching the oracle's `duration > threshold` test).
        let row_len = sig_table_len + 1;
        let trained = stages.iter().filter(|s| s.is_some()).count();
        let mut flat_thresholds = Vec::with_capacity(row_len * (trained + 1));
        let mut flat_below = Vec::with_capacity(row_len * (trained + 1));
        let mut flat_above = Vec::with_capacity(row_len * (trained + 1));
        fn push_entry(
            entry: CompiledSig,
            thresholds: &mut Vec<f64>,
            below: &mut Vec<u8>,
            above: &mut Vec<u8>,
        ) {
            let (threshold, lo, hi) = match entry {
                CompiledSig::New => (f64::INFINITY, CLASS_NEW, CLASS_NEW),
                CompiledSig::Flow => (f64::INFINITY, CLASS_FLOW, CLASS_FLOW),
                CompiledSig::Normal => (f64::INFINITY, CLASS_NORMAL, CLASS_NORMAL),
                CompiledSig::Perf { threshold_us, .. } => (threshold_us, CLASS_NORMAL, CLASS_PERF),
            };
            thresholds.push(threshold);
            below.push(lo);
            above.push(hi);
        }
        for _ in 0..row_len {
            push_entry(
                CompiledSig::New,
                &mut flat_thresholds,
                &mut flat_below,
                &mut flat_above,
            );
        }
        let mut row_index = vec![0u32; stage_table_len + 1];
        for (stage, entry) in stages.iter().enumerate() {
            if let Some(cs) = entry {
                row_index[stage] = flat_thresholds.len() as u32;
                for &sig in cs.sigs.iter() {
                    push_entry(sig, &mut flat_thresholds, &mut flat_below, &mut flat_above);
                }
                push_entry(
                    CompiledSig::New,
                    &mut flat_thresholds,
                    &mut flat_below,
                    &mut flat_above,
                );
            }
        }

        CompiledModel {
            stages: stages.into_boxed_slice(),
            row_index: row_index.into_boxed_slice(),
            flat_thresholds: flat_thresholds.into_boxed_slice(),
            flat_below: flat_below.into_boxed_slice(),
            flat_above: flat_above.into_boxed_slice(),
            sig_cap: sig_table_len as u32,
        }
    }

    /// Append the model's compact wire form to `buf` (the checkpoint
    /// payload format; see [`crate::store`]). Stages and signatures are
    /// written in sorted order so the encoding is deterministic.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        put_f64(buf, self.config.flow_rank_percentile);
        put_f64(buf, self.config.duration_percentile);
        put_varint(buf, self.config.kfold as u64);
        put_f64(buf, self.config.kfold_tolerance);
        put_varint(buf, self.config.min_signature_samples as u64);
        put_varint(buf, self.stages.len() as u64);
        let mut stages: Vec<(&StageId, &StageModel)> = self.stages.iter().collect();
        stages.sort_unstable_by_key(|(s, _)| **s);
        for (&stage, sm) in stages {
            put_varint(buf, stage.0 as u64);
            put_varint(buf, sm.task_count);
            put_f64(buf, sm.flow_outlier_rate);
            put_varint(buf, sm.signatures.len() as u64);
            let mut sigs: Vec<(&Signature, &SignatureModel)> = sm.signatures.iter().collect();
            sigs.sort_unstable_by_key(|(s, _)| *s);
            for (sig, m) in sigs {
                crate::codec::put_points(buf, sig.points());
                put_varint(buf, m.count);
                put_f64(buf, m.share);
                buf.put_u8(m.is_flow_outlier as u8);
                match m.duration_threshold_us {
                    Some(t) => {
                        buf.put_u8(1);
                        put_f64(buf, t);
                    }
                    None => buf.put_u8(0),
                }
                put_f64(buf, m.training_perf_outlier_rate);
            }
        }
    }

    /// Decode a model previously written with
    /// [`OutlierModel::encode_into`], consuming its bytes from `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input (the
    /// checkpoint store's CRC framing catches corruption before this
    /// runs; these errors guard against logic-level format drift).
    pub fn decode_from(buf: &mut Bytes) -> Result<OutlierModel, DecodeError> {
        let config = ModelConfig {
            flow_rank_percentile: get_f64(buf)?,
            duration_percentile: get_f64(buf)?,
            kfold: get_varint(buf)? as usize,
            kfold_tolerance: get_f64(buf)?,
            min_signature_samples: get_varint(buf)? as usize,
        };
        let stage_count = get_varint(buf)?;
        if stage_count > u16::MAX as u64 + 1 {
            return Err(DecodeError::LengthOutOfRange(stage_count));
        }
        let mut stages = HashMap::with_capacity(stage_count as usize);
        for _ in 0..stage_count {
            let stage = StageId(get_varint(buf)? as u16);
            let task_count = get_varint(buf)?;
            let flow_outlier_rate = get_f64(buf)?;
            let sig_count = get_varint(buf)?;
            if sig_count > MAX_MODEL_SIGNATURES {
                return Err(DecodeError::LengthOutOfRange(sig_count));
            }
            let mut signatures = HashMap::with_capacity(sig_count as usize);
            for _ in 0..sig_count {
                let points = crate::codec::get_points(buf)?;
                let sig = Signature::from_points(points);
                let count = get_varint(buf)?;
                let share = get_f64(buf)?;
                let is_flow_outlier = get_u8(buf)? != 0;
                let duration_threshold_us = if get_u8(buf)? != 0 {
                    Some(get_f64(buf)?)
                } else {
                    None
                };
                let training_perf_outlier_rate = get_f64(buf)?;
                signatures.insert(
                    sig,
                    SignatureModel {
                        count,
                        share,
                        is_flow_outlier,
                        duration_threshold_us,
                        training_perf_outlier_rate,
                    },
                );
            }
            stages.insert(
                stage,
                StageModel {
                    task_count,
                    signatures,
                    flow_outlier_rate,
                },
            );
        }
        Ok(OutlierModel { stages, config })
    }
}

/// Sanity bound on per-stage signatures accepted by the checkpoint
/// decoder.
const MAX_MODEL_SIGNATURES: u64 = 1 << 24;

/// Compiled per-(stage, signature) classification entry.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CompiledSig {
    /// Signature not seen in this stage's training data.
    New,
    /// Trained flow outlier (rare signature).
    Flow,
    /// Trained common signature, excluded from performance detection.
    Normal,
    /// Trained common signature with a stable duration threshold.
    Perf {
        /// Duration threshold in µs.
        threshold_us: f64,
        /// Training outlier proportion, pre-floored at
        /// `1 − duration_percentile/100` (the detector's null rate).
        p0: f64,
    },
}

/// One stage's dense signature table.
#[derive(Debug, Clone, PartialEq)]
struct CompiledStage {
    /// Indexed by `SigId`; ids beyond the table are new signatures.
    sigs: Box<[CompiledSig]>,
    flow_outlier_rate: f64,
}

/// A dense, read-only compilation of an [`OutlierModel`].
///
/// Produced by [`OutlierModel::compile`]; classification is two array
/// indexes and a float compare. Immutable and `Sync` — share it across
/// analyzer shards with `Arc`.
///
/// # Example
///
/// ```
/// use saad_core::intern::SignatureInterner;
/// use saad_core::prelude::*;
///
/// let model = ModelBuilder::new().build(ModelConfig::default());
/// let interner = SignatureInterner::new();
/// let compiled = model.compile(&interner);
/// let sig = interner.intern(&Signature::empty());
/// assert_eq!(
///     compiled.classify(StageId(0), sig, 10.0),
///     TaskClass::NewSignature,
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    stages: Box<[Option<CompiledStage>]>,
    /// Flat-table row offset per stage id; the extra trailing slot (and
    /// every untrained stage) points at the shared all-New row 0.
    row_index: Box<[u32]>,
    /// Concatenated per-stage rows of `sig_cap + 1` duration thresholds
    /// (infinite for entries without a performance threshold).
    flat_thresholds: Box<[f64]>,
    /// Class code when `duration <= threshold`, parallel to
    /// `flat_thresholds`.
    flat_below: Box<[u8]>,
    /// Class code when `duration > threshold`, parallel to
    /// `flat_thresholds`.
    flat_above: Box<[u8]>,
    /// Interner capacity at compile time; sig ids at or beyond this
    /// clamp to each row's trailing all-New entry.
    sig_cap: u32,
}

/// 2-bit class codes used by the flat tables and [`VerdictMask`].
const CLASS_NORMAL: u8 = 0;
const CLASS_FLOW: u8 = 1;
const CLASS_NEW: u8 = 2;
const CLASS_PERF: u8 = 3;

impl TaskClass {
    /// The 2-bit code used in [`VerdictMask`] words.
    const fn code(self) -> u8 {
        match self {
            TaskClass::Normal => CLASS_NORMAL,
            TaskClass::FlowOutlier => CLASS_FLOW,
            TaskClass::NewSignature => CLASS_NEW,
            TaskClass::PerformanceOutlier => CLASS_PERF,
        }
    }

    const fn from_code(code: u8) -> TaskClass {
        match code & 3 {
            CLASS_NORMAL => TaskClass::Normal,
            CLASS_FLOW => TaskClass::FlowOutlier,
            CLASS_NEW => TaskClass::NewSignature,
            _ => TaskClass::PerformanceOutlier,
        }
    }
}

/// Packed classification verdicts from [`CompiledModel::classify_batch`]:
/// 2 bits per element, 32 elements per `u64` word. Reusable — `reset`
/// keeps the word buffer's capacity, so a recycled mask classifies
/// batch after batch without allocating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerdictMask {
    words: Vec<u64>,
    len: usize,
}

impl VerdictMask {
    /// An empty mask.
    #[must_use]
    pub fn new() -> VerdictMask {
        VerdictMask::default()
    }

    /// Number of verdicts held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask holds no verdicts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize for `len` verdicts, zeroing the words but keeping their
    /// capacity.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(32), 0);
    }

    /// The verdict for element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> TaskClass {
        assert!(i < self.len, "verdict index {i} out of range {}", self.len);
        TaskClass::from_code((self.words[i / 32] >> ((i % 32) * 2)) as u8)
    }

    /// Iterate the verdicts in element order.
    pub fn iter(&self) -> impl Iterator<Item = TaskClass> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Set the verdict for element `i` (used by the per-synopsis oracle
    /// in tests; `classify_batch` writes whole words directly).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, class: TaskClass) {
        assert!(i < self.len, "verdict index {i} out of range {}", self.len);
        let shift = (i % 32) * 2;
        let word = &mut self.words[i / 32];
        *word = (*word & !(0b11 << shift)) | ((class.code() as u64) << shift);
    }
}

impl CompiledModel {
    fn entry(&self, stage: StageId, sig: SigId) -> CompiledSig {
        match self.stages.get(stage.0 as usize) {
            Some(Some(s)) => s
                .sigs
                .get(sig.0 as usize)
                .copied()
                .unwrap_or(CompiledSig::New),
            // Whole stage never seen in training.
            _ => CompiledSig::New,
        }
    }

    /// Classify one runtime task. Agrees exactly with
    /// [`OutlierModel::classify`] on the model this was compiled from
    /// (ids resolved through the same interner).
    pub fn classify(&self, stage: StageId, sig: SigId, duration_us: f64) -> TaskClass {
        match self.entry(stage, sig) {
            CompiledSig::New => TaskClass::NewSignature,
            CompiledSig::Flow => TaskClass::FlowOutlier,
            CompiledSig::Normal => TaskClass::Normal,
            CompiledSig::Perf { threshold_us, .. } => {
                if duration_us > threshold_us {
                    TaskClass::PerformanceOutlier
                } else {
                    TaskClass::Normal
                }
            }
        }
    }

    /// Classify an interned feature.
    pub fn classify_feature(&self, f: &InternedFeature) -> TaskClass {
        self.classify(f.stage, f.sig, f.duration_us)
    }

    /// Classify a whole structure-of-arrays batch in one branch-free
    /// pass, writing packed verdicts into `out` (which is reset to the
    /// batch length, reusing its buffer).
    ///
    /// Per element the loop does two clamped table indexes and one float
    /// compare — no hashing, no enum matching, no data-dependent
    /// branches — and agrees exactly with [`CompiledModel::classify`] on
    /// every input, including NaN and zero durations (NaN compares
    /// not-above, so it classifies like an in-threshold duration, same
    /// as the oracle).
    ///
    /// # Panics
    ///
    /// Panics if the column slices have different lengths.
    pub fn classify_batch(
        &self,
        stages: &[StageId],
        sigs: &[SigId],
        durations_us: &[f64],
        out: &mut VerdictMask,
    ) {
        let len = stages.len();
        assert_eq!(sigs.len(), len, "sig column length mismatch");
        assert_eq!(durations_us.len(), len, "duration column length mismatch");
        out.reset(len);
        let stage_cap = self.row_index.len() - 1;
        let sig_cap = self.sig_cap as usize;
        for (word_idx, word) in out.words.iter_mut().enumerate() {
            let base = word_idx * 32;
            let chunk = (len - base).min(32);
            let mut packed = 0u64;
            for j in 0..chunk {
                let i = base + j;
                let row = self.row_index[(stages[i].0 as usize).min(stage_cap)] as usize;
                let entry = row + (sigs[i].0 as usize).min(sig_cap);
                let above = durations_us[i] > self.flat_thresholds[entry];
                let code = if above {
                    self.flat_above[entry]
                } else {
                    self.flat_below[entry]
                };
                packed |= (code as u64) << (j * 2);
            }
            *word = packed;
        }
    }

    /// Training flow-outlier proportion for a stage (0 if untrained).
    pub fn flow_outlier_rate(&self, stage: StageId) -> f64 {
        match self.stages.get(stage.0 as usize) {
            Some(Some(s)) => s.flow_outlier_rate,
            _ => 0.0,
        }
    }

    /// Null proportion for the performance test of a (stage, signature)
    /// group — the training outlier rate floored at
    /// `1 − duration_percentile/100` — or `None` when the group is not
    /// performance-eligible.
    pub fn perf_p0(&self, stage: StageId, sig: SigId) -> Option<f64> {
        match self.entry(stage, sig) {
            CompiledSig::Perf { p0, .. } => Some(p0),
            _ => None,
        }
    }

    /// Whether the (stage, signature) group participates in performance
    /// detection — `perf_p0(..).is_some()` via the flat tables, cheap
    /// enough for the batch accumulation loop.
    #[inline]
    pub(crate) fn is_perf_eligible(&self, stage: StageId, sig: SigId) -> bool {
        let row = self.row_index[(stage.0 as usize).min(self.row_index.len() - 1)] as usize;
        self.flat_above[row + (sig.0 as usize).min(self.sig_cap as usize)] == CLASS_PERF
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostId, TaskUid};
    use saad_logging::LogPointId;
    use saad_sim::{SimDuration, SimTime};

    fn synopsis(stage: u16, points: &[u16], dur_us: u64, uid: u64) -> TaskSynopsis {
        TaskSynopsis {
            host: HostId(0),
            stage: StageId(stage),
            uid: TaskUid(uid),
            start: SimTime::ZERO,
            duration: SimDuration::from_micros(dur_us),
            log_points: points.iter().map(|&p| (LogPointId(p), 1)).collect(),
        }
    }

    /// Paper Figure 4 population: 99% normal flow at ~10 ms, 0.9% slow
    /// (same flow, 20 ms), 0.1% rare flow with the extra point L3.
    fn figure4_trace() -> Vec<TaskSynopsis> {
        let mut out = Vec::new();
        let mut uid = 0;
        for i in 0..10_000u64 {
            uid += 1;
            if i.is_multiple_of(1000) {
                // 0.1%: rare flow [L1,L2,L3,L4,L5]
                out.push(synopsis(0, &[1, 2, 3, 4, 5], 10_000, uid));
            } else if i.is_multiple_of(100) {
                // ~1% slow: normal flow, double duration
                out.push(synopsis(0, &[1, 2, 4, 5], 20_000, uid));
            } else {
                // normal flow, 10ms +- jitter
                let jitter = (i % 97) * 10;
                out.push(synopsis(0, &[1, 2, 4, 5], 9_500 + jitter, uid));
            }
        }
        out
    }

    fn figure4_model() -> OutlierModel {
        let mut b = ModelBuilder::new();
        for s in figure4_trace() {
            b.observe(&s);
        }
        b.build(ModelConfig::default())
    }

    #[test]
    fn rare_signature_is_flow_outlier() {
        let model = figure4_model();
        let rare = FeatureVector::from(&synopsis(0, &[1, 2, 3, 4, 5], 10_000, 1));
        assert_eq!(model.classify(&rare), TaskClass::FlowOutlier);
    }

    #[test]
    fn common_fast_task_is_normal() {
        let model = figure4_model();
        let normal = FeatureVector::from(&synopsis(0, &[1, 2, 4, 5], 10_000, 1));
        assert_eq!(model.classify(&normal), TaskClass::Normal);
    }

    #[test]
    fn slow_common_task_is_performance_outlier() {
        let model = figure4_model();
        // Far above the p99 of the mixture.
        let slow = FeatureVector::from(&synopsis(0, &[1, 2, 4, 5], 80_000, 1));
        assert_eq!(model.classify(&slow), TaskClass::PerformanceOutlier);
    }

    #[test]
    fn unseen_signature_is_new() {
        let model = figure4_model();
        let new = FeatureVector::from(&synopsis(0, &[1, 9], 10_000, 1));
        assert_eq!(model.classify(&new), TaskClass::NewSignature);
        let unseen_stage = FeatureVector::from(&synopsis(42, &[1], 10, 1));
        assert_eq!(model.classify(&unseen_stage), TaskClass::NewSignature);
    }

    #[test]
    fn flow_outlier_rate_matches_population() {
        let model = figure4_model();
        let rate = model.flow_outlier_rate(StageId(0));
        assert!((rate - 0.001).abs() < 1e-6, "rate={rate}");
    }

    #[test]
    fn rare_signatures_excluded_from_perf_detection() {
        let model = figure4_model();
        let rare_sig = Signature::from_points([1, 2, 3, 4, 5].map(LogPointId));
        assert_eq!(model.perf_outlier_rate(StageId(0), &rare_sig), None);
        // Even an extreme duration with the rare signature is a FLOW
        // outlier, not a performance outlier.
        let task = FeatureVector::from(&synopsis(0, &[1, 2, 3, 4, 5], 10_000_000, 1));
        assert_eq!(model.classify(&task), TaskClass::FlowOutlier);
    }

    #[test]
    fn perf_rate_near_nominal_for_common_signature() {
        let model = figure4_model();
        let sig = Signature::from_points([1, 2, 4, 5].map(LogPointId));
        let rate = model.perf_outlier_rate(StageId(0), &sig).unwrap();
        assert!(rate <= 0.011, "rate={rate}");
        assert!(rate > 0.0, "rate={rate}");
    }

    #[test]
    fn tiny_signature_groups_skip_perf_thresholding() {
        let mut b = ModelBuilder::new();
        // 30 tasks of one signature: below min_signature_samples.
        for uid in 0..30 {
            b.observe(&synopsis(1, &[7], 100 + uid, uid));
        }
        let model = b.build(ModelConfig::default());
        let sig = Signature::from_points([LogPointId(7)]);
        // Not a flow outlier (it is 100% of the stage) but perf-ineligible.
        let f = FeatureVector::from(&synopsis(1, &[7], 1_000_000, 99));
        assert_eq!(model.classify(&f), TaskClass::Normal);
        assert_eq!(model.perf_outlier_rate(StageId(1), &sig), None);
    }

    #[test]
    fn stage_model_exposes_figure6_counts() {
        let model = figure4_model();
        let stage = model.stage(StageId(0)).unwrap();
        let counts = stage.signature_counts_desc();
        assert_eq!(counts.len(), 2); // normal + rare signatures
        assert!(counts[0] > counts[1]);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        assert_eq!(stage.task_count, 10_000);
    }

    #[test]
    fn builder_extend_and_observed() {
        let mut b = ModelBuilder::new();
        b.extend(figure4_trace());
        assert_eq!(b.observed(), 10_000);
        assert_eq!(b.build(ModelConfig::default()).stage_count(), 1);
    }

    #[test]
    fn empty_model_classifies_everything_new() {
        let model = ModelBuilder::new().build(ModelConfig::default());
        let f = FeatureVector::from(&synopsis(0, &[1], 5, 1));
        assert_eq!(model.classify(&f), TaskClass::NewSignature);
        assert_eq!(model.stage_count(), 0);
        assert_eq!(model.flow_outlier_rate(StageId(0)), 0.0);
    }

    #[test]
    fn compiled_model_agrees_with_map_classify() {
        let model = figure4_model();
        let interner = SignatureInterner::new();
        let compiled = model.compile(&interner);
        let cases = [
            synopsis(0, &[1, 2, 4, 5], 10_000, 1),    // normal
            synopsis(0, &[1, 2, 4, 5], 80_000, 2),    // perf outlier
            synopsis(0, &[1, 2, 3, 4, 5], 10_000, 3), // flow outlier
            synopsis(0, &[1, 9], 10_000, 4),          // new signature
            synopsis(42, &[1], 10, 5),                // unseen stage
        ];
        for s in &cases {
            let f = FeatureVector::from(s);
            let interned = f.intern(&interner);
            assert_eq!(
                compiled.classify_feature(&interned),
                model.classify(&f),
                "case {s:?}"
            );
        }
    }

    #[test]
    fn compiled_rates_match_model() {
        let model = figure4_model();
        let interner = SignatureInterner::new();
        let compiled = model.compile(&interner);
        assert_eq!(
            compiled.flow_outlier_rate(StageId(0)),
            model.flow_outlier_rate(StageId(0))
        );
        assert_eq!(compiled.flow_outlier_rate(StageId(42)), 0.0);
        let common = Signature::from_points([1, 2, 4, 5].map(LogPointId));
        let rare = Signature::from_points([1, 2, 3, 4, 5].map(LogPointId));
        let floor = 1.0 - model.config().duration_percentile / 100.0;
        let expected = model
            .perf_outlier_rate(StageId(0), &common)
            .unwrap()
            .max(floor);
        assert_eq!(
            compiled.perf_p0(StageId(0), interner.intern(&common)),
            Some(expected)
        );
        assert_eq!(compiled.perf_p0(StageId(0), interner.intern(&rare)), None);
    }

    #[test]
    fn classify_batch_agrees_with_scalar_classify() {
        let model = figure4_model();
        let interner = SignatureInterner::new();
        let compiled = model.compile(&interner);
        let late = interner.intern(&Signature::from_points([LogPointId(77)]));
        let common = interner.intern(&Signature::from_points([1, 2, 4, 5].map(LogPointId)));
        let rare = interner.intern(&Signature::from_points([1, 2, 3, 4, 5].map(LogPointId)));
        let mut stages = Vec::new();
        let mut sigs = Vec::new();
        let mut durations = Vec::new();
        // 67 elements (spans word boundaries) over every class and edge
        // duration: zero, NaN, infinity, exactly-at-threshold.
        let cases: Vec<(u16, SigId, f64)> = vec![
            (0, common, 10_000.0),
            (0, common, 80_000.0),
            (0, rare, 10_000.0),
            (0, late, 5.0),
            (42, common, 10.0),
            (0, common, 0.0),
            (0, common, f64::NAN),
            (0, common, f64::INFINITY),
            (0, rare, f64::NAN),
            (42, late, f64::NAN),
        ];
        for i in 0..67 {
            let (stage, sig, dur) = cases[i % cases.len()];
            stages.push(StageId(stage));
            sigs.push(sig);
            durations.push(dur);
        }
        let mut mask = VerdictMask::new();
        compiled.classify_batch(&stages, &sigs, &durations, &mut mask);
        assert_eq!(mask.len(), 67);
        for i in 0..67 {
            assert_eq!(
                mask.get(i),
                compiled.classify(stages[i], sigs[i], durations[i]),
                "element {i}"
            );
        }
        // iter() agrees with get().
        let collected: Vec<TaskClass> = mask.iter().collect();
        assert_eq!(collected.len(), 67);
        assert_eq!(collected[1], TaskClass::PerformanceOutlier);
        // A reused mask resets cleanly between batches.
        compiled.classify_batch(&stages[..3], &sigs[..3], &durations[..3], &mut mask);
        assert_eq!(mask.len(), 3);
        assert_eq!(mask.get(2), TaskClass::FlowOutlier);
    }

    #[test]
    fn verdict_mask_set_round_trips() {
        let mut mask = VerdictMask::new();
        mask.reset(33);
        mask.set(0, TaskClass::PerformanceOutlier);
        mask.set(31, TaskClass::NewSignature);
        mask.set(32, TaskClass::FlowOutlier);
        assert_eq!(mask.get(0), TaskClass::PerformanceOutlier);
        assert_eq!(mask.get(1), TaskClass::Normal);
        assert_eq!(mask.get(31), TaskClass::NewSignature);
        assert_eq!(mask.get(32), TaskClass::FlowOutlier);
        mask.set(0, TaskClass::Normal);
        assert_eq!(mask.get(0), TaskClass::Normal);
    }

    #[test]
    fn signatures_interned_after_compile_classify_as_new() {
        let model = figure4_model();
        let interner = SignatureInterner::new();
        let compiled = model.compile(&interner);
        // Interned only at runtime — id beyond every compiled table.
        let late = interner.intern(&Signature::from_points([LogPointId(77)]));
        assert_eq!(
            compiled.classify(StageId(0), late, 1.0),
            TaskClass::NewSignature
        );
        assert_eq!(compiled.perf_p0(StageId(0), late), None);
    }

    #[test]
    fn model_codec_round_trip_preserves_behavior() {
        let model = figure4_model();
        let mut buf = BytesMut::new();
        model.encode_into(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = OutlierModel::decode_from(&mut bytes).unwrap();
        assert!(bytes.is_empty(), "decoder must consume the full encoding");
        // Deterministic encoding: re-encoding the decoded model is
        // byte-identical, so the two models hold the same state.
        let mut again = BytesMut::new();
        decoded.encode_into(&mut again);
        let mut orig = BytesMut::new();
        model.encode_into(&mut orig);
        assert_eq!(orig, again);
        // And classification agrees on every class of input.
        for s in [
            synopsis(0, &[1, 2, 4, 5], 10_000, 1),
            synopsis(0, &[1, 2, 4, 5], 80_000, 2),
            synopsis(0, &[1, 2, 3, 4, 5], 10_000, 3),
            synopsis(0, &[1, 9], 10_000, 4),
            synopsis(42, &[1], 10, 5),
        ] {
            let f = FeatureVector::from(&s);
            assert_eq!(decoded.classify(&f), model.classify(&f), "case {s:?}");
        }
        assert_eq!(decoded.config(), model.config());
    }

    #[test]
    fn model_codec_rejects_truncation() {
        let model = figure4_model();
        let mut buf = BytesMut::new();
        model.encode_into(&mut buf);
        let full = buf.freeze();
        for len in 0..full.len() {
            let mut prefix = full.slice(0..len);
            assert!(
                OutlierModel::decode_from(&mut prefix).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn empty_model_round_trips() {
        let model = ModelBuilder::new().build(ModelConfig::default());
        let mut buf = BytesMut::new();
        model.encode_into(&mut buf);
        let decoded = OutlierModel::decode_from(&mut buf.freeze()).unwrap();
        assert_eq!(decoded.stage_count(), 0);
        assert_eq!(decoded.config(), model.config());
    }

    #[test]
    fn try_build_rejects_invalid_config() {
        let b = ModelBuilder::new();
        let bad_pct = ModelConfig {
            flow_rank_percentile: 101.0,
            ..ModelConfig::default()
        };
        assert_eq!(
            b.try_build(bad_pct).unwrap_err(),
            ConfigError::PercentileOutOfRange {
                name: "flow_rank_percentile",
                value: 101.0
            }
        );
        let nan_pct = ModelConfig {
            duration_percentile: f64::NAN,
            ..ModelConfig::default()
        };
        assert!(matches!(
            b.try_build(nan_pct).unwrap_err(),
            ConfigError::PercentileOutOfRange {
                name: "duration_percentile",
                ..
            }
        ));
        let zero_k = ModelConfig {
            kfold: 0,
            ..ModelConfig::default()
        };
        assert_eq!(b.try_build(zero_k).unwrap_err(), ConfigError::ZeroKfold);
        let bad_tol = ModelConfig {
            kfold_tolerance: 0.0,
            ..ModelConfig::default()
        };
        assert_eq!(
            b.try_build(bad_tol).unwrap_err(),
            ConfigError::NonPositiveTolerance(0.0)
        );
        assert!(b.try_build(ModelConfig::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid model config")]
    fn build_panics_on_invalid_config() {
        ModelBuilder::new().build(ModelConfig {
            kfold: 0,
            ..ModelConfig::default()
        });
    }

    #[test]
    fn config_error_messages_name_the_parameter() {
        let e = ConfigError::PercentileOutOfRange {
            name: "flow_rank_percentile",
            value: -1.0,
        };
        assert!(e.to_string().contains("flow_rank_percentile"));
        assert!(ConfigError::ZeroWindow.to_string().contains("window"));
        assert!(ConfigError::AlphaOutOfRange(1.5)
            .to_string()
            .contains("1.5"));
    }

    #[test]
    fn multiple_stages_are_independent() {
        let mut b = ModelBuilder::new();
        for uid in 0..200 {
            b.observe(&synopsis(0, &[1], 100, uid));
            b.observe(&synopsis(1, &[2], 100, uid));
        }
        let model = b.build(ModelConfig::default());
        assert_eq!(model.stage_count(), 2);
        // Signature [1] is normal in stage 0 but NEW in stage 1.
        let cross = FeatureVector::from(&synopsis(1, &[1], 100, 9));
        assert_eq!(model.classify(&cross), TaskClass::NewSignature);
    }
}
