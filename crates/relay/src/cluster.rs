//! The simulated relay fleet: session admission, the interleaved relay
//! pump, background escaper probes, and gray-failure attachment.

use crate::config::RelayConfig;
use crate::instrument::Instrumentation;
use crate::node::{RelayNode, RelayNodeStats, SessionSetup};
use saad_core::simtask::{SimTask, SuspendedSimTask};
use saad_core::tracker::SynopsisSink;
use saad_fault::GraySchedule;
use saad_logging::appender::Appender;
use saad_sim::{ManualClock, SimDuration, SimTime};
use saad_workload::{Operation, ThroughputRecorder, WorkloadGenerator};
use std::sync::Arc;

/// Aggregated results of a relay fleet run.
#[derive(Debug, Clone)]
pub struct RelayRunOutput {
    /// Completed relay sessions per minute window.
    pub throughput: ThroughputRecorder,
    /// Sessions accepted.
    pub sessions_started: u64,
    /// Sessions relayed to completion.
    pub sessions_completed: u64,
    /// Sessions aborted after exhausting connect attempts.
    pub sessions_aborted: u64,
    /// Sessions still mid-relay at the end of the run (discarded).
    pub sessions_in_flight: u64,
    /// Per-host counters.
    pub node_stats: Vec<RelayNodeStats>,
    /// Gray-fault disturbances actually injected.
    pub gray_injected: u64,
}

/// One suspended relay session waiting for its next burst.
struct LiveRelay {
    susp: SuspendedSimTask,
    node: usize,
    task_id: u64,
    /// Tie-break for deterministic pump order at equal times.
    seq: u64,
    next_at: SimTime,
    bursts_left: u32,
    bursts_total: u32,
    bytes_done: u64,
    wait_us: u64,
    ready_us: u64,
}

impl std::fmt::Debug for LiveRelay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveRelay")
            .field("node", &self.node)
            .field("task_id", &self.task_id)
            .field("bursts_left", &self.bursts_left)
            .finish()
    }
}

/// A simulated relay fleet.
pub struct RelayCluster {
    cfg: RelayConfig,
    clock: Arc<ManualClock>,
    inst: Instrumentation,
    nodes: Vec<RelayNode>,
    gray: GraySchedule,
    live: Vec<LiveRelay>,
    seq: u64,
    task_counter: u64,
    next_escaper: Vec<SimTime>,
    throughput: ThroughputRecorder,
    sessions_started: u64,
    sessions_completed: u64,
    sessions_aborted: u64,
}

impl std::fmt::Debug for RelayCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelayCluster")
            .field("hosts", &self.nodes.len())
            .field("live", &self.live.len())
            .field("sessions_completed", &self.sessions_completed)
            .finish()
    }
}

impl RelayCluster {
    /// Build a fleet whose trackers stream synopses to `sink`.
    pub fn new(cfg: RelayConfig, sink: Arc<dyn SynopsisSink>) -> RelayCluster {
        RelayCluster::with_appender(cfg, sink, None)
    }

    /// Build a fleet that additionally renders log records to `appender`.
    pub fn with_appender(
        cfg: RelayConfig,
        sink: Arc<dyn SynopsisSink>,
        appender: Option<Arc<dyn Appender>>,
    ) -> RelayCluster {
        cfg.validate();
        let clock = Arc::new(ManualClock::new());
        let inst = Instrumentation::install();
        let streams = saad_sim::rng::RngStreams::new(cfg.seed);
        let nodes: Vec<RelayNode> = (0..cfg.hosts)
            .map(|i| {
                RelayNode::new(
                    i,
                    cfg,
                    clock.clone(),
                    &inst,
                    sink.clone(),
                    appender.clone(),
                    &streams,
                )
            })
            .collect();
        let n = nodes.len();
        RelayCluster {
            cfg,
            clock,
            inst,
            nodes,
            gray: GraySchedule::new(cfg.seed ^ 0x6AA7),
            live: Vec::new(),
            seq: 0,
            task_counter: 0,
            next_escaper: (0..n)
                .map(|i| SimTime::from_millis(500 * i as u64 + 250))
                .collect(),
            throughput: ThroughputRecorder::new(SimDuration::from_mins(1)),
            sessions_started: 0,
            sessions_completed: 0,
            sessions_aborted: 0,
        }
    }

    /// The instrumentation (stage + log point registries) of this fleet.
    pub fn instrumentation(&self) -> &Instrumentation {
        &self.inst
    }

    /// Attach a gray-failure schedule. Host numbers in the schedule's
    /// [`saad_fault::HostSet`]s are `saad_core::HostId` values (hosts are
    /// numbered from 1).
    pub fn attach_gray(&mut self, schedule: GraySchedule) {
        self.gray = schedule;
    }

    /// Drive the fleet with `workload` until virtual time `until`. Each
    /// workload operation is one client session; sessions still mid-relay
    /// at `until` are discarded without a synopsis (the run ends before
    /// their task log is written).
    pub fn run(&mut self, workload: &mut WorkloadGenerator, until: SimTime) -> RelayRunOutput {
        loop {
            let op = workload.next_op();
            if op.at >= until {
                self.pump_until(until);
                break;
            }
            self.pump_until(op.at);
            self.start_session(op);
        }
        let in_flight = self.live.len() as u64;
        self.live.clear(); // suspended tasks are discarded silently
        RelayRunOutput {
            throughput: self.throughput.clone(),
            sessions_started: self.sessions_started,
            sessions_completed: self.sessions_completed,
            sessions_aborted: self.sessions_aborted,
            sessions_in_flight: in_flight,
            node_stats: self.nodes.iter().map(|n| n.stats).collect(),
            gray_injected: self.gray.injected(),
        }
    }

    /// Admit one session: run the pre-relay ladder inline, then park the
    /// long-lived Relaying task in the pump.
    fn start_session(&mut self, op: Operation) {
        self.sessions_started += 1;
        let node_idx = (self.task_counter as usize) % self.nodes.len();
        let task_id = self.task_counter;
        self.task_counter += 1;
        let upstream = (op.key as usize) % self.cfg.upstreams;

        let (nodes, gray) = (&mut self.nodes, &mut self.gray);
        let node = &mut nodes[node_idx];
        let Some(SessionSetup {
            relay_from,
            wait_us,
            ready_us,
        }) = node.setup_session(op.at, task_id, upstream, gray)
        else {
            self.sessions_aborted += 1;
            return;
        };

        // Begin the Relaying task, then immediately suspend it: bursts are
        // delivered by the pump, interleaved with every other live session
        // on this host.
        let bursts = node.sample_bursts();
        let logger = node.log.relaying.clone();
        let mut t = node.task(self.inst.stages.relaying, &logger, relay_from);
        t.debug(
            self.inst.points.rl_start,
            format_args!("Relaying data for task {task_id}"),
        );
        let first_gap = node.sample_gap();
        let next_at = t.now() + first_gap;
        let susp = t.suspend();
        self.live.push(LiveRelay {
            susp,
            node: node_idx,
            task_id,
            seq: self.seq,
            next_at,
            bursts_left: bursts,
            bursts_total: bursts,
            bytes_done: 0,
            wait_us,
            ready_us,
        });
        self.seq += 1;
    }

    /// Process every pump event (escaper probes, relay bursts) due at or
    /// before `t`, in deterministic global time order.
    fn pump_until(&mut self, t: SimTime) {
        loop {
            let esc = self
                .next_escaper
                .iter()
                .enumerate()
                .min_by_key(|&(i, at)| (*at, i))
                .map(|(i, at)| (*at, i));
            let relay = self
                .live
                .iter()
                .enumerate()
                .min_by_key(|(_, lr)| (lr.next_at, lr.seq))
                .map(|(i, lr)| (lr.next_at, i));
            // Escaper ticks win ties: they were scheduled first.
            match (esc, relay) {
                (Some((et, ei)), _) if et <= t && relay.is_none_or(|(rt, _)| et <= rt) => {
                    let (nodes, gray) = (&mut self.nodes, &mut self.gray);
                    nodes[ei].escaper_tick(et, gray);
                    self.next_escaper[ei] = et + self.cfg.escaper_period;
                }
                (_, Some((rt, ri))) if rt <= t => {
                    self.pump_burst(ri);
                }
                _ => break,
            }
        }
    }

    /// Resume one suspended session, relay one burst, and either park it
    /// again or finish it.
    fn pump_burst(&mut self, idx: usize) {
        let mut lr = self.live.swap_remove(idx);
        let (nodes, gray) = (&mut self.nodes, &mut self.gray);
        let node = &mut nodes[lr.node];
        let host = node.host.0;

        let logger = node.log.relaying.clone();
        let mut t = SimTask::resume(&node.tracker, &self.clock, &logger, lr.susp);
        t.advance_to(lr.next_at);
        let bytes = node.sample_burst_bytes();
        let factor = gray.relay_factor_at(t.now(), host);
        let copy = node.copy_time(bytes).mul_f64(factor);
        t.advance(copy);
        t.debug(
            self.inst.points.rl_burst,
            format_args!("Relayed {bytes} bytes c2r/r2c for task {}", lr.task_id),
        );
        lr.bytes_done += bytes;
        lr.bursts_left -= 1;
        node.stats.bursts += 1;
        node.stats.bytes_relayed += bytes;

        if lr.bursts_left == 0 {
            t.debug(
                self.inst.points.rl_done,
                format_args!(
                    "Relaying complete: {} bytes in {} bursts",
                    lr.bytes_done, lr.bursts_total
                ),
            );
            let relayed = t.finish();
            let done =
                node.finished_task(relayed, lr.task_id, "TaskFinished", lr.wait_us, lr.ready_us);
            node.stats.completed += 1;
            self.sessions_completed += 1;
            self.throughput.record(done);
        } else {
            let gap = node.sample_gap();
            lr.next_at = t.now() + gap;
            lr.susp = t.suspend();
            self.live.push(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saad_core::prelude::*;
    use saad_fault::{catalog, GrayFault, GrayFaultSpec, HostSet};

    fn workload(seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(
            saad_workload::OperationMix::write_heavy(),
            saad_workload::KeyChooser::zipfian(10_000),
            60.0,
            seed,
        )
    }

    fn healthy_run(mins: u64) -> (RelayRunOutput, Vec<TaskSynopsis>) {
        let sink = Arc::new(VecSink::new());
        let mut fleet = RelayCluster::new(RelayConfig::default(), sink.clone());
        let mut wl = workload(7);
        let out = fleet.run(&mut wl, SimTime::from_mins(mins));
        (out, sink.drain())
    }

    #[test]
    fn healthy_fleet_completes_sessions() {
        let (out, synopses) = healthy_run(3);
        assert!(
            out.sessions_completed > 8_000,
            "completed={}",
            out.sessions_completed
        );
        assert_eq!(out.sessions_aborted, 0);
        assert!(!synopses.is_empty());
        // A handful of sessions straddle the end of the run.
        assert!(out.sessions_in_flight < 200);
    }

    #[test]
    fn synopses_cover_every_stage_on_every_host() {
        let (_, synopses) = healthy_run(2);
        let fleet = RelayCluster::new(RelayConfig::default(), Arc::new(VecSink::new()));
        let st = fleet.instrumentation().stages;
        for host in 1..=4u16 {
            let seen: std::collections::HashSet<StageId> = synopses
                .iter()
                .filter(|s| s.host == HostId(host))
                .map(|s| s.stage)
                .collect();
            for required in [
                st.created,
                st.preparing,
                st.connecting,
                st.connected,
                st.replying,
                st.relaying,
                st.finished,
                st.escaper,
            ] {
                assert!(
                    seen.contains(&required),
                    "host {host} missing stage {required}"
                );
            }
        }
    }

    #[test]
    fn relaying_tasks_interleave_on_one_host() {
        // The tentpole's stress pattern: while one session is mid-relay
        // (suspended), other tasks run on the same tracker. Check that
        // Relaying synopses span overlapping time ranges per host.
        let (_, synopses) = healthy_run(2);
        let fleet = RelayCluster::new(RelayConfig::default(), Arc::new(VecSink::new()));
        let relaying = fleet.instrumentation().stages.relaying;
        let mut spans: Vec<(u64, u64)> = synopses
            .iter()
            .filter(|s| s.host == HostId(1) && s.stage == relaying)
            .map(|s| {
                let start = s.start.as_micros();
                (start, start + s.duration.as_micros())
            })
            .collect();
        spans.sort_unstable();
        let overlapping = spans.windows(2).filter(|w| w[1].0 < w[0].1).count();
        assert!(
            overlapping * 2 > spans.len(),
            "most relay sessions should overlap a neighbour: {overlapping}/{}",
            spans.len()
        );
    }

    #[test]
    fn wait_and_ready_times_are_logged() {
        let (_, synopses) = healthy_run(1);
        let fleet = RelayCluster::new(RelayConfig::default(), Arc::new(VecSink::new()));
        let inst = fleet.instrumentation();
        // Every completed session emits the Finished summary carrying
        // wait/ready, and its signature is the two Finished points.
        let finished: Vec<_> = synopses
            .iter()
            .filter(|s| s.stage == inst.stages.finished)
            .collect();
        assert!(!finished.is_empty());
        assert!(finished.iter().all(|s| {
            s.log_points.len() == 2
                && s.log_points[0].0 == inst.points.fi_summary
                && s.log_points[1].0 == inst.points.fi_done
        }));
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let sink = Arc::new(VecSink::new());
            let mut fleet = RelayCluster::new(RelayConfig::default(), sink.clone());
            let mut wl = workload(3);
            let out = fleet.run(&mut wl, SimTime::from_mins(2));
            let mut hash = 0u64;
            for s in sink.drain() {
                hash = hash
                    .wrapping_mul(31)
                    .wrapping_add(s.duration.as_micros())
                    .wrapping_add(s.log_points.len() as u64);
            }
            (out.sessions_completed, out.sessions_started, hash)
        };
        assert_eq!(run(), run());
    }

    fn stage_durations(
        synopses: &[TaskSynopsis],
        host: u16,
        stage: StageId,
    ) -> (Vec<f64>, Vec<f64>) {
        // (before minute 3, inside minutes 3..8) — the catalog fault window.
        let mut before = Vec::new();
        let mut during = Vec::new();
        for s in synopses {
            if s.host != HostId(host) || s.stage != stage {
                continue;
            }
            let d = s.duration.as_micros() as f64;
            if s.start < SimTime::from_mins(3) {
                before.push(d);
            } else if s.start < SimTime::from_mins(8) {
                during.push(d);
            }
        }
        (before, during)
    }

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len().max(1) as f64
    }

    #[test]
    fn slow_upstream_stretches_connecting_on_target_only() {
        let sink = Arc::new(VecSink::new());
        let mut fleet = RelayCluster::new(RelayConfig::default(), sink.clone());
        let scenario = catalog::gray_slow_upstream(11);
        fleet.attach_gray(scenario.schedule);
        let mut wl = workload(11);
        let out = fleet.run(&mut wl, SimTime::from_mins(8));
        assert!(out.gray_injected > 0);
        let st = fleet.instrumentation().stages;
        let synopses = sink.drain();
        let (before, during) = stage_durations(&synopses, 2, st.connecting);
        assert!(
            mean(&during) > mean(&before) * 4.0,
            "connecting on host 2 must stretch: before={} during={}",
            mean(&before),
            mean(&during)
        );
        // Untargeted host and other stages stay healthy.
        let (b1, d1) = stage_durations(&synopses, 1, st.connecting);
        assert!(mean(&d1) < mean(&b1) * 1.5);
        let (br, dr) = stage_durations(&synopses, 2, st.replying);
        assert!(mean(&dr) < mean(&br) * 1.5);
    }

    #[test]
    fn correlated_hog_stretches_relaying_on_both_targets() {
        let sink = Arc::new(VecSink::new());
        let mut fleet = RelayCluster::new(RelayConfig::default(), sink.clone());
        fleet.attach_gray(catalog::gray_correlated_hog(13).schedule);
        let mut wl = workload(13);
        fleet.run(&mut wl, SimTime::from_mins(8));
        let st = fleet.instrumentation().stages;
        let synopses = sink.drain();
        for host in [1u16, 3] {
            let (before, during) = stage_durations(&synopses, host, st.relaying);
            assert!(
                mean(&during) > mean(&before) * 2.0,
                "relaying on host {host} must stretch"
            );
        }
        let (b2, d2) = stage_durations(&synopses, 2, st.relaying);
        assert!(mean(&d2) < mean(&b2) * 1.5, "host 2 must stay healthy");
    }

    #[test]
    fn retry_storm_adds_refused_flows_on_target() {
        let sink = Arc::new(VecSink::new());
        let mut fleet = RelayCluster::new(RelayConfig::default(), sink.clone());
        fleet.attach_gray(catalog::gray_retry_storm(17).schedule);
        let mut wl = workload(17);
        let out = fleet.run(&mut wl, SimTime::from_mins(8));
        let inst = fleet.instrumentation();
        let synopses = sink.drain();
        let refused_hosts: std::collections::HashSet<u16> = synopses
            .iter()
            .filter(|s| {
                s.log_points
                    .iter()
                    .any(|&(p, _)| p == inst.points.cn_refused)
            })
            .map(|s| s.host.0)
            .collect();
        assert_eq!(refused_hosts, std::collections::HashSet::from([2]));
        assert!(out.node_stats[1].connect_retries > 100);
        // Refusals are per-attempt, so nearly all sessions still connect.
        assert!(out.sessions_aborted < out.sessions_started / 20);
        // An aborted session still writes its task log: give-up sessions
        // produce a Finished task with the standard signature.
        let aborted_spec =
            GrayFaultSpec::new(GrayFault::RetryStorm { reject_p: 1.0 }, HostSet::of(&[2]));
        let mut always = RelayCluster::new(RelayConfig::default(), Arc::new(VecSink::new()));
        always.attach_gray(GraySchedule::new(1).with_window(
            SimTime::ZERO,
            SimTime::from_mins(60),
            aborted_spec,
        ));
        let mut wl = workload(19);
        let out = always.run(&mut wl, SimTime::from_mins(1));
        assert!(out.sessions_aborted > 0);
        assert_eq!(out.node_stats[1].completed, 0);
    }

    #[test]
    fn escaper_flap_fails_probes_on_target_only() {
        let sink = Arc::new(VecSink::new());
        let mut fleet = RelayCluster::new(RelayConfig::default(), sink.clone());
        let scenario = catalog::gray_escaper_flap(23);
        fleet.attach_gray(scenario.schedule);
        let mut wl = workload(23);
        let out = fleet.run(&mut wl, SimTime::from_mins(8));
        assert!(out.gray_injected > 0);
        let inst = fleet.instrumentation();
        let synopses = sink.drain();
        let failed_hosts: std::collections::HashSet<u16> = synopses
            .iter()
            .filter(|s| s.log_points.iter().any(|&(p, _)| p == inst.points.es_fail))
            .map(|s| s.host.0)
            .collect();
        assert_eq!(failed_hosts, std::collections::HashSet::from([1]));
        // Failures happen only in the fault window, at roughly fail_p.
        assert!(out.node_stats[0].probe_failures > 0);
        assert!(out.node_stats[0].probe_failures < out.node_stats[0].probes);
        assert_eq!(out.node_stats[0].probe_failures, out.gray_injected);
        for host in 2..=out.node_stats.len() as u16 {
            assert_eq!(out.node_stats[host as usize - 1].probe_failures, 0);
        }
        // The session-serving stages stay healthy on the flapping host.
        let st = inst.stages;
        for stage in [st.connecting, st.relaying, st.replying, st.preparing] {
            let (before, during) = stage_durations(&synopses, 1, stage);
            assert!(
                mean(&during) < mean(&before) * 1.5,
                "stage {stage:?} on host 1 must stay healthy"
            );
        }
    }
}
