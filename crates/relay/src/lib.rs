//! A simulated g3proxy-shaped staged relay server.
//!
//! The paper's three storage simulators exercise crash-shaped write-path
//! faults; this crate adds the connection-oriented workload whose failures
//! are *gray* — slow but not dead. Each client session is a task that
//! moves through the g3 task-log stage vocabulary:
//!
//! ```text
//! Created → Preparing → Connecting → Connected → Replying → Relaying → Finished
//! ```
//!
//! with per-task wait time (accept → created) and ready time (created →
//! upstream connected) carried into the Finished task log, plus a
//! background `Escaper` health-probe stage.
//!
//! Unlike the storage writers, relay tasks are **long-lived**: the
//! Relaying stage is suspended between data bursts and resumed in global
//! time order, so many concurrent sessions interleave their stage
//! re-entries on one host's tracker — the tracker's suspend/resume path
//! under its production access pattern.
//!
//! Gray failures attach via [`RelayCluster::attach_gray`] with a
//! [`saad_fault::GraySchedule`], and each shape localizes to exactly one
//! stage:
//!
//! * `SlowUpstream` — inflates connect RTT (the *Connecting* stage);
//! * `CorrelatedHog` — inflates data-plane copy time (*Relaying*),
//!   simultaneously on every targeted host;
//! * `AsymmetricPartition` — inflates the proxy→client reply send
//!   (*Replying*) only; the reverse direction stays healthy;
//! * `RetryStorm` — refuses connect attempts, driving the retry flow
//!   (*Connecting*) with its warn-level refused/give-up log points.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod config;
mod instrument;
mod node;

pub use cluster::{RelayCluster, RelayRunOutput};
pub use config::RelayConfig;
pub use instrument::{Instrumentation, RelayPoints, RelayStages};
pub use node::RelayNodeStats;
