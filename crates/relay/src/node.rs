//! One simulated relay host: the per-session stage ladder (Created →
//! Preparing → Connecting → Connected → Replying), the Finished summary
//! task, and the background escaper probe.
//!
//! The long-lived Relaying stage is driven by the cluster's pump (see
//! `cluster.rs`): relay sessions are suspended between bursts and resumed
//! in global arrival order, so concurrent sessions on one host interleave
//! on the same tracker.

use crate::config::RelayConfig;
use crate::instrument::{Instrumentation, RelayPoints, RelayStages};
use rand::rngs::StdRng;
use rand::Rng;
use saad_core::simtask::SimTask;
use saad_core::tracker::{SynopsisSink, TaskExecutionTracker};
use saad_core::HostId;
use saad_fault::GraySchedule;
use saad_logging::appender::Appender;
use saad_logging::{Level, Logger};
use saad_sim::rng::{exp_sample, lognormal_sample, RngStreams};
use saad_sim::{Clock, ManualClock, SimDuration, SimTime};
use std::sync::Arc;

/// Per-stage loggers of a relay host, each wired through the host's
/// tracker.
#[derive(Debug)]
pub(crate) struct NodeLoggers {
    pub created: Arc<Logger>,
    pub preparing: Arc<Logger>,
    pub connecting: Arc<Logger>,
    pub connected: Arc<Logger>,
    pub replying: Arc<Logger>,
    pub relaying: Arc<Logger>,
    pub finished: Arc<Logger>,
    pub escaper: Arc<Logger>,
}

impl NodeLoggers {
    fn new(
        tracker: &Arc<TaskExecutionTracker>,
        inst: &Instrumentation,
        level: Level,
        appender: Option<Arc<dyn Appender>>,
    ) -> NodeLoggers {
        let mk = |name: &str| {
            let mut b = Logger::builder(name)
                .level(level)
                .interceptor(tracker.clone())
                .registry(inst.points_registry.clone());
            if let Some(a) = &appender {
                b = b.appender(a.clone());
            }
            Arc::new(b.build())
        };
        NodeLoggers {
            created: mk("Created"),
            preparing: mk("Preparing"),
            connecting: mk("Connecting"),
            connected: mk("Connected"),
            replying: mk("Replying"),
            relaying: mk("Relaying"),
            finished: mk("Finished"),
            escaper: mk("Escaper"),
        }
    }
}

/// Counters a run reports per relay host.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayNodeStats {
    /// Sessions accepted on this host.
    pub sessions: u64,
    /// Sessions that relayed to completion.
    pub completed: u64,
    /// Sessions aborted after exhausting connect attempts.
    pub aborted: u64,
    /// Connect attempts refused by the upstream (retry-storm hits).
    pub connect_retries: u64,
    /// Data bursts relayed.
    pub bursts: u64,
    /// Bytes relayed (both directions combined).
    pub bytes_relayed: u64,
    /// Escaper health probes run.
    pub probes: u64,
    /// Escaper health probes that failed (escaper-flap hits).
    pub probe_failures: u64,
}

/// Result of the pre-relay stage ladder for one session.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionSetup {
    /// When the Replying stage finished — the Relaying stage starts here.
    pub relay_from: SimTime,
    /// Accept → task-created wait, microseconds (g3's `wait_time`).
    pub wait_us: u64,
    /// Task-created → upstream-connected, microseconds (`ready_time`).
    pub ready_us: u64,
}

pub(crate) struct RelayNode {
    pub host: HostId,
    cfg: RelayConfig,
    clock: Arc<ManualClock>,
    pub tracker: Arc<TaskExecutionTracker>,
    st: RelayStages,
    pt: RelayPoints,
    pub log: NodeLoggers,
    rng: StdRng,
    pub stats: RelayNodeStats,
}

impl std::fmt::Debug for RelayNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelayNode")
            .field("host", &self.host)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RelayNode {
    pub(crate) fn new(
        index: usize,
        cfg: RelayConfig,
        clock: Arc<ManualClock>,
        inst: &Instrumentation,
        sink: Arc<dyn SynopsisSink>,
        appender: Option<Arc<dyn Appender>>,
        streams: &RngStreams,
    ) -> RelayNode {
        let host = HostId(index as u16 + 1); // paper numbers hosts from 1
        let tracker = Arc::new(TaskExecutionTracker::new(
            host,
            clock.clone() as Arc<dyn Clock>,
            sink,
        ));
        let log = NodeLoggers::new(&tracker, inst, cfg.log_level, appender);
        RelayNode {
            host,
            cfg,
            clock,
            tracker,
            st: inst.stages,
            pt: inst.points,
            log,
            rng: streams.stream(&format!("relay-{index}")),
            stats: RelayNodeStats::default(),
        }
    }

    /// CPU service time: `base_us` with log-normal jitter.
    fn cpu(&mut self, base_us: f64) -> SimDuration {
        let jitter = lognormal_sample(&mut self.rng, 0.0, 0.25);
        SimDuration::from_secs_f64(base_us * 1e-6 * jitter)
    }

    pub(crate) fn task(
        &self,
        stage: saad_core::StageId,
        logger: &Arc<Logger>,
        at: SimTime,
    ) -> SimTask {
        SimTask::begin(&self.tracker, &self.clock, logger, stage, at)
    }

    /// Run the pre-relay stage ladder for a session accepted at `at`:
    /// Created, Preparing, Connecting (with retries), Connected, Replying.
    /// Returns `None` when every connect attempt was refused — the session
    /// aborts and its Finished task has already been emitted.
    pub(crate) fn setup_session(
        &mut self,
        at: SimTime,
        task_id: u64,
        upstream: usize,
        gray: &mut GraySchedule,
    ) -> Option<SessionSetup> {
        self.stats.sessions += 1;
        let host = self.host.0;

        // Created: accept-queue wait, then the task exists.
        let wait = SimDuration::from_secs_f64(exp_sample(
            &mut self.rng,
            self.cfg.accept_wait_mean.as_secs_f64(),
        ));
        let logger = self.log.created.clone();
        let mut t = self.task(self.st.created, &logger, at);
        t.debug(
            self.pt.ct_accept,
            format_args!("Accepted connection from client c{task_id}"),
        );
        t.advance(wait);
        let wait_us = wait.as_micros();
        t.debug(
            self.pt.ct_created,
            format_args!("Task {task_id} created after {wait_us} us wait"),
        );
        let created_at = t.finish();

        // Preparing: resource setup, name resolution, escaper selection.
        // SlowDns inflates the resolution work — the stage completes, just
        // slowly, like every other gray shape.
        let logger = self.log.preparing.clone();
        let mut t = self.task(self.st.preparing, &logger, created_at);
        t.debug(
            self.pt.pr_start,
            format_args!("Preparing internal resources for task {task_id}"),
        );
        let factor = gray.dns_factor_at(t.now(), host);
        t.advance(self.cpu(60.0).mul_f64(factor));
        t.debug(
            self.pt.pr_ready,
            format_args!("Resources ready; selected escaper direct{}", upstream % 2),
        );
        let prepared_at = t.finish();

        // Connecting: attempt/backoff loop. SlowUpstream inflates the RTT;
        // RetryStorm refuses attempts and drives the retry flow.
        let logger = self.log.connecting.clone();
        let mut t = self.task(self.st.connecting, &logger, prepared_at);
        let mut connected_at = None;
        for attempt in 1..=self.cfg.max_connect_attempts {
            t.debug(
                self.pt.cn_attempt,
                format_args!("Connecting to upstream u{upstream}"),
            );
            t.advance(self.cpu(25.0));
            if gray.reject_connect(t.now(), host) {
                self.stats.connect_retries += 1;
                t.warn(
                    self.pt.cn_refused,
                    format_args!("Connection to upstream u{upstream} refused; will retry"),
                );
                let backoff = self.cfg.connect_backoff.mul_f64(attempt as f64);
                t.advance(backoff);
                continue;
            }
            let factor = gray.connect_factor_at(t.now(), host);
            let jitter = lognormal_sample(&mut self.rng, 0.0, 0.35);
            let rtt = self.cfg.connect_rtt.mul_f64(jitter * factor);
            t.advance(rtt);
            t.debug(
                self.pt.cn_established,
                format_args!(
                    "Connected to upstream u{upstream} in {} us",
                    rtt.as_micros()
                ),
            );
            connected_at = Some(t.now());
            break;
        }
        let Some(_) = connected_at else {
            t.warn(
                self.pt.cn_give_up,
                format_args!(
                    "Giving up connecting to upstream u{upstream} after {} attempts",
                    self.cfg.max_connect_attempts
                ),
            );
            let gave_up = t.finish();
            self.stats.aborted += 1;
            self.finished_task(gave_up, task_id, "UpstreamNotConnected", wait_us, 0);
            return None;
        };
        let connect_done = t.finish();
        let ready_us = connect_done.saturating_since(created_at).as_micros();

        // Connected: session bookkeeping on the established channel.
        let logger = self.log.connected.clone();
        let mut t = self.task(self.st.connected, &logger, connect_done);
        t.debug(
            self.pt.cd_handshake,
            format_args!("Upstream channel established; negotiating session {task_id}"),
        );
        t.advance(self.cpu(80.0));
        t.debug(
            self.pt.cd_ready,
            format_args!("Session {task_id} ready after {ready_us} us"),
        );
        let session_ready = t.finish();

        // Replying: tell the client the tunnel is up. AsymmetricPartition
        // degrades only this proxy→client send.
        let logger = self.log.replying.clone();
        let mut t = self.task(self.st.replying, &logger, session_ready);
        t.debug(
            self.pt.rp_start,
            format_args!("Replying to client: upstream u{upstream} connected"),
        );
        let factor = gray.reply_factor_at(t.now(), host);
        let jitter = lognormal_sample(&mut self.rng, 0.0, 0.25);
        let send = self.cfg.reply_time.mul_f64(jitter * factor);
        t.advance(send);
        t.debug(
            self.pt.rp_sent,
            format_args!("Reply of 64 bytes sent to client"),
        );
        let relay_from = t.finish();

        Some(SessionSetup {
            relay_from,
            wait_us,
            ready_us,
        })
    }

    /// Emit the Finished summary task (the g3 task log line).
    pub(crate) fn finished_task(
        &mut self,
        at: SimTime,
        task_id: u64,
        reason: &str,
        wait_us: u64,
        ready_us: u64,
    ) -> SimTime {
        let logger = self.log.finished.clone();
        let mut t = self.task(self.st.finished, &logger, at);
        t.info(
            self.pt.fi_summary,
            format_args!(
                "Task {task_id} finished: reason {reason}, wait {wait_us} us, ready {ready_us} us"
            ),
        );
        t.advance(self.cpu(30.0));
        t.debug(
            self.pt.fi_done,
            format_args!("Task log emitted for {task_id}"),
        );
        t.finish()
    }

    /// Background escaper health probe. An `EscaperFlap` window makes the
    /// probe burn its timeout and warn instead of reporting ok — the only
    /// gray shape that never touches a session-serving stage.
    pub(crate) fn escaper_tick(&mut self, at: SimTime, gray: &mut GraySchedule) {
        self.stats.probes += 1;
        let logger = self.log.escaper.clone();
        let mut t = self.task(self.st.escaper, &logger, at);
        t.debug(
            self.pt.es_probe,
            format_args!("Escaper direct0 probing upstream health"),
        );
        if gray.probe_fails(t.now(), self.host.0) {
            self.stats.probe_failures += 1;
            // A failed probe waits out its timeout before giving up.
            t.advance(self.cpu(900.0));
            t.warn(
                self.pt.es_fail,
                format_args!("Escaper direct0 health probe failed: connection timed out"),
            );
        } else {
            t.advance(self.cpu(150.0));
            t.debug(
                self.pt.es_ok,
                format_args!("Escaper direct0 health probe ok"),
            );
        }
        t.finish();
    }

    /// Sample the number of data bursts for a new relay session.
    pub(crate) fn sample_bursts(&mut self) -> u32 {
        self.rng
            .gen_range(self.cfg.min_bursts..=self.cfg.max_bursts)
    }

    /// Sample the payload size of one burst.
    pub(crate) fn sample_burst_bytes(&mut self) -> u64 {
        self.rng
            .gen_range(self.cfg.min_burst_bytes..=self.cfg.max_burst_bytes)
    }

    /// Sample the idle gap before the next burst of a session.
    pub(crate) fn sample_gap(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(exp_sample(
            &mut self.rng,
            self.cfg.burst_gap_mean.as_secs_f64(),
        ))
    }

    /// Data-plane copy time for `bytes` at the host's relay bandwidth
    /// (before any gray slowdown factor).
    pub(crate) fn copy_time(&mut self, bytes: u64) -> SimDuration {
        let jitter = lognormal_sample(&mut self.rng, 0.0, 0.2);
        SimDuration::from_secs_f64(bytes as f64 / self.cfg.relay_bytes_per_sec * jitter)
    }
}
