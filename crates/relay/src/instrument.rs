//! Instrumentation of the simulated relay source: stages and log points.
//!
//! The stage vocabulary is g3proxy's task-log `stage` enum (Created,
//! Preparing, Connecting, Connected, Replying, Relaying, Finished), each
//! lifecycle stage promoted to a tracked stage of its own — the paper's
//! stage delimiters sit exactly at the lifecycle transitions. The
//! background `Escaper` stage models the periodic upstream health probe.

use saad_core::{StageId, StageRegistry};
use saad_logging::{Level, LogPointId, LogPointRegistry};
use std::sync::Arc;

/// Stage ids of the simulated relay server.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names are the stage names
pub struct RelayStages {
    pub created: StageId,
    pub preparing: StageId,
    pub connecting: StageId,
    pub connected: StageId,
    pub replying: StageId,
    pub relaying: StageId,
    pub finished: StageId,
    pub escaper: StageId,
}

/// Log point ids of every log statement in the simulated relay source.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // names mirror the statements below
pub struct RelayPoints {
    // Created
    pub ct_accept: LogPointId,
    pub ct_created: LogPointId,
    // Preparing
    pub pr_start: LogPointId,
    pub pr_ready: LogPointId,
    // Connecting
    pub cn_attempt: LogPointId,
    pub cn_refused: LogPointId,
    pub cn_established: LogPointId,
    pub cn_give_up: LogPointId,
    // Connected
    pub cd_handshake: LogPointId,
    pub cd_ready: LogPointId,
    // Replying
    pub rp_start: LogPointId,
    pub rp_sent: LogPointId,
    // Relaying
    pub rl_start: LogPointId,
    pub rl_burst: LogPointId,
    pub rl_done: LogPointId,
    // Finished
    pub fi_summary: LogPointId,
    pub fi_done: LogPointId,
    // Escaper
    pub es_probe: LogPointId,
    pub es_ok: LogPointId,
    pub es_fail: LogPointId,
}

/// The full instrumentation output: registries plus the id structs.
#[derive(Debug, Clone)]
pub struct Instrumentation {
    /// Stage name registry.
    pub stages_registry: Arc<StageRegistry>,
    /// Log template dictionary.
    pub points_registry: Arc<LogPointRegistry>,
    /// Stage ids.
    pub stages: RelayStages,
    /// Log point ids.
    pub points: RelayPoints,
}

impl Instrumentation {
    /// Run the instrumentation pass: register all stages and log points.
    pub fn install() -> Instrumentation {
        let sr = Arc::new(StageRegistry::new());
        let stages = RelayStages {
            created: sr.register("Created"),
            preparing: sr.register("Preparing"),
            connecting: sr.register("Connecting"),
            connected: sr.register("Connected"),
            replying: sr.register("Replying"),
            relaying: sr.register("Relaying"),
            finished: sr.register("Finished"),
            escaper: sr.register("Escaper"),
        };
        let pr = Arc::new(LogPointRegistry::new());
        let reg =
            |text: &str, level: Level, file: &str, line: u32| pr.register(text, level, file, line);
        let points = RelayPoints {
            ct_accept: reg(
                "Accepted connection from client {}",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                61,
            ),
            ct_created: reg(
                "Task {} created after {} us wait",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                74,
            ),
            pr_start: reg(
                "Preparing internal resources for task {}",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                102,
            ),
            pr_ready: reg(
                "Resources ready; selected escaper {}",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                118,
            ),
            cn_attempt: reg(
                "Connecting to upstream {}",
                Level::Debug,
                "escape/direct_fixed/tcp_connect.rs",
                140,
            ),
            cn_refused: reg(
                "Connection to upstream {} refused; will retry",
                Level::Warn,
                "escape/direct_fixed/tcp_connect.rs",
                158,
            ),
            cn_established: reg(
                "Connected to upstream {} in {} us",
                Level::Debug,
                "escape/direct_fixed/tcp_connect.rs",
                171,
            ),
            cn_give_up: reg(
                "Giving up connecting to upstream {} after {} attempts",
                Level::Warn,
                "escape/direct_fixed/tcp_connect.rs",
                183,
            ),
            cd_handshake: reg(
                "Upstream channel established; negotiating session {}",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                205,
            ),
            cd_ready: reg(
                "Session {} ready after {} us",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                221,
            ),
            rp_start: reg(
                "Replying to client: upstream {} connected",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                248,
            ),
            rp_sent: reg(
                "Reply of {} bytes sent to client",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                259,
            ),
            rl_start: reg(
                "Relaying data for task {}",
                Level::Debug,
                "serve/tcp_connect/relay.rs",
                45,
            ),
            rl_burst: reg(
                "Relayed {} bytes c2r/r2c for task {}",
                Level::Debug,
                "serve/tcp_connect/relay.rs",
                72,
            ),
            rl_done: reg(
                "Relaying complete: {} bytes in {} bursts",
                Level::Debug,
                "serve/tcp_connect/relay.rs",
                91,
            ),
            fi_summary: reg(
                "Task {} finished: reason {}, wait {} us, ready {} us",
                Level::Info,
                "serve/tcp_connect/task.rs",
                301,
            ),
            fi_done: reg(
                "Task log emitted for {}",
                Level::Debug,
                "serve/tcp_connect/task.rs",
                315,
            ),
            es_probe: reg(
                "Escaper {} probing upstream health",
                Level::Debug,
                "escape/direct_fixed/mod.rs",
                402,
            ),
            es_ok: reg(
                "Escaper {} health probe ok",
                Level::Debug,
                "escape/direct_fixed/mod.rs",
                415,
            ),
            es_fail: reg(
                "Escaper {} health probe failed: {}",
                Level::Warn,
                "escape/direct_fixed/mod.rs",
                423,
            ),
        };
        Instrumentation {
            stages_registry: sr,
            points_registry: pr,
            stages,
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_registers_the_g3_stage_vocabulary() {
        let inst = Instrumentation::install();
        assert_eq!(inst.stages_registry.len(), 8);
        for name in [
            "Created",
            "Preparing",
            "Connecting",
            "Connected",
            "Replying",
            "Relaying",
            "Finished",
            "Escaper",
        ] {
            assert!(
                inst.stages_registry.lookup(name).is_some(),
                "missing stage {name}"
            );
        }
        assert_eq!(
            inst.stages_registry.name(inst.stages.relaying).as_deref(),
            Some("Relaying")
        );
    }

    #[test]
    fn install_registers_all_points_with_templates() {
        let inst = Instrumentation::install();
        assert_eq!(inst.points_registry.len(), 20);
        let t = inst
            .points_registry
            .template(inst.points.cn_refused)
            .unwrap();
        assert!(t.text.contains("refused"));
        assert_eq!(t.level, Level::Warn);
    }

    #[test]
    fn point_ids_are_distinct() {
        let inst = Instrumentation::install();
        let p = &inst.points;
        let ids = [
            p.ct_accept,
            p.ct_created,
            p.pr_start,
            p.pr_ready,
            p.cn_attempt,
            p.cn_refused,
            p.cn_established,
            p.cn_give_up,
            p.cd_handshake,
            p.cd_ready,
            p.rp_start,
            p.rp_sent,
            p.rl_start,
            p.rl_burst,
            p.rl_done,
            p.fi_summary,
            p.fi_done,
            p.es_probe,
            p.es_ok,
            p.es_fail,
        ];
        let mut sorted: Vec<u16> = ids.iter().map(|i| i.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
