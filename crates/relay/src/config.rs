//! Relay fleet configuration.

use saad_logging::Level;
use saad_sim::SimDuration;

/// Configuration of a simulated relay fleet.
///
/// Defaults model a small 4-host relay tier in front of 8 upstreams,
/// scaled so a 10-minute run produces several hundred tasks per stage,
/// host, and detection window while keeping multiple relays in flight per
/// host (the interleaved suspend/resume pattern the tracker must survive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelayConfig {
    /// Number of relay hosts (numbered from 1, like the paper's testbed).
    pub hosts: usize,
    /// Number of distinct upstream peers sessions connect to.
    pub upstreams: usize,
    /// Master RNG seed; every run with the same seed is identical.
    pub seed: u64,
    /// Logging verbosity (production default: `Info`).
    pub log_level: Level,
    /// Mean accept-queue wait before a task is created (exponential).
    pub accept_wait_mean: SimDuration,
    /// Base upstream connect round-trip (log-normal jitter on top).
    pub connect_rtt: SimDuration,
    /// Connect attempts before the task gives up.
    pub max_connect_attempts: u32,
    /// Base backoff after a refused connect (grows linearly per attempt).
    pub connect_backoff: SimDuration,
    /// Base time to write the "connected" reply to the client.
    pub reply_time: SimDuration,
    /// Data bursts per relay session, inclusive range.
    pub min_bursts: u32,
    /// See [`RelayConfig::min_bursts`].
    pub max_bursts: u32,
    /// Bytes per burst, inclusive range.
    pub min_burst_bytes: u64,
    /// See [`RelayConfig::min_burst_bytes`].
    pub max_burst_bytes: u64,
    /// Data-plane copy bandwidth per host.
    pub relay_bytes_per_sec: f64,
    /// Mean idle gap between bursts of one session (exponential); the
    /// session is suspended for the gap, so concurrent sessions interleave.
    pub burst_gap_mean: SimDuration,
    /// Escaper health-probe period per host.
    pub escaper_period: SimDuration,
}

impl Default for RelayConfig {
    fn default() -> RelayConfig {
        RelayConfig {
            hosts: 4,
            upstreams: 8,
            seed: 42,
            log_level: Level::Info,
            accept_wait_mean: SimDuration::from_micros(300),
            connect_rtt: SimDuration::from_millis(2),
            max_connect_attempts: 4,
            connect_backoff: SimDuration::from_millis(5),
            reply_time: SimDuration::from_micros(500),
            min_bursts: 8,
            max_bursts: 16,
            min_burst_bytes: 256 * 1024,
            max_burst_bytes: 1024 * 1024,
            relay_bytes_per_sec: 40e6,
            burst_gap_mean: SimDuration::from_millis(5),
            escaper_period: SimDuration::from_secs(5),
        }
    }
}

impl RelayConfig {
    /// Validate the configuration.
    ///
    /// # Panics
    ///
    /// Panics if counts or ranges are inconsistent (no hosts, host numbers
    /// outside `saad_fault::HostSet` range, empty burst ranges, zero
    /// bandwidth).
    pub fn validate(&self) {
        assert!(self.hosts >= 1, "need at least one relay host");
        assert!(
            self.hosts < 64,
            "host numbers must fit a saad_fault::HostSet (hosts < 64)"
        );
        assert!(self.upstreams >= 1, "need at least one upstream");
        assert!(self.max_connect_attempts >= 1, "need one connect attempt");
        assert!(
            self.min_bursts >= 1 && self.min_bursts <= self.max_bursts,
            "burst count range [{}, {}] is empty",
            self.min_bursts,
            self.max_bursts
        );
        assert!(
            self.min_burst_bytes >= 1 && self.min_burst_bytes <= self.max_burst_bytes,
            "burst size range is empty"
        );
        assert!(
            self.relay_bytes_per_sec.is_finite() && self.relay_bytes_per_sec > 0.0,
            "relay bandwidth must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = RelayConfig::default();
        assert_eq!(c.hosts, 4);
        assert_eq!(c.upstreams, 8);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn zero_hosts_rejected() {
        RelayConfig {
            hosts: 0,
            ..RelayConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn hosts_beyond_host_set_rejected() {
        RelayConfig {
            hosts: 64,
            ..RelayConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn empty_burst_range_rejected() {
        RelayConfig {
            min_bursts: 5,
            max_bursts: 4,
            ..RelayConfig::default()
        }
        .validate();
    }
}
