//! A real-threaded staged (SEDA-style) server runtime.
//!
//! The paper targets "the stage-oriented architecture commonly found in
//! high-performance servers" and identifies two standard staging models
//! (§3.2.1):
//!
//! * **Producer-consumer** — worker threads loop over a request queue;
//!   each dequeued request is one task. [`StagedServer`] implements this:
//!   every stage is a bounded queue plus a worker pool, and when a SAAD
//!   tracker is attached each worker calls `set_context` before running a
//!   task — starting the next task implicitly terminates the previous one,
//!   the paper's termination inference for this model.
//! * **Dispatcher-worker** — a thread spawns a worker and delegates a task
//!   to it. [`StagedServer::spawn_worker`] implements this; the worker
//!   holds a [`saad_core::tracker::TaskGuard`] so its task finalizes when
//!   the thread finishes (the paper infers this via GC `finalize()`).
//!
//! This runtime is *real threads and real time* — it exists so the
//! overhead experiment (paper Figure 7) can measure the tracker against a
//! genuinely concurrent server, and so the examples can demonstrate live,
//! streaming anomaly detection.
//!
//! # Example
//!
//! ```
//! use saad_stage::StagedServer;
//!
//! let server = StagedServer::builder()
//!     .stage("ingest", 2, 64)
//!     .stage("apply", 2, 64)
//!     .build();
//! let n = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
//! for _ in 0..100 {
//!     let n = n.clone();
//!     server.submit("ingest", move |_ctx| {
//!         n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//!     }).unwrap();
//! }
//! server.shutdown();
//! assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use crossbeam_channel::{bounded, Sender};
use saad_core::tracker::TaskExecutionTracker;
use saad_core::{StageId, StageRegistry};
use saad_logging::Logger;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Context passed to every task closure.
pub struct StageContext {
    /// The stage this task is an instance of.
    pub stage: StageId,
    /// The stage's logger (tracker-intercepted when SAAD is attached).
    pub logger: Arc<Logger>,
}

impl fmt::Debug for StageContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageContext")
            .field("stage", &self.stage)
            .finish()
    }
}

/// A task: any closure run by a stage worker.
pub type Task = Box<dyn FnOnce(&StageContext) + Send>;

/// Error returned by [`StagedServer::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No stage with that name exists.
    UnknownStage(String),
    /// The server is shutting down.
    Disconnected,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownStage(name) => write!(f, "unknown stage `{name}`"),
            SubmitError::Disconnected => f.write_str("server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct StageHandle {
    id: StageId,
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    processed: Arc<AtomicU64>,
}

/// A running staged server.
pub struct StagedServer {
    stages: HashMap<String, StageHandle>,
    registry: Arc<StageRegistry>,
    tracker: Option<Arc<TaskExecutionTracker>>,
    dispatched: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for StagedServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StagedServer")
            .field("stages", &self.stages.len())
            .finish()
    }
}

/// Constructor of per-stage loggers, named by stage.
type LoggerFactory = Box<dyn Fn(&str) -> Arc<Logger> + Send>;

/// Builder for [`StagedServer`].
pub struct StagedServerBuilder {
    specs: Vec<(String, usize, usize)>,
    registry: Arc<StageRegistry>,
    tracker: Option<Arc<TaskExecutionTracker>>,
    logger_factory: Option<LoggerFactory>,
}

impl fmt::Debug for StagedServerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StagedServerBuilder")
            .field("stages", &self.specs.len())
            .finish()
    }
}

impl StagedServerBuilder {
    /// Add a producer-consumer stage with `workers` threads and a bounded
    /// queue of `capacity`.
    pub fn stage(mut self, name: impl Into<String>, workers: usize, capacity: usize) -> Self {
        self.specs.push((name.into(), workers, capacity));
        self
    }

    /// Attach a SAAD tracker: every worker delimits tasks with
    /// `set_context`, and stage loggers are built through the factory
    /// below (or a tracker-intercepted default).
    pub fn tracker(mut self, tracker: Arc<TaskExecutionTracker>) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Use an existing stage registry (shared with the analyzer).
    pub fn registry(mut self, registry: Arc<StageRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Customize how per-stage loggers are built (to add appenders or a
    /// template dictionary). Default: a logger named after the stage with
    /// the tracker (if any) as interceptor.
    pub fn logger_factory(
        mut self,
        factory: impl Fn(&str) -> Arc<Logger> + Send + 'static,
    ) -> Self {
        self.logger_factory = Some(Box::new(factory));
        self
    }

    /// Start the server: spawns every stage's workers.
    ///
    /// # Panics
    ///
    /// Panics if two stages share a name or a stage has zero workers.
    pub fn build(self) -> StagedServer {
        let mut stages = HashMap::new();
        for (name, workers, capacity) in self.specs {
            assert!(workers > 0, "stage `{name}` needs at least one worker");
            assert!(!stages.contains_key(&name), "duplicate stage name `{name}`");
            let id = self.registry.register(&name);
            let logger = match &self.logger_factory {
                Some(f) => f(&name),
                None => {
                    let mut b = Logger::builder(&name);
                    if let Some(t) = &self.tracker {
                        b = b.interceptor(t.clone());
                    }
                    Arc::new(b.build())
                }
            };
            let (tx, rx) = bounded::<Task>(capacity);
            let processed = Arc::new(AtomicU64::new(0));
            let handles: Vec<JoinHandle<()>> = (0..workers)
                .map(|w| {
                    let rx = rx.clone();
                    let tracker = self.tracker.clone();
                    let ctx = StageContext {
                        stage: id,
                        logger: logger.clone(),
                    };
                    let processed = processed.clone();
                    std::thread::Builder::new()
                        .name(format!("{name}-{w}"))
                        .spawn(move || {
                            for task in rx.iter() {
                                // Producer-consumer delimiter: dequeuing a
                                // request starts a new task and terminates
                                // the previous one.
                                if let Some(t) = &tracker {
                                    t.set_context(ctx.stage);
                                }
                                task(&ctx);
                                processed.fetch_add(1, Ordering::Relaxed);
                            }
                            // Queue closed: the last task ends with the
                            // worker.
                            if let Some(t) = &tracker {
                                t.end_task();
                            }
                        })
                        .expect("spawn stage worker")
                })
                .collect();
            stages.insert(
                name,
                StageHandle {
                    id,
                    sender: Some(tx),
                    workers: handles,
                    processed,
                },
            );
        }
        StagedServer {
            stages,
            registry: self.registry,
            tracker: self.tracker,
            dispatched: parking_lot::Mutex::new(Vec::new()),
        }
    }
}

impl StagedServer {
    /// Start building a server.
    pub fn builder() -> StagedServerBuilder {
        StagedServerBuilder {
            specs: Vec::new(),
            registry: Arc::new(StageRegistry::new()),
            tracker: None,
            logger_factory: None,
        }
    }

    /// The stage registry (stage name ↔ id).
    pub fn registry(&self) -> &Arc<StageRegistry> {
        &self.registry
    }

    /// Id of a stage, if it exists.
    pub fn stage_id(&self, name: &str) -> Option<StageId> {
        self.stages.get(name).map(|s| s.id)
    }

    /// Tasks processed by a stage so far.
    pub fn processed(&self, name: &str) -> u64 {
        self.stages
            .get(name)
            .map_or(0, |s| s.processed.load(Ordering::Relaxed))
    }

    /// Submit a task to a stage's queue (blocking when the queue is full —
    /// natural backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::UnknownStage`] for an unregistered stage and
    /// [`SubmitError::Disconnected`] after shutdown.
    pub fn submit(
        &self,
        stage: &str,
        task: impl FnOnce(&StageContext) + Send + 'static,
    ) -> Result<(), SubmitError> {
        let handle = self
            .stages
            .get(stage)
            .ok_or_else(|| SubmitError::UnknownStage(stage.to_owned()))?;
        let sender = handle.sender.as_ref().ok_or(SubmitError::Disconnected)?;
        sender
            .send(Box::new(task))
            .map_err(|_| SubmitError::Disconnected)
    }

    /// Dispatcher-worker model: spawn a dedicated worker thread for one
    /// task of `stage`. The task is delimited by a guard, so its synopsis
    /// is emitted when the worker finishes (or dies).
    ///
    /// The stage is registered on first use.
    pub fn spawn_worker(&self, stage: &str, task: impl FnOnce(&StageContext) + Send + 'static) {
        let id = self.registry.register(stage);
        let tracker = self.tracker.clone();
        let logger = {
            let mut b = Logger::builder(stage);
            if let Some(t) = &tracker {
                b = b.interceptor(t.clone());
            }
            Arc::new(b.build())
        };
        let handle = std::thread::Builder::new()
            .name(format!("{stage}-worker"))
            .spawn(move || {
                let ctx = StageContext { stage: id, logger };
                let _guard = tracker.as_ref().map(|t| t.task_guard(id));
                task(&ctx);
            })
            .expect("spawn dispatcher worker");
        self.dispatched.lock().push(handle);
    }

    /// Shut down: close every queue, join every worker (letting in-flight
    /// tasks finish).
    pub fn shutdown(mut self) {
        for handle in self.stages.values_mut() {
            handle.sender = None; // close the queue
        }
        for (_, handle) in self.stages.drain() {
            for w in handle.workers {
                let _ = w.join();
            }
        }
        for w in self.dispatched.lock().drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saad_core::tracker::{SynopsisSink, VecSink};
    use saad_core::HostId;
    use saad_logging::{Level, LogPointId, LogPointRegistry};
    use saad_sim::{Clock, WallClock};

    #[test]
    fn tasks_flow_through_stages() {
        let server = StagedServer::builder().stage("a", 3, 16).build();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let c = counter.clone();
            server
                .submit("a", move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
        }
        server.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn unknown_stage_is_an_error() {
        let server = StagedServer::builder().stage("a", 1, 4).build();
        let err = server.submit("nope", |_| {}).unwrap_err();
        assert!(matches!(err, SubmitError::UnknownStage(_)));
        assert!(err.to_string().contains("nope"));
        server.shutdown();
    }

    #[test]
    fn processed_counts_per_stage() {
        let server = StagedServer::builder()
            .stage("x", 2, 8)
            .stage("y", 1, 8)
            .build();
        for _ in 0..10 {
            server.submit("x", |_| {}).unwrap();
        }
        for _ in 0..3 {
            server.submit("y", |_| {}).unwrap();
        }
        // Spin until the workers drain the queues.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while (server.processed("x") < 10 || server.processed("y") < 3)
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        assert_eq!(server.processed("x"), 10);
        assert_eq!(server.processed("y"), 3);
        assert_eq!(server.processed("unknown"), 0);
        server.shutdown();
    }

    #[test]
    fn tracker_emits_one_synopsis_per_task() {
        let sink = Arc::new(VecSink::new());
        let clock = Arc::new(WallClock::new());
        let tracker = Arc::new(TaskExecutionTracker::new(
            HostId(1),
            clock as Arc<dyn Clock>,
            sink.clone() as Arc<dyn SynopsisSink>,
        ));
        let registry = Arc::new(LogPointRegistry::new());
        let p = registry.register("did work {}", Level::Info, "f", 1);
        let server = StagedServer::builder()
            .tracker(tracker.clone())
            .stage("work", 4, 32)
            .build();
        for i in 0..500u64 {
            server
                .submit("work", move |ctx| {
                    ctx.logger.info(p, format_args!("did work {i}"));
                })
                .unwrap();
        }
        server.shutdown();
        let synopses = sink.drain();
        assert_eq!(synopses.len(), 500);
        assert!(synopses.iter().all(|s| s.log_points == vec![(p, 1)]));
        assert_eq!(tracker.completed(), 500);
    }

    #[test]
    fn dispatcher_worker_emits_via_guard() {
        let sink = Arc::new(VecSink::new());
        let clock = Arc::new(WallClock::new());
        let tracker = Arc::new(TaskExecutionTracker::new(
            HostId(1),
            clock as Arc<dyn Clock>,
            sink.clone() as Arc<dyn SynopsisSink>,
        ));
        let server = StagedServer::builder().tracker(tracker).build();
        for _ in 0..8 {
            server.spawn_worker("DataXceiver", |ctx| {
                ctx.logger.info(LogPointId(0), format_args!("block"));
            });
        }
        server.shutdown();
        assert_eq!(sink.len(), 8);
    }

    #[test]
    fn stage_ids_are_stable_names() {
        let server = StagedServer::builder()
            .stage("alpha", 1, 4)
            .stage("beta", 1, 4)
            .build();
        assert_eq!(server.stage_id("alpha"), server.registry().lookup("alpha"));
        assert!(server.stage_id("gamma").is_none());
        server.shutdown();
    }

    #[test]
    #[should_panic]
    fn duplicate_stage_names_rejected() {
        StagedServer::builder()
            .stage("s", 1, 4)
            .stage("s", 1, 4)
            .build();
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        StagedServer::builder().stage("s", 0, 4).build();
    }
}
