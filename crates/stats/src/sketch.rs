//! Mergeable streaming quantile sketch with a relative-error guarantee.
//!
//! The adaptive layer (`saad-adapt`) needs per-(stage, signature) duration
//! percentiles that update per window without replaying a ring buffer of
//! raw durations. [`QuantileSketch`] is a log-linear bucketed sketch in the
//! DDSketch family: values are mapped to geometrically spaced buckets, so
//! memory is bounded by the *dynamic range* of the data (not its volume)
//! and any quantile can be answered with a guaranteed relative error.
//!
//! # Error bound
//!
//! With accuracy parameter `alpha` (`0 < alpha < 1`), bucket boundaries
//! grow by `gamma = (1 + alpha) / (1 - alpha)` and each bucket's
//! representative value is the geometric mid-point, so every recorded
//! value `v >= MIN_VALUE` is reported within relative error `alpha`:
//! `|estimate - v| <= alpha * v`. Consequently, for a percentile query the
//! estimate lies within relative error `alpha` of the interval spanned by
//! the two order statistics that the exact [`crate::percentile`]
//! interpolates between — the property the proptests below pin down.
//! Values in `[0, MIN_VALUE)` (and NaN, which sorts *below* everything,
//! matching the detector's `classify_batch` semantics) collapse into a
//! dedicated zero bucket reported as `0.0`.
//!
//! # Merge
//!
//! The value→bucket mapping is deterministic and independent of insertion
//! order, so merging two sketches (same `alpha`) is exact bucket-count
//! addition: `merge(sketch(A), sketch(B))` is *structurally identical* to
//! `sketch(A ++ B)`, not merely approximately equal.

use std::collections::BTreeMap;

/// Values below this threshold (and NaN) collapse into the zero bucket.
pub const MIN_VALUE: f64 = 1e-9;

/// Default accuracy parameter: 1% relative error.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A mergeable log-linear quantile sketch (DDSketch-style).
///
/// Records non-negative samples (durations in µs, sizes in bytes, …) and
/// answers percentile queries with relative error at most `alpha`. Bounded
/// memory: one `(i32, u64)` entry per occupied geometric bucket.
///
/// # Example
///
/// ```
/// use saad_stats::sketch::QuantileSketch;
///
/// let mut sk = QuantileSketch::new(0.01);
/// for v in 1..=1000 {
///     sk.record(v as f64);
/// }
/// let p99 = sk.percentile(99.0).unwrap();
/// assert!((p99 - 990.0).abs() <= 0.01 * 990.0 + 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    /// Precomputed `ln(gamma)`; bucket index is `ceil(ln(v) / ln_gamma)`.
    ln_gamma: f64,
    /// Occupied buckets: index → sample count. A `BTreeMap` keeps keys
    /// ordered so quantile walks and serialization are deterministic.
    buckets: BTreeMap<i32, u64>,
    /// Samples in `[0, MIN_VALUE)` plus NaN (reported as `0.0`).
    zero_count: u64,
    /// Total recorded samples, including the zero bucket.
    count: u64,
    /// Exact extrema, used to clamp estimates to the observed range.
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Create a sketch with relative-error bound `alpha` (`0 < alpha < 1`).
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is not in `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch alpha must be in (0,1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The sketch's accuracy parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of occupied buckets (the sketch's memory footprint driver).
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket index for a value `>= MIN_VALUE`.
    fn key(&self, v: f64) -> i32 {
        (v.ln() / self.ln_gamma).ceil() as i32
    }

    /// Representative value of bucket `key`: the geometric mid-point
    /// `2 * gamma^key / (gamma + 1)`, within `alpha` of every value the
    /// bucket covers.
    fn value(&self, key: i32) -> f64 {
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * (self.ln_gamma * key as f64).exp() / (gamma + 1.0)
    }

    /// Record one sample. NaN and values below [`MIN_VALUE`] go to the
    /// zero bucket (reported as `0.0`) — they never panic.
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples in one update.
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        if v.is_nan() || v < MIN_VALUE {
            self.zero_count += n;
            let clamped = if v.is_nan() { 0.0 } else { v.max(0.0) };
            self.min = self.min.min(clamped);
            self.max = self.max.max(clamped);
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        *self.buckets.entry(self.key(v)).or_insert(0) += n;
    }

    /// Estimate the `p`-th percentile (`p` in `[0, 100]`, matching
    /// [`crate::percentile`]'s percent convention). Returns `None` on an
    /// empty sketch.
    ///
    /// The estimate targets the order statistic at rank
    /// `round(p / 100 * (count - 1))` and is within relative error
    /// `alpha` of it (see the module docs for the exact guarantee).
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "sketch percentile requires p in [0,100], got {p}"
        );
        if self.count == 0 {
            return None;
        }
        let rank = (p / 100.0 * (self.count - 1) as f64).round() as u64;
        if rank < self.zero_count {
            return Some(0.0);
        }
        let mut cum = self.zero_count;
        for (&key, &n) in &self.buckets {
            cum += n;
            if cum > rank {
                // Clamp to the observed range: the geometric mid-point of
                // the first/last bucket can stick out past the true
                // extrema while staying within the alpha bound.
                return Some(self.value(key).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fraction of recorded samples whose bucket lies strictly above
    /// `v`'s bucket (within the sketch's `alpha` resolution). `0.0` for
    /// an empty sketch or a NaN `v` (nothing exceeds NaN, matching
    /// `classify_batch`'s compare semantics).
    pub fn fraction_above(&self, v: f64) -> f64 {
        if self.count == 0 || v.is_nan() {
            return 0.0;
        }
        let key = if v < MIN_VALUE { i32::MIN } else { self.key(v) };
        let above: u64 = self
            .buckets
            .iter()
            .filter(|&(&k, _)| k > key)
            .map(|(_, &n)| n)
            .sum();
        above as f64 / self.count as f64
    }

    /// Smallest recorded sample (`0.0` floor for sub-threshold values).
    /// `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample. `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge `other` into `self` by exact bucket-count addition.
    ///
    /// # Panics
    ///
    /// Panics when the two sketches were built with different `alpha`
    /// (their bucket grids are incompatible).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        for (&key, &n) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += n;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Decompose the sketch into raw parts for serialization:
    /// `(alpha, zero_count, count, min, max, buckets)`. Reassemble with
    /// [`QuantileSketch::from_parts`]. `min`/`max` are meaningless when
    /// `count == 0` (encoded as `0.0` by convention — see `from_parts`).
    pub fn to_parts(&self) -> (f64, u64, u64, f64, f64, Vec<(i32, u64)>) {
        let (min, max) = if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        (
            self.alpha,
            self.zero_count,
            self.count,
            min,
            max,
            self.buckets.iter().map(|(&k, &n)| (k, n)).collect(),
        )
    }

    /// Rebuild a sketch from [`QuantileSketch::to_parts`] output.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1)` — the same contract as
    /// [`QuantileSketch::new`].
    pub fn from_parts(
        alpha: f64,
        zero_count: u64,
        count: u64,
        min: f64,
        max: f64,
        buckets: Vec<(i32, u64)>,
    ) -> Self {
        let mut sk = Self::new(alpha);
        sk.zero_count = zero_count;
        sk.count = count;
        if count > 0 {
            sk.min = min;
            sk.max = max;
        }
        sk.buckets = buckets.into_iter().collect();
        sk
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::percentile;
    use proptest::prelude::*;

    /// The documented bound versus exact type-7 `percentile`: the sketch
    /// estimate must lie within relative error `alpha` of the interval
    /// spanned by the two order statistics the exact method interpolates
    /// between.
    fn assert_within_bound(xs: &[f64], p: f64, alpha: f64) {
        let mut sk = QuantileSketch::new(alpha);
        for &v in xs {
            sk.record(v);
        }
        let est = sk.percentile(p).unwrap();
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = sorted[rank.floor() as usize];
        let hi = sorted[rank.ceil() as usize];
        let eps = 1e-9;
        assert!(
            est >= lo * (1.0 - alpha) - eps && est <= hi * (1.0 + alpha) + eps,
            "p{p}: estimate {est} outside [{lo}, {hi}] ± {alpha} relative \
             (n={})",
            xs.len()
        );
    }

    #[test]
    fn empty_sketch_has_no_percentile() {
        let sk = QuantileSketch::default();
        assert_eq!(sk.percentile(50.0), None);
        assert_eq!(sk.min(), None);
        assert_eq!(sk.max(), None);
    }

    #[test]
    fn single_value_round_trips_within_alpha() {
        let mut sk = QuantileSketch::new(0.01);
        sk.record(1234.5);
        let est = sk.percentile(50.0).unwrap();
        assert!((est - 1234.5).abs() <= 0.01 * 1234.5);
    }

    #[test]
    fn nan_and_negatives_go_below_everything() {
        let mut sk = QuantileSketch::new(0.01);
        sk.record(f64::NAN);
        sk.record(-3.0);
        sk.record(100.0);
        sk.record(200.0);
        // Two of four samples sit in the zero bucket, so p0/p25 are 0.
        assert_eq!(sk.percentile(0.0), Some(0.0));
        assert_eq!(sk.percentile(25.0), Some(0.0));
        assert!(sk.percentile(100.0).unwrap() >= 100.0 * 0.99);
    }

    #[test]
    fn fraction_above_tracks_tail_mass() {
        let mut sk = QuantileSketch::new(0.01);
        for v in 1..=1000 {
            sk.record(v as f64);
        }
        let above = sk.fraction_above(900.0);
        assert!((above - 0.1).abs() < 0.02, "got {above}");
        assert_eq!(sk.fraction_above(f64::NAN), 0.0);
        assert!((sk.fraction_above(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_requires_matching_alpha() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        let r = std::panic::catch_unwind(move || a.merge(&b));
        assert!(r.is_err());
    }

    #[test]
    fn parts_round_trip_is_identity() {
        let mut sk = QuantileSketch::new(0.02);
        for v in [0.0, 1.0, 10.0, 10.0, 1e6, f64::NAN] {
            sk.record(v);
        }
        let (alpha, zero, count, min, max, buckets) = sk.to_parts();
        let back = QuantileSketch::from_parts(alpha, zero, count, min, max, buckets);
        assert_eq!(sk, back);
    }

    #[test]
    fn memory_is_bounded_by_dynamic_range() {
        let mut sk = QuantileSketch::new(0.01);
        for i in 0..1_000_000u64 {
            // one decade of dynamic range, many samples
            sk.record(100.0 + (i % 1000) as f64);
        }
        // gamma ≈ 1.0202 ⇒ one decade spans ~ln(10)/ln(1.0202) ≈ 115 buckets.
        assert!(sk.bucket_len() < 200, "got {} buckets", sk.bucket_len());
        assert_eq!(sk.count(), 1_000_000);
    }

    proptest! {
        /// Random inputs stay within the documented error bound.
        #[test]
        fn quantiles_within_bound_random(
            xs in proptest::collection::vec(1e-3f64..1e9, 1..300),
            p in 0.0f64..100.0,
        ) {
            assert_within_bound(&xs, p, 0.01);
        }

        /// Sorted inputs (ascending) — insertion order must not matter.
        #[test]
        fn quantiles_within_bound_sorted(
            xs in proptest::collection::vec(1e-3f64..1e9, 1..300),
            p in 0.0f64..100.0,
        ) {
            let mut xs = xs;
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_within_bound(&xs, p, 0.01);
        }

        /// Adversarial duplicates: few distinct values, huge multiplicity
        /// skew — the regime where naive rank estimates collapse.
        #[test]
        fn quantiles_within_bound_adversarial_duplicates(
            distinct in proptest::collection::vec(1e-3f64..1e9, 1..5),
            reps in proptest::collection::vec(1usize..200, 1..5),
            p in 0.0f64..100.0,
        ) {
            let mut xs = Vec::new();
            for (i, &v) in distinct.iter().enumerate() {
                let n = reps.get(i).copied().unwrap_or(1);
                xs.extend(std::iter::repeat_n(v, n));
            }
            assert_within_bound(&xs, p, 0.01);
        }

        /// Merged sketches are structurally identical to the sketch of the
        /// concatenated stream — exact, not approximate.
        #[test]
        fn merge_equals_concat(
            a in proptest::collection::vec(1e-3f64..1e9, 0..200),
            b in proptest::collection::vec(1e-3f64..1e9, 0..200),
        ) {
            let mut sa = QuantileSketch::new(0.01);
            for &v in &a { sa.record(v); }
            let mut sb = QuantileSketch::new(0.01);
            for &v in &b { sb.record(v); }
            sa.merge(&sb);

            let mut sc = QuantileSketch::new(0.01);
            for &v in a.iter().chain(b.iter()) { sc.record(v); }
            prop_assert_eq!(sa, sc);
        }

        /// Percentile is monotone in p, like the exact implementation.
        #[test]
        fn sketch_percentile_is_monotone(
            xs in proptest::collection::vec(1e-3f64..1e9, 1..200),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let mut sk = QuantileSketch::new(0.01);
            for &v in &xs { sk.record(v); }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = sk.percentile(lo).unwrap();
            let b = sk.percentile(hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        /// Estimates never leave the observed data range.
        #[test]
        fn sketch_estimate_within_range(
            xs in proptest::collection::vec(1e-3f64..1e9, 1..200),
            p in 0.0f64..100.0,
        ) {
            let mut sk = QuantileSketch::new(0.01);
            for &v in &xs { sk.record(v); }
            let est = sk.percentile(p).unwrap();
            prop_assert!(est >= sk.min().unwrap() - 1e-9);
            prop_assert!(est <= sk.max().unwrap() + 1e-9);
        }
    }

    #[test]
    fn exact_percentile_agreement_on_large_uniform() {
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let mut sk = QuantileSketch::new(0.01);
        for &v in &xs {
            sk.record(v);
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            let exact = percentile(&xs, p).unwrap();
            let est = sk.percentile(p).unwrap();
            assert!(
                (est - exact).abs() <= 0.011 * exact + 1.0,
                "p{p}: {est} vs exact {exact}"
            );
        }
    }
}
