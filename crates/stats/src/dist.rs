//! Probability distributions: standard normal and Student-t.
//!
//! Only what the SAAD analyzer needs: CDFs and survival functions for
//! p-values, plus the normal quantile function for building confidence
//! bands in the experiment harness.

use crate::special::{betai, erf, erfc};

/// A normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Create a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is not strictly positive or either argument is not
    /// finite.
    pub fn new(mean: f64, std: f64) -> Normal {
        assert!(
            mean.is_finite() && std.is_finite(),
            "parameters must be finite"
        );
        assert!(std > 0.0, "std must be > 0, got {std}");
        Normal { mean, std }
    }

    /// The standard normal distribution (mean 0, std 1).
    pub fn standard() -> Normal {
        Normal::new(0.0, 1.0)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Cumulative distribution function `P(X <= x)`.
    ///
    /// # Example
    ///
    /// ```
    /// let n = saad_stats::Normal::standard();
    /// assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
    /// assert!((n.cdf(1.96) - 0.975).abs() < 1e-3);
    /// ```
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }

    /// Survival function `P(X > x)`, accurate in the upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        0.5 * erfc(z / std::f64::consts::SQRT_2)
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Quantile function (inverse CDF) via Acklam's rational approximation
    /// refined with one Halley step; absolute error below `1e-9`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn ppf(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "ppf requires 0 < p < 1, got {p}");
        self.mean + self.std * standard_normal_ppf(p)
    }
}

/// Inverse CDF of the standard normal (Acklam's algorithm + refinement).
fn standard_normal_ppf(p: f64) -> f64 {
    // Coefficients for Acklam's rational approximation.
    #[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let std = Normal::standard();
    let e = std.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// A Student-t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Create a t-distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `df > 0`.
    pub fn new(df: f64) -> StudentT {
        assert!(df > 0.0 && df.is_finite(), "df must be positive, got {df}");
        StudentT { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Cumulative distribution function `P(T <= t)` via the regularized
    /// incomplete beta function.
    ///
    /// # Example
    ///
    /// ```
    /// let t = saad_stats::StudentT::new(10.0);
    /// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
    /// // scipy.stats.t.cdf(2.228, 10) ≈ 0.975
    /// assert!((t.cdf(2.228) - 0.975).abs() < 1e-4);
    /// ```
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.df / (self.df + t * t);
        let tail = 0.5 * betai(0.5 * self.df, 0.5, x);
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Survival function `P(T > t)`, accurate in the upper tail.
    pub fn sf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.df / (self.df + t * t);
        let tail = 0.5 * betai(0.5 * self.df, 0.5, x);
        if t > 0.0 {
            tail
        } else {
            1.0 - tail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn normal_reference_cdf() {
        let n = Normal::standard();
        close(n.cdf(-1.0), 0.15865525393145707, 1e-9);
        close(n.cdf(1.0), 0.8413447460685429, 1e-9);
        close(n.cdf(3.0903), 0.999, 1e-4); // z for alpha=0.001
    }

    #[test]
    fn normal_sf_tail() {
        let n = Normal::standard();
        // scipy.stats.norm.sf(5) ≈ 2.866515719235352e-07
        let v = n.sf(5.0);
        assert!((v / 2.866515719235352e-07 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normal_pdf_peak() {
        let n = Normal::standard();
        close(n.pdf(0.0), 0.3989422804014327, 1e-12);
    }

    #[test]
    fn normal_ppf_round_trips() {
        let n = Normal::new(5.0, 2.0);
        for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            close(n.cdf(n.ppf(p)), p, 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn normal_rejects_zero_std() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn ppf_rejects_zero() {
        Normal::standard().ppf(0.0);
    }

    #[test]
    fn t_reference_values() {
        // scipy.stats.t.cdf(1.812, 10) ≈ 0.95
        close(StudentT::new(10.0).cdf(1.812), 0.95, 1e-3);
        // t.cdf(4.144, 10) ≈ 0.999 (alpha = 0.001 one-sided critical value)
        close(StudentT::new(10.0).cdf(4.144), 0.999, 1e-4);
        // Symmetric.
        close(
            StudentT::new(7.0).cdf(-2.0) + StudentT::new(7.0).cdf(2.0),
            1.0,
            1e-12,
        );
    }

    #[test]
    fn t_approaches_normal_for_large_df() {
        let t = StudentT::new(1e6);
        let n = Normal::standard();
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            close(t.cdf(x), n.cdf(x), 1e-5);
        }
    }

    #[test]
    fn t_sf_complements_cdf() {
        let t = StudentT::new(5.0);
        for &x in &[-3.0, -1.0, 0.0, 1.0, 3.0] {
            close(t.cdf(x) + t.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn t_rejects_zero_df() {
        StudentT::new(0.0);
    }

    proptest! {
        #[test]
        fn normal_cdf_is_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let n = Normal::standard();
            prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
        }

        #[test]
        fn t_cdf_in_unit_interval(df in 0.5f64..200.0, x in -50.0f64..50.0) {
            let v = StudentT::new(df).cdf(x);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn normal_ppf_inverts_cdf(p in 0.0001f64..0.9999) {
            let n = Normal::standard();
            let x = n.ppf(p);
            prop_assert!((n.cdf(x) - p).abs() < 1e-8);
        }
    }
}
