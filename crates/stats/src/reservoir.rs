//! Reservoir sampling (Algorithm R) for bounded-memory duration samples.
//!
//! The analyzer keeps at most a few thousand durations per
//! (stage, signature) group during model construction; reservoir sampling
//! keeps that bound while remaining a uniform sample of the stream.

use rand::Rng;

/// A fixed-capacity uniform sample over a stream (Vitter's Algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Create a reservoir holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Reservoir<T> {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offer one item from the stream.
    pub fn offer<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Items currently in the reservoir.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether the reservoir has reached capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Consume the reservoir, returning its items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_before_replacing() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(3);
        for i in 0..3 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2]);
        assert!(r.is_full());
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut r = Reservoir::new(10);
        for i in 0..10_000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items().len(), 10);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Each of 100 stream positions should land in a size-10 reservoir
        // about 10% of the time across many trials.
        let trials = 2000;
        let mut hits = vec![0u32; 100];
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(t);
            let mut r = Reservoir::new(10);
            for i in 0..100usize {
                r.offer(i, &mut rng);
            }
            for &x in r.items() {
                hits[x] += 1;
            }
        }
        let expected = trials as f64 * 10.0 / 100.0;
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expected).abs() / expected;
            assert!(
                dev < 0.35,
                "position {i} hit {h} times, expected ~{expected}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        Reservoir::<u8>::new(0);
    }
}
