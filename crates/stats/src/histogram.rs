//! Fixed-bin and logarithmic histograms used by the experiment harness.

use std::fmt;

/// A histogram over a fixed linear range with equal-width bins plus
/// underflow/overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram covering `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    ///
    /// # Example
    ///
    /// ```
    /// use saad_stats::histogram::Histogram;
    /// let mut h = Histogram::new(0.0, 10.0, 10);
    /// h.record(3.5);
    /// assert_eq!(h.bin_count(3), 1);
    /// ```
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty: {lo}..{hi}");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * i as f64
    }

    /// Iterator over `(bin_lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.bins.len()).map(|i| (self.bin_lo(i), self.bins[i]))
    }

    /// Approximate quantile (in percent) from bin midpoints. Returns `None`
    /// when no in-range samples exist.
    pub fn approx_percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p));
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (p / 100.0 * in_range as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.bin_lo(i) + 0.5 * w);
            }
        }
        Some(self.hi - 0.5 * w)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram [{}, {}) n={}", self.lo, self.hi, self.count)?;
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (edge, c) in self.iter() {
            let bar = "#".repeat((c * 40 / max) as usize);
            writeln!(f, "{edge:>12.3} | {c:>8} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(99.9);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(1.0); // upper bound is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn approx_percentile_median() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let med = h.approx_percentile(50.0).unwrap();
        assert!((med - 4.5).abs() <= 1.0, "median approx {med}");
    }

    #[test]
    fn approx_percentile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.approx_percentile(50.0), None);
    }

    #[test]
    fn display_renders_all_bins() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        let s = format!("{h}");
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic]
    fn empty_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
