//! Descriptive statistics: batch summaries and streaming (Welford) moments.

use std::fmt;

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(saad_stats::descriptive::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(saad_stats::descriptive::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (denominator `n - 1`).
///
/// Returns `None` when fewer than two samples are given.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Sample standard deviation (square root of [`sample_variance`]).
pub fn sample_std(xs: &[f64]) -> Option<f64> {
    sample_variance(xs).map(f64::sqrt)
}

/// A one-pass batch summary of a data set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (0 when `n < 2`).
    pub variance: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice. Returns `None` for an empty slice.
    ///
    /// # Example
    ///
    /// ```
    /// let s = saad_stats::Summary::of(&[1.0, 5.0, 3.0]).unwrap();
    /// assert_eq!(s.n, 3);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 5.0);
    /// assert_eq!(s.mean, 3.0);
    /// ```
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n: xs.len(),
            mean: mean(xs).expect("non-empty"),
            variance: sample_variance(xs).unwrap_or(0.0),
            min,
            max,
        })
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean,
            self.std(),
            self.min,
            self.max
        )
    }
}

/// Streaming mean/variance accumulator using Welford's algorithm.
///
/// Numerically stable for long streams; used by the analyzer to keep
/// per-signature duration moments without buffering synopses.
///
/// # Example
///
/// ```
/// let mut s = saad_stats::OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    ///
    /// # Example
    ///
    /// ```
    /// use saad_stats::OnlineStats;
    /// let mut a = OnlineStats::new();
    /// let mut b = OnlineStats::new();
    /// for x in [1.0, 2.0, 3.0] { a.push(x); }
    /// for x in [4.0, 5.0] { b.push(x); }
    /// a.merge(&b);
    /// assert_eq!(a.count(), 5);
    /// assert!((a.mean() - 3.0).abs() < 1e-12);
    /// ```
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 = m2;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> OnlineStats {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_empty_is_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_needs_two_samples() {
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(sample_variance(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn summary_display_is_nonempty() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn online_matches_batch() {
        let xs = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3];
        let s: OnlineStats = xs.iter().copied().collect();
        assert!((s.mean() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((s.sample_variance() - sample_variance(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(s.min(), 2.6);
        assert_eq!(s.max(), 9.7);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn welford_agrees_with_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let s: OnlineStats = xs.iter().copied().collect();
            let m = mean(&xs).unwrap();
            let v = sample_variance(&xs).unwrap();
            prop_assert!((s.mean() - m).abs() <= 1e-6 * (1.0 + m.abs()));
            prop_assert!((s.sample_variance() - v).abs() <= 1e-6 * (1.0 + v.abs()));
        }

        #[test]
        fn merge_agrees_with_concat(
            a in proptest::collection::vec(-1e5f64..1e5, 1..100),
            b in proptest::collection::vec(-1e5f64..1e5, 1..100),
        ) {
            let mut sa: OnlineStats = a.iter().copied().collect();
            let sb: OnlineStats = b.iter().copied().collect();
            sa.merge(&sb);
            let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            let sc: OnlineStats = all.iter().copied().collect();
            prop_assert!((sa.mean() - sc.mean()).abs() <= 1e-6 * (1.0 + sc.mean().abs()));
            prop_assert!(
                (sa.sample_variance() - sc.sample_variance()).abs()
                    <= 1e-6 * (1.0 + sc.sample_variance().abs())
            );
            prop_assert_eq!(sa.count(), sc.count());
        }
    }
}
