//! Sequential change detection for window-level summaries.
//!
//! The adaptive layer feeds one scalar per closed window into a
//! [`PageHinkley`] test — e.g. the L1 divergence between the window's
//! signature-share distribution and the training baseline, or the relative
//! delta between the window's duration-sketch quantiles and the model's
//! thresholds. Page-Hinkley is the classic CUSUM-style test for detecting
//! a sustained *increase* in the mean of a stream: it accumulates
//! deviations from the running mean (minus a tolerance `delta`) and trips
//! when the accumulated evidence exceeds its historical minimum by more
//! than `lambda`. Single-window spikes below `lambda` do not trip it;
//! sustained shifts do, after a number of windows inversely proportional
//! to the shift magnitude.

/// Page-Hinkley test for a sustained increase in a stream's mean.
///
/// # Example
///
/// ```
/// use saad_stats::drift::PageHinkley;
///
/// let mut ph = PageHinkley::new(0.005, 0.5);
/// // Quiet stream: small values, no trip.
/// for _ in 0..50 {
///     assert!(!ph.observe(0.01));
/// }
/// // Sustained shift: trips within a bounded number of windows.
/// let tripped = (0..20).any(|_| ph.observe(0.2));
/// assert!(tripped);
/// ```
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Tolerance: deviations below `delta` never accumulate evidence.
    delta: f64,
    /// Trip threshold on the accumulated evidence.
    lambda: f64,
    mean: f64,
    n: u64,
    cum: f64,
    cum_min: f64,
}

impl PageHinkley {
    /// Create a test with tolerance `delta` and trip threshold `lambda`
    /// (both must be non-negative and finite).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite parameters.
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "delta must be finite and >= 0, got {delta}"
        );
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be finite and >= 0, got {lambda}"
        );
        Self {
            delta,
            lambda,
            mean: 0.0,
            n: 0,
            cum: 0.0,
            cum_min: 0.0,
        }
    }

    /// Feed one observation; returns `true` when the accumulated evidence
    /// of an upward mean shift exceeds `lambda`. Non-finite observations
    /// are ignored (no state change, no trip).
    pub fn observe(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cum += x - self.mean - self.delta;
        self.cum_min = self.cum_min.min(self.cum);
        self.statistic() > self.lambda
    }

    /// Current accumulated evidence (`cum - min(cum)`), in the units of
    /// the observed stream. Compare against `lambda`.
    pub fn statistic(&self) -> f64 {
        self.cum - self.cum_min
    }

    /// Observations consumed since construction or the last [`reset`].
    ///
    /// [`reset`]: PageHinkley::reset
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Forget all accumulated state (used after a model swap: the new
    /// baseline defines a new "no drift" regime).
    pub fn reset(&mut self) {
        self.mean = 0.0;
        self.n = 0;
        self.cum = 0.0;
        self.cum_min = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_stream_never_trips() {
        let mut ph = PageHinkley::new(0.01, 1.0);
        for i in 0..1000 {
            // zero-mean alternating noise well under delta+lambda
            let x = if i % 2 == 0 { 0.004 } else { 0.006 };
            assert!(!ph.observe(x), "tripped on quiet stream at {i}");
        }
    }

    #[test]
    fn sustained_shift_trips_within_bounded_windows() {
        let mut ph = PageHinkley::new(0.01, 0.5);
        for _ in 0..100 {
            ph.observe(0.02);
        }
        let mut tripped_at = None;
        for i in 0..50 {
            if ph.observe(0.25) {
                tripped_at = Some(i);
                break;
            }
        }
        // Evidence accrues at roughly (0.25 - mean - delta) per window;
        // the trip must land within a handful of windows.
        let at = tripped_at.expect("sustained shift must trip");
        assert!(at < 10, "tripped too late: {at}");
    }

    #[test]
    fn single_spike_does_not_trip() {
        let mut ph = PageHinkley::new(0.01, 1.0);
        for _ in 0..50 {
            ph.observe(0.02);
        }
        assert!(!ph.observe(0.9), "one spike below lambda must not trip");
        for _ in 0..50 {
            assert!(!ph.observe(0.02));
        }
    }

    #[test]
    fn reset_clears_evidence() {
        let mut ph = PageHinkley::new(0.0, 0.3);
        for _ in 0..20 {
            ph.observe(0.5);
        }
        ph.reset();
        assert_eq!(ph.statistic(), 0.0);
        assert_eq!(ph.observations(), 0);
        assert!(!ph.observe(0.01));
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut ph = PageHinkley::new(0.01, 0.5);
        ph.observe(0.1);
        let stat = ph.statistic();
        assert!(!ph.observe(f64::NAN));
        assert!(!ph.observe(f64::INFINITY));
        assert_eq!(ph.statistic(), stat);
        assert_eq!(ph.observations(), 1);
    }
}
