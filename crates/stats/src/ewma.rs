//! Exponentially-weighted moving average, used by the harness to smooth
//! throughput series for the figure timelines.

/// An exponentially-weighted moving average.
///
/// # Example
///
/// ```
/// use saad_stats::ewma::Ewma;
/// let mut e = Ewma::new(0.5);
/// assert_eq!(e.update(10.0), 10.0); // first sample seeds the average
/// assert_eq!(e.update(20.0), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha` in `(0, 1]`. Larger
    /// `alpha` weights recent samples more.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Feed one sample and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_value() {
        assert_eq!(Ewma::new(0.3).value(), None);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new(0.5);
        e.update(3.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(9.0), 9.0);
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        Ewma::new(0.0);
    }
}
