//! Hypothesis tests used by the SAAD anomaly detector.
//!
//! The paper (§3.3.3) tests, per detection window, the null hypothesis
//! *"the proportion of outlier tasks is less than or equal to the training
//! proportion"* at significance level `0.001`. We provide:
//!
//! * [`one_sided_proportion_test`] — exact-parameter one-sample test of a
//!   window proportion against a known training proportion `p0`, using the
//!   normal approximation with a t-distributed statistic for small windows
//!   (this is the "t-test" the paper describes applied to 0/1 outcomes).
//!   When the approximation's validity rule fails (`n·p0 < 5` or
//!   `n·(1−p0) < 5`) the p-value comes from the exact binomial tail
//!   instead — the approximation is badly anticonservative there (for
//!   `n = 12`, `p0 = 0.01`, two outliers score t ≈ 5.5, "p ≈ 1e-4",
//!   while the exact tail is 0.006), which turns sparse stages into
//!   false-positive fountains;
//! * [`two_proportion_test`] — pooled two-sample z-test when the training
//!   proportion is itself an estimate;
//! * [`welch_t_test`] — unequal-variance t-test over raw durations, used by
//!   the ablation benches.

use crate::dist::{Normal, StudentT};
use crate::special::betai;

/// The paper's significance level for both flow and performance anomaly
/// tests.
pub const SAAD_ALPHA: f64 = 0.001;

/// Direction of the alternative hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alternative {
    /// H1: parameter is greater than the reference.
    Greater,
    /// H1: parameter is less than the reference.
    Less,
    /// H1: parameter differs from the reference (two-sided).
    TwoSided,
}

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (z or t depending on the test).
    pub statistic: f64,
    /// The p-value under the null hypothesis.
    pub p_value: f64,
    /// Degrees of freedom used (`f64::INFINITY` for pure z-tests).
    pub df: f64,
}

impl TestResult {
    /// Whether the null hypothesis is rejected at level `alpha`.
    ///
    /// # Example
    ///
    /// ```
    /// use saad_stats::hypothesis::{one_sided_proportion_test, Alternative, SAAD_ALPHA};
    /// let r = one_sided_proportion_test(50, 100, 0.01, Alternative::Greater);
    /// assert!(r.rejects(SAAD_ALPHA));
    /// ```
    pub fn rejects(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

fn p_from_statistic(stat: f64, df: f64, alternative: Alternative) -> f64 {
    let upper = if df.is_finite() {
        StudentT::new(df).sf(stat)
    } else {
        Normal::standard().sf(stat)
    };
    match alternative {
        Alternative::Greater => upper,
        Alternative::Less => 1.0 - upper,
        Alternative::TwoSided => {
            let lower = 1.0 - upper;
            2.0 * upper.min(lower)
        }
    }
}

/// One-sample proportion test of `successes / n` against a reference
/// proportion `p0`.
///
/// This is the windowed anomaly test from the paper: `successes` is the
/// number of outlier tasks in the window, `n` the window task count, and
/// `p0` the outlier proportion observed during training. The statistic
/// `(p̂ − p0) / sqrt(p0 (1 − p0) / n)` is referred to a t-distribution with
/// `n − 1` degrees of freedom (matching the paper's description of a t-test;
/// for the window sizes SAAD uses this is nearly identical to the z-test).
///
/// When the classic approximation validity rule fails — `n·p0 < 5` or
/// `n·(1 − p0) < 5` — the p-value is the exact binomial tail instead
/// (via the regularized incomplete beta, `P(X ≥ x) = I_p0(x, n−x+1)`).
/// Low-rate groups such as a periodic health probe produce windows of a
/// dozen tasks with `p0 ≈ 0.01`; there the t-approximation overstates
/// significance by orders of magnitude and flags healthy hosts.
///
/// Degenerate guards: with `p0 == 0` any observed outlier is "infinitely"
/// significant — we report p-value 0 when `successes > 0` and 1 otherwise;
/// symmetrically for `p0 == 1`.
///
/// # Panics
///
/// Panics if `n == 0`, `successes > n`, or `p0` is outside `[0, 1]`.
pub fn one_sided_proportion_test(
    successes: u64,
    n: u64,
    p0: f64,
    alternative: Alternative,
) -> TestResult {
    assert!(n > 0, "proportion test requires n > 0");
    assert!(successes <= n, "successes ({successes}) exceeds n ({n})");
    assert!((0.0..=1.0).contains(&p0), "p0 must be in [0,1], got {p0}");
    let p_hat = successes as f64 / n as f64;
    if p0 == 0.0 || p0 == 1.0 {
        let exceeds = match alternative {
            Alternative::Greater => p_hat > p0,
            Alternative::Less => p_hat < p0,
            Alternative::TwoSided => p_hat != p0,
        };
        return TestResult {
            statistic: if exceeds { f64::INFINITY } else { 0.0 },
            p_value: if exceeds { 0.0 } else { 1.0 },
            df: (n - 1).max(1) as f64,
        };
    }
    let se = (p0 * (1.0 - p0) / n as f64).sqrt();
    let stat = (p_hat - p0) / se;
    let df = (n - 1).max(1) as f64;
    let nf = n as f64;
    let p_value = if nf * p0 < 5.0 || nf * (1.0 - p0) < 5.0 {
        let upper = binomial_sf(successes, n, p0);
        match alternative {
            Alternative::Greater => upper,
            Alternative::Less => 1.0 - binomial_sf(successes + 1, n, p0),
            Alternative::TwoSided => {
                let lower = 1.0 - binomial_sf(successes + 1, n, p0);
                (2.0 * upper.min(lower)).min(1.0)
            }
        }
    } else {
        p_from_statistic(stat, df, alternative)
    };
    TestResult {
        statistic: stat,
        p_value,
        df,
    }
}

/// Exact binomial upper tail `P(X ≥ x)` for `X ~ Binomial(n, p)`, via
/// `I_p(x, n − x + 1)`.
fn binomial_sf(x: u64, n: u64, p: f64) -> f64 {
    if x == 0 {
        return 1.0;
    }
    if x > n {
        return 0.0;
    }
    betai(x as f64, (n - x + 1) as f64, p)
}

/// Pooled two-sample proportion z-test.
///
/// Compares `x1 / n1` against `x2 / n2`; used when the training proportion
/// is treated as an estimate rather than a constant.
///
/// # Panics
///
/// Panics if either sample is empty or a success count exceeds its `n`.
pub fn two_proportion_test(
    x1: u64,
    n1: u64,
    x2: u64,
    n2: u64,
    alternative: Alternative,
) -> TestResult {
    assert!(
        n1 > 0 && n2 > 0,
        "two_proportion_test requires non-empty samples"
    );
    assert!(x1 <= n1 && x2 <= n2, "successes exceed sample size");
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    if se == 0.0 {
        // Both samples all-success or all-failure: no evidence of difference.
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
            df: f64::INFINITY,
        };
    }
    let stat = (p1 - p2) / se;
    TestResult {
        statistic: stat,
        p_value: p_from_statistic(stat, f64::INFINITY, alternative),
        df: f64::INFINITY,
    }
}

/// Welch's unequal-variance t-test comparing the means of two samples.
///
/// Returns `None` when either sample has fewer than two observations or
/// both sample variances are zero (the statistic is undefined).
pub fn welch_t_test(a: &[f64], b: &[f64], alternative: Alternative) -> Option<TestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let ma = a.iter().sum::<f64>() / na;
    let mb = b.iter().sum::<f64>() / nb;
    let va = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / (na - 1.0);
    let vb = b.iter().map(|x| (x - mb) * (x - mb)).sum::<f64>() / (nb - 1.0);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        return None;
    }
    let stat = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    Some(TestResult {
        statistic: stat,
        p_value: p_from_statistic(stat, df, alternative),
        df,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn proportion_at_null_is_insignificant() {
        // Exactly the training rate: p-value ~0.5.
        let r = one_sided_proportion_test(10, 1000, 0.01, Alternative::Greater);
        assert!(r.p_value > 0.4);
        assert!(!r.rejects(SAAD_ALPHA));
    }

    #[test]
    fn proportion_far_above_null_rejects() {
        let r = one_sided_proportion_test(100, 1000, 0.01, Alternative::Greater);
        assert!(r.rejects(SAAD_ALPHA), "p={}", r.p_value);
    }

    #[test]
    fn proportion_below_null_never_rejects_greater() {
        let r = one_sided_proportion_test(0, 1000, 0.01, Alternative::Greater);
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn proportion_less_alternative() {
        let r = one_sided_proportion_test(0, 5000, 0.05, Alternative::Less);
        assert!(r.rejects(SAAD_ALPHA));
    }

    #[test]
    fn proportion_zero_null_any_outlier_rejects() {
        let r = one_sided_proportion_test(1, 10, 0.0, Alternative::Greater);
        assert_eq!(r.p_value, 0.0);
        let r = one_sided_proportion_test(0, 10, 0.0, Alternative::Greater);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn sparse_window_uses_exact_binomial_tail() {
        // n·p0 = 0.12 < 5: the t-approximation would report p ≈ 1e-4 for
        // 2/12 outliers; the exact tail is scipy binom.sf(1, 12, 0.01)
        // = 0.0061755. Two outliers must NOT reject at SAAD_ALPHA.
        let r = one_sided_proportion_test(2, 12, 0.01, Alternative::Greater);
        assert!((r.p_value - 0.0061755).abs() < 1e-5, "p={}", r.p_value);
        assert!(!r.rejects(SAAD_ALPHA));
        // Three outliers is exact-tail significant:
        // scipy binom.sf(2, 12, 0.01) = 0.0002060.
        let r = one_sided_proportion_test(3, 12, 0.01, Alternative::Greater);
        assert!((r.p_value - 0.0002060).abs() < 1e-5, "p={}", r.p_value);
        assert!(r.rejects(SAAD_ALPHA));
    }

    #[test]
    fn exact_tail_edges_are_total() {
        // Zero successes: upper tail is the whole space.
        let r = one_sided_proportion_test(0, 12, 0.01, Alternative::Greater);
        assert_eq!(r.p_value, 1.0);
        // All successes under a tiny p0: essentially impossible.
        let r = one_sided_proportion_test(12, 12, 0.01, Alternative::Greater);
        assert!(r.p_value < 1e-20);
        // Less-alternative with nothing observed under sparse p0:
        // P(X <= 0) = 0.99^12 = 0.8864.
        let r = one_sided_proportion_test(0, 12, 0.01, Alternative::Less);
        assert!((r.p_value - 0.8864).abs() < 1e-3, "p={}", r.p_value);
    }

    #[test]
    fn large_windows_keep_the_t_approximation() {
        // n·p0 = 10 ≥ 5: same p-value path as before the exact-tail guard.
        let r = one_sided_proportion_test(25, 1000, 0.01, Alternative::Greater);
        let expected = p_from_statistic(r.statistic, r.df, Alternative::Greater);
        assert_eq!(r.p_value, expected);
    }

    #[test]
    fn proportion_two_sided_doubles_tail() {
        let g = one_sided_proportion_test(30, 100, 0.2, Alternative::Greater);
        let t = one_sided_proportion_test(30, 100, 0.2, Alternative::TwoSided);
        assert!((t.p_value - 2.0 * g.p_value).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn proportion_rejects_empty_window() {
        one_sided_proportion_test(0, 0, 0.5, Alternative::Greater);
    }

    #[test]
    #[should_panic]
    fn proportion_rejects_successes_over_n() {
        one_sided_proportion_test(5, 4, 0.5, Alternative::Greater);
    }

    #[test]
    fn two_proportion_detects_difference() {
        let r = two_proportion_test(200, 1000, 50, 1000, Alternative::Greater);
        assert!(r.rejects(SAAD_ALPHA));
    }

    #[test]
    fn two_proportion_identical_rates_insignificant() {
        let r = two_proportion_test(10, 100, 100, 1000, Alternative::TwoSided);
        assert!(r.p_value > 0.9);
    }

    #[test]
    fn two_proportion_degenerate_pooled() {
        let r = two_proportion_test(0, 10, 0, 10, Alternative::Greater);
        assert_eq!(r.p_value, 1.0);
        let r = two_proportion_test(10, 10, 10, 10, Alternative::Greater);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn welch_detects_shift() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..50).map(|i| 20.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&b, &a, Alternative::Greater).unwrap();
        assert!(r.rejects(SAAD_ALPHA));
    }

    #[test]
    fn welch_identical_samples_undefined() {
        let a = [5.0, 5.0, 5.0];
        assert!(welch_t_test(&a, &a, Alternative::TwoSided).is_none());
    }

    #[test]
    fn welch_needs_two_samples_each() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0], Alternative::TwoSided).is_none());
    }

    #[test]
    fn welch_matches_scipy_reference() {
        // scipy.stats.ttest_ind([1,2,3,4,5],[2,4,6,8,10], equal_var=False)
        // -> statistic = -1.8973665961010275, pvalue = 0.10524
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = welch_t_test(&a, &b, Alternative::TwoSided).unwrap();
        assert!((r.statistic + 1.8973665961010275).abs() < 1e-9);
        // Welch–Satterthwaite df = 5.882...
        assert!((r.df - 5.882_352_941_176_47).abs() < 1e-9);
        assert!((r.p_value - 0.1073).abs() < 2e-3);
    }

    proptest! {
        #[test]
        fn p_values_are_probabilities(
            x in 0u64..500,
            extra in 1u64..500,
            p0 in 0.001f64..0.999,
        ) {
            let n = x + extra;
            for alt in [Alternative::Greater, Alternative::Less, Alternative::TwoSided] {
                let r = one_sided_proportion_test(x, n, p0, alt);
                prop_assert!((0.0..=1.0).contains(&r.p_value));
            }
        }

        #[test]
        fn more_successes_is_more_significant(
            n in 100u64..1000,
            p0 in 0.01f64..0.5,
        ) {
            let low = (n as f64 * p0) as u64;
            let high = (low + n / 4).min(n);
            prop_assume!(high > low);
            let r_low = one_sided_proportion_test(low, n, p0, Alternative::Greater);
            let r_high = one_sided_proportion_test(high, n, p0, Alternative::Greater);
            prop_assert!(r_high.p_value <= r_low.p_value + 1e-12);
        }
    }
}
