//! Exponentially decayed frequency counting over interned keys.
//!
//! The flow-outlier cutoff in the SAAD model is a share threshold over
//! signature frequencies. For streaming adaptation those frequencies must
//! *forget*: a signature that dominated an hour ago but vanished since
//! should stop anchoring the cutoff. [`DecayedFrequency`] keeps one
//! decayed count per `u64` key (an interned signature id, or any other
//! small identifier); [`DecayedFrequency::advance`] multiplies every count
//! by the decay factor at each window boundary and prunes entries that
//! have decayed to dust, so memory tracks the *live* key set.

use std::collections::HashMap;

/// Counts below this fraction of one observation are pruned on advance.
const PRUNE_BELOW: f64 = 1e-6;

/// Exponentially decayed per-key frequency counter.
///
/// # Example
///
/// ```
/// use saad_stats::decay::DecayedFrequency;
///
/// let mut f = DecayedFrequency::new(0.5);
/// f.record(7, 8.0);
/// f.record(9, 8.0);
/// f.advance(); // halve everything
/// f.record(7, 4.0);
/// assert!((f.share(7) - 2.0 / 3.0).abs() < 1e-12);
/// assert!((f.share(9) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecayedFrequency {
    decay: f64,
    counts: HashMap<u64, f64>,
    total: f64,
}

impl DecayedFrequency {
    /// Create a counter with per-advance decay factor in `(0, 1]`
    /// (`1.0` = never forget).
    ///
    /// # Panics
    ///
    /// Panics when `decay` is outside `(0, 1]`.
    pub fn new(decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0,1], got {decay}"
        );
        Self {
            decay,
            counts: HashMap::new(),
            total: 0.0,
        }
    }

    /// Add `weight` observations of `key` (weight must be finite, ≥ 0).
    pub fn record(&mut self, key: u64, weight: f64) {
        if !weight.is_finite() || weight <= 0.0 {
            return;
        }
        *self.counts.entry(key).or_insert(0.0) += weight;
        self.total += weight;
    }

    /// Close a window: multiply every count by the decay factor and prune
    /// entries that have decayed below a dust threshold.
    pub fn advance(&mut self) {
        if (self.decay - 1.0).abs() < f64::EPSILON {
            return;
        }
        self.total = 0.0;
        self.counts.retain(|_, c| {
            *c *= self.decay;
            if *c < PRUNE_BELOW {
                false
            } else {
                self.total += *c;
                true
            }
        });
    }

    /// Decayed count of `key` (`0.0` when unseen or pruned).
    pub fn count(&self, key: u64) -> f64 {
        self.counts.get(&key).copied().unwrap_or(0.0)
    }

    /// Share of `key` in the decayed total (`0.0` when the total is 0).
    pub fn share(&self, key: u64) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.count(key) / self.total
        }
    }

    /// Sum of all decayed counts.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of live (unpruned) keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no live keys remain.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(key, share)` over live keys (order unspecified).
    pub fn shares(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let total = self.total;
        self.counts.iter().map(move |(&k, &c)| {
            let s = if total > 0.0 { c / total } else { 0.0 };
            (k, s)
        })
    }

    /// L1 distance between the two share distributions, over the union of
    /// keys: `Σ |share_a(k) − share_b(k)|`, in `[0, 2]`. `0` means the
    /// distributions are identical; `2` means disjoint support. This is
    /// the signature-frequency divergence the drift detector observes.
    pub fn l1_distance(&self, other: &DecayedFrequency) -> f64 {
        let mut d = 0.0;
        for (k, s) in self.shares() {
            d += (s - other.share(k)).abs();
        }
        for (k, s) in other.shares() {
            if self.count(k) == 0.0 {
                d += s;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut f = DecayedFrequency::new(0.9);
        for k in 0..10u64 {
            f.record(k, (k + 1) as f64);
        }
        let sum: f64 = f.shares().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn advance_decays_and_prunes() {
        let mut f = DecayedFrequency::new(0.1);
        f.record(1, 1.0);
        // 1.0 → 0.1 → … → below dust in a handful of advances.
        for _ in 0..8 {
            f.advance();
        }
        assert!(f.is_empty(), "key should decay to dust and be pruned");
        assert_eq!(f.share(1), 0.0);
    }

    #[test]
    fn decay_one_never_forgets() {
        let mut f = DecayedFrequency::new(1.0);
        f.record(4, 2.0);
        for _ in 0..100 {
            f.advance();
        }
        assert_eq!(f.count(4), 2.0);
        assert_eq!(f.total(), 2.0);
    }

    #[test]
    fn l1_distance_identical_is_zero() {
        let mut a = DecayedFrequency::new(0.9);
        let mut b = DecayedFrequency::new(0.9);
        for k in 0..5u64 {
            a.record(k, 3.0);
            b.record(k, 6.0); // same shape, different scale
        }
        assert!(a.l1_distance(&b) < 1e-12);
    }

    #[test]
    fn l1_distance_disjoint_is_two() {
        let mut a = DecayedFrequency::new(0.9);
        let mut b = DecayedFrequency::new(0.9);
        a.record(1, 5.0);
        b.record(2, 5.0);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn l1_distance_is_symmetric() {
        let mut a = DecayedFrequency::new(0.9);
        let mut b = DecayedFrequency::new(0.9);
        a.record(1, 3.0);
        a.record(2, 1.0);
        b.record(2, 2.0);
        b.record(3, 2.0);
        assert!((a.l1_distance(&b) - b.l1_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn ignores_junk_weights() {
        let mut f = DecayedFrequency::new(0.9);
        f.record(1, f64::NAN);
        f.record(1, -2.0);
        f.record(1, 0.0);
        assert!(f.is_empty());
    }
}
