//! k-fold cross-validation utilities.
//!
//! The paper (§3.3.2) discards a signature from performance-outlier
//! detection when its duration distribution cannot support a stable
//! percentile threshold: split the training durations into `k` folds, build
//! the threshold from `k − 1` folds, measure the outlier rate on the held
//! out fold, and discard the signature when the average held-out outlier
//! rate is significantly higher than the nominal rate.

use crate::quantile::percentile_of_sorted;

/// Deterministically split `n` items into `k` contiguous folds of
/// near-equal size. Returns `(start, end)` index pairs.
///
/// Folds differ in size by at most one element. Fewer than `k` items yields
/// one fold per item.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// let folds = saad_stats::kfold::fold_bounds(10, 3);
/// assert_eq!(folds, vec![(0, 4), (4, 7), (7, 10)]);
/// ```
pub fn fold_bounds(n: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k > 0, "k must be positive");
    let k = k.min(n.max(1));
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Result of k-fold validation of a percentile threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KFoldOutcome {
    /// Mean held-out outlier rate across folds.
    pub mean_heldout_rate: f64,
    /// Nominal outlier rate implied by the percentile (e.g. 0.01 for p99).
    pub nominal_rate: f64,
    /// Number of folds actually evaluated.
    pub folds: usize,
}

impl KFoldOutcome {
    /// Whether the observed held-out outlier rate exceeds the nominal rate
    /// by more than `tolerance_factor` (the paper's "significantly higher"
    /// criterion; a factor of 3 works well in practice).
    pub fn is_unstable(&self, tolerance_factor: f64) -> bool {
        self.mean_heldout_rate > self.nominal_rate * tolerance_factor
    }
}

/// Run k-fold validation of a `p`-th percentile threshold over `durations`.
///
/// For each fold: the threshold is the `p`-th percentile of the remaining
/// folds; the held-out outlier rate is the fraction of the fold strictly
/// above that threshold. Returns `None` when there are not enough samples
/// to form at least two non-empty folds.
///
/// Durations are shuffled deterministically by a simple multiplicative hash
/// of their index so that time-correlated streams don't bias the folds; the
/// caller may pre-shuffle instead if it has a seeded RNG.
///
/// # Panics
///
/// Panics if `k == 0` or `p` is outside `[0, 100]`.
pub fn validate_percentile_threshold(durations: &[f64], k: usize, p: f64) -> Option<KFoldOutcome> {
    assert!(k > 0);
    assert!((0.0..=100.0).contains(&p));
    if durations.len() < k.max(2) {
        return None;
    }
    // Deterministic interleave to decorrelate folds from arrival order.
    let mut idx: Vec<usize> = (0..durations.len()).collect();
    idx.sort_by_key(|&i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ (i >> 3));
    let shuffled: Vec<f64> = idx.iter().map(|&i| durations[i]).collect();

    let bounds = fold_bounds(shuffled.len(), k);
    let mut rates = Vec::with_capacity(bounds.len());
    for &(s, e) in &bounds {
        if e == s {
            continue;
        }
        let mut train: Vec<f64> = Vec::with_capacity(shuffled.len() - (e - s));
        train.extend_from_slice(&shuffled[..s]);
        train.extend_from_slice(&shuffled[e..]);
        if train.is_empty() {
            continue;
        }
        train.sort_by(|a, b| a.partial_cmp(b).expect("NaN duration"));
        let threshold = percentile_of_sorted(&train, p);
        let outliers = shuffled[s..e].iter().filter(|&&d| d > threshold).count();
        rates.push(outliers as f64 / (e - s) as f64);
    }
    if rates.len() < 2 {
        return None;
    }
    Some(KFoldOutcome {
        mean_heldout_rate: rates.iter().sum::<f64>() / rates.len() as f64,
        nominal_rate: 1.0 - p / 100.0,
        folds: rates.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bounds_cover_everything_disjointly() {
        for n in [0usize, 1, 5, 10, 13, 100] {
            for k in [1usize, 2, 3, 5, 10] {
                let b = fold_bounds(n, k);
                let mut covered = 0;
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "folds must be contiguous");
                }
                for &(s, e) in &b {
                    assert!(s <= e);
                    covered += e - s;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn bounds_sizes_differ_by_at_most_one() {
        let b = fold_bounds(11, 4);
        let sizes: Vec<usize> = b.iter().map(|&(s, e)| e - s).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 11);
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic]
    fn bounds_reject_zero_k() {
        fold_bounds(5, 0);
    }

    #[test]
    fn tight_distribution_is_stable() {
        // Concentrated durations: p99 threshold generalizes, held-out rate
        // stays near the nominal 1%.
        let durations: Vec<f64> = (0..5000).map(|i| 10.0 + (i % 100) as f64 * 0.01).collect();
        let out = validate_percentile_threshold(&durations, 10, 99.0).unwrap();
        assert!(!out.is_unstable(3.0), "rate={}", out.mean_heldout_rate);
    }

    #[test]
    fn consistent_heavy_tail_is_stable() {
        // A fat but *consistent* tail generalizes: each fold's p99 threshold
        // lands inside the tail and the held-out rate stays near nominal.
        let mut durations = Vec::new();
        for i in 0..1000u64 {
            let x = ((i * 2654435761) % 1000) as f64 / 1000.0;
            durations.push(if x > 0.9 {
                1e4 * (1.0 + x * 1e3)
            } else {
                10.0 + x
            });
        }
        let out = validate_percentile_threshold(&durations, 5, 99.0).unwrap();
        assert!(!out.is_unstable(3.0), "rate={}", out.mean_heldout_rate);
    }

    #[test]
    fn sparse_continuous_sample_is_flagged_unstable() {
        // With few, widely spread samples, a p99 threshold is essentially
        // the training max and held-out extremes routinely exceed it: the
        // signature cannot support percentile thresholding (paper §3.3.2).
        let durations: Vec<f64> = (0..25u64)
            .map(|i| ((i * 7919) % 10007) as f64 + ((i * 104729) % 97) as f64 / 100.0)
            .collect();
        let out = validate_percentile_threshold(&durations, 5, 99.0).unwrap();
        assert!(out.is_unstable(3.0), "rate={}", out.mean_heldout_rate);
    }

    #[test]
    fn too_few_samples_is_none() {
        assert!(validate_percentile_threshold(&[1.0], 5, 99.0).is_none());
        assert!(validate_percentile_threshold(&[], 5, 99.0).is_none());
    }

    proptest! {
        #[test]
        fn heldout_rate_is_a_probability(
            xs in proptest::collection::vec(0.0f64..1e6, 10..500),
            k in 2usize..10,
        ) {
            if let Some(out) = validate_percentile_threshold(&xs, k, 99.0) {
                prop_assert!((0.0..=1.0).contains(&out.mean_heldout_rate));
                prop_assert!(out.folds >= 2);
            }
        }
    }
}
