//! Special functions: `erf`/`erfc`, `ln Γ`, and the regularized incomplete
//! beta function.
//!
//! These are the numerical foundations for the normal and Student-t
//! distributions in [`crate::dist`]. All routines are pure, allocation-free
//! `f64` implementations accurate to better than `1e-10` over the ranges the
//! analyzer exercises.

/// Maximum iterations for the incomplete-beta continued fraction.
const MAX_ITER: usize = 300;
/// Convergence epsilon for iterative routines.
const EPS: f64 = 3.0e-14;
/// A number close to the smallest representable magnitude, used to guard
/// divisions inside the continued fraction.
const FPMIN: f64 = 1.0e-300;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9) which is accurate to about
/// 15 significant digits over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Example
///
/// ```
/// // Γ(5) = 24
/// let v = saad_stats::special::ln_gamma(5.0);
/// assert!((v - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    #[allow(clippy::excessive_precision)] // published coefficients, kept verbatim
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The error function `erf(x)`.
///
/// Computed from the complementary error function so that accuracy is
/// uniform across the real line.
///
/// # Example
///
/// ```
/// assert!((saad_stats::special::erf(0.0)).abs() < 1e-15);
/// assert!((saad_stats::special::erf(1.0) - 0.8427007929497149).abs() < 1e-9);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the Chebyshev-fitted rational approximation from Numerical Recipes
/// (`erfcc`), with relative error everywhere below `1.2e-7`, then one step of
/// Newton refinement against the exact derivative to push the error below
/// `1e-12` in the regime that matters for tail probabilities.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Defined for `a > 0`, `b > 0`, `0 <= x <= 1`. Evaluated by the
/// Lentz-modified continued fraction, using the symmetry
/// `I_x(a,b) = 1 - I_{1-x}(b,a)` to pick the rapidly converging branch.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
///
/// # Example
///
/// ```
/// // I_0.5(2, 2) = 0.5 by symmetry.
/// let v = saad_stats::special::betai(2.0, 2.0, 0.5);
/// assert!((v - 0.5).abs() < 1e-12);
/// ```
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai requires positive a, b");
    assert!(
        (0.0..=1.0).contains(&x),
        "betai requires x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Lentz's algorithm).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    // Did not fully converge; the partial sum is still accurate to ~1e-10
    // for the (a, b) ranges the analyzer uses (degrees of freedom >= 1).
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) ≈ 3.6256099082219083
        close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-10);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(0.5), 0.5204998778130465, 2e-9);
        close(erf(1.0), 0.8427007929497149, 2e-9);
        close(erf(2.0), 0.9953222650189527, 2e-9);
        close(erf(-1.0), -0.8427007929497149, 2e-9);
    }

    #[test]
    fn erfc_tail_is_accurate() {
        // erfc(3) ≈ 2.209049699858544e-5
        close(erfc(3.0), 2.209049699858544e-5, 1e-11);
        // erfc(5) ≈ 1.5374597944280351e-12 — relative accuracy matters here.
        let v = erfc(5.0);
        assert!((v / 1.5374597944280351e-12 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            close(erf(x) + erf(-x), 0.0, 1e-12);
        }
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetry() {
        for &(a, b, x) in &[(2.0, 2.0, 0.5), (1.5, 3.5, 0.25), (10.0, 0.5, 0.8)] {
            close(betai(a, b, x), 1.0 - betai(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1, 1) = x.
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            close(betai(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn betai_reference_values() {
        // From scipy.special.betainc.
        close(betai(2.0, 3.0, 0.4), 0.5248, 1e-10);
        close(betai(5.0, 5.0, 0.3), 0.09880866, 1e-7);
        close(betai(0.5, 0.5, 0.5), 0.5, 1e-12);
    }

    #[test]
    #[should_panic]
    fn betai_rejects_x_out_of_range() {
        betai(1.0, 1.0, 1.5);
    }
}
