//! Empirical quantiles and percentile ranks.
//!
//! SAAD's outlier model is built almost entirely out of percentiles: the
//! flow-outlier cutoff is a percentile *rank* over signature frequencies and
//! the performance-outlier threshold is the 99th percentile of per-signature
//! durations (paper §3.3.2).

/// Empirical percentile with linear interpolation between order statistics
/// (the "linear" / type-7 method used by R's default `quantile`).
///
/// `p` is in percent, `0.0..=100.0`. The input slice does **not** need to be
/// sorted; a sorted copy is made internally. Returns `None` on an empty
/// slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
///
/// # Example
///
/// ```
/// let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
/// assert_eq!(saad_stats::percentile(&xs, 50.0), Some(35.0));
/// assert_eq!(saad_stats::percentile(&xs, 100.0), Some(50.0));
/// ```
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile requires p in [0,100], got {p}"
    );
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Non-panicking variant of [`percentile`]: NaN values sort *below*
/// everything else instead of panicking, matching the detector's
/// `classify_batch` semantics (a NaN duration can never exceed a
/// threshold, so it counts as "below"). Model building routes through
/// this so a single corrupt duration cannot take down a release-path
/// retrain.
///
/// # Panics
///
/// Still panics if `p` is outside `[0, 100]` — that is a caller bug, not
/// a data-quality issue.
///
/// # Example
///
/// ```
/// let xs = [f64::NAN, 10.0, 20.0];
/// // NaN sorts first, so the max is still 20.
/// assert_eq!(saad_stats::quantile::percentile_nan_below(&xs, 100.0), Some(20.0));
/// assert!(saad_stats::quantile::percentile_nan_below(&xs, 0.0).unwrap().is_nan());
/// ```
pub fn percentile_nan_below(xs: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile requires p in [0,100], got {p}"
    );
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.partial_cmp(b).expect("both non-NaN"),
    });
    Some(percentile_of_sorted(&sorted, p))
}

/// Same as [`percentile`] but assumes `sorted` is already ascending, avoiding
/// the copy. Useful when many quantiles are read from the same data.
///
/// # Panics
///
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile_of_sorted requires data");
    assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Percentile rank of a value within a data set: the percentage of samples
/// that are `<= x`.
///
/// # Example
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(saad_stats::percentile_rank(&xs, 2.0), 50.0);
/// assert_eq!(saad_stats::percentile_rank(&xs, 0.5), 0.0);
/// assert_eq!(saad_stats::percentile_rank(&xs, 9.0), 100.0);
/// ```
pub fn percentile_rank(xs: &[f64], x: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let count = xs.iter().filter(|&&v| v <= x).count();
    100.0 * count as f64 / xs.len() as f64
}

/// Cumulative share curve over descending counts.
///
/// Given per-item counts (e.g. tasks per signature), returns for each item
/// (in descending-count order) the cumulative fraction of the total that the
/// top items account for. This is the curve plotted in the paper's Figure 6.
///
/// # Example
///
/// ```
/// // Three signatures covering 70%, 20%, 10% of tasks.
/// let curve = saad_stats::quantile::cumulative_share(&[20, 70, 10]);
/// assert_eq!(curve, vec![0.7, 0.9, 1.0]);
/// ```
pub fn cumulative_share(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut acc = 0u64;
    sorted
        .iter()
        .map(|&c| {
            acc += c;
            acc as f64 / total as f64
        })
        .collect()
}

/// Smallest number of top-ranked items whose counts cover at least
/// `fraction` (in `[0, 1]`) of the total. This is the "6 out of 29
/// signatures account for 95% of tasks" statistic from Figure 6.
///
/// # Example
///
/// ```
/// let n = saad_stats::quantile::items_covering(&[70, 20, 6, 3, 1], 0.95);
/// assert_eq!(n, 3); // 70+20+6 = 96%
/// ```
pub fn items_covering(counts: &[u64], fraction: f64) -> usize {
    let curve = cumulative_share(counts);
    curve
        .iter()
        .position(|&f| f >= fraction)
        .map(|i| i + 1)
        .unwrap_or(counts.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile(&xs, 50.0), Some(15.0));
        assert_eq!(percentile(&xs, 25.0), Some(12.5));
    }

    #[test]
    fn percentile_matches_r_type7() {
        // R: quantile(c(1,2,3,4,5,6,7,8,9,10), 0.99) = 9.91
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        let v = percentile(&xs, 99.0).unwrap();
        assert!((v - 9.91).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[42.0], 73.0), Some(42.0));
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn nan_below_matches_percentile_on_clean_data() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&xs, p), percentile_nan_below(&xs, p));
        }
    }

    #[test]
    fn nan_below_does_not_panic_and_keeps_upper_tail() {
        let xs = [f64::NAN, 5.0, f64::NAN, 1.0, 9.0];
        // NaNs occupy the two lowest ranks; the top of the range is intact.
        assert_eq!(percentile_nan_below(&xs, 100.0), Some(9.0));
        assert_eq!(percentile_nan_below(&xs, 50.0), Some(1.0));
        assert!(percentile_nan_below(&xs, 0.0).unwrap().is_nan());
    }

    #[test]
    fn nan_below_empty_is_none() {
        assert_eq!(percentile_nan_below(&[], 50.0), None);
    }

    #[test]
    fn rank_of_empty_is_zero() {
        assert_eq!(percentile_rank(&[], 3.0), 0.0);
    }

    #[test]
    fn cumulative_share_handles_zero_total() {
        assert_eq!(cumulative_share(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn items_covering_all_when_unreachable() {
        // fraction 1.0 needs every item when each contributes.
        assert_eq!(items_covering(&[1, 1, 1], 1.0), 3);
    }

    #[test]
    fn items_covering_empty() {
        assert_eq!(items_covering(&[], 0.95), 0);
    }

    proptest! {
        #[test]
        fn percentile_is_monotone_in_p(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&xs, lo).unwrap();
            let b = percentile(&xs, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn percentile_within_data_range(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            p in 0.0f64..100.0,
        ) {
            let v = percentile(&xs, p).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn cumulative_share_is_monotone_and_ends_at_one(
            counts in proptest::collection::vec(0u64..10_000, 1..50),
        ) {
            prop_assume!(counts.iter().sum::<u64>() > 0);
            let curve = cumulative_share(&counts);
            for w in curve.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12);
            }
            prop_assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
        }
    }
}
