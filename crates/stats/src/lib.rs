//! Statistics substrate for SAAD (Stage-Aware Anomaly Detection).
//!
//! The SAAD paper's statistical analyzer was written in R; this crate
//! re-implements, from scratch, exactly the machinery that analyzer needs:
//!
//! * descriptive statistics and streaming (Welford) moments
//!   ([`descriptive`]),
//! * empirical quantiles and percentile ranks ([`quantile`]),
//! * special functions — `erf`, `ln Γ`, the regularized incomplete beta —
//!   that underpin the distributions ([`special`]),
//! * the normal and Student-t distributions ([`dist`]),
//! * one-sided hypothesis tests on proportions and means used for flow and
//!   performance anomaly detection at significance level 0.001
//!   ([`hypothesis`]),
//! * k-fold cross-validation used to discard signatures whose duration
//!   distribution cannot support a percentile threshold ([`kfold`]),
//! * histograms, EWMA smoothing and reservoir sampling used by the
//!   experiment harness ([`histogram`], [`ewma`], [`reservoir`]),
//! * streaming primitives for the adaptive layer: a mergeable
//!   relative-error quantile sketch ([`sketch`]), exponentially decayed
//!   signature-frequency counting ([`decay`]), and Page-Hinkley change
//!   detection over window summaries ([`drift`]).
//!
//! # Example
//!
//! ```
//! use saad_stats::hypothesis::{one_sided_proportion_test, Alternative};
//!
//! // Training saw 1% outliers; a runtime window sees 40 outliers in
//! // 200 tasks. Is the proportion significantly greater?
//! let res = one_sided_proportion_test(40, 200, 0.01, Alternative::Greater);
//! assert!(res.p_value < 0.001);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decay;
pub mod descriptive;
pub mod dist;
pub mod drift;
pub mod ewma;
pub mod histogram;
pub mod hypothesis;
pub mod kfold;
pub mod quantile;
pub mod reservoir;
pub mod sketch;
pub mod special;

pub use decay::DecayedFrequency;
pub use descriptive::{OnlineStats, Summary};
pub use dist::{Normal, StudentT};
pub use drift::PageHinkley;
pub use hypothesis::{
    one_sided_proportion_test, two_proportion_test, welch_t_test, Alternative, TestResult,
};
pub use quantile::{percentile, percentile_nan_below, percentile_rank};
pub use sketch::QuantileSketch;
