//! Prometheus text exposition format (version 0.0.4): rendering and a
//! strict well-formedness checker.
//!
//! Rendering walks the registry under a read lock, evaluates callback
//! instruments, snapshots histograms, and emits `# HELP` / `# TYPE`
//! headers followed by samples. Histograms emit cumulative `le`
//! buckets for every *non-empty* native bucket plus `+Inf`, `_sum`,
//! and `_count` — the 1920-bucket native layout compresses to however
//! few buckets actually hold data.

use crate::registry::{Instrument, Registry};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Content-Type for scrape responses.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escape a HELP string: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double-quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a label set (plus an optional trailing `le`) as
/// `{k="v",...}`, or the empty string when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

impl Registry {
    /// Render every family in Prometheus text format.
    pub fn render(&self) -> String {
        let families = self.families.read();
        let mut out = String::with_capacity(4096);
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                match &series.instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            c.get()
                        );
                    }
                    Instrument::CounterFn(f) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            f()
                        );
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            g.get()
                        );
                    }
                    Instrument::GaugeFn(f) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            f()
                        );
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (upper, count) in snap.nonzero_buckets() {
                            cum += count;
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                family.name,
                                render_labels(&series.labels, Some(&upper.to_string())),
                                cum
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            family.name,
                            render_labels(&series.labels, Some("+Inf")),
                            cum
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            snap.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            cum
                        );
                    }
                }
            }
        }
        out
    }
}

/// A parsed sample line: metric name, label pairs, and value.
type Sample = (String, Vec<(String, String)>, f64);

/// Parse one sample line into `(name, labels, value)`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let err = |msg: &str| format!("{msg}: {line:?}");
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(i) => line.split_at(i),
        None => return Err(err("sample has no value")),
    };
    let name = name_part.to_string();
    if name.is_empty()
        || !name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let value_part = if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}').ok_or_else(|| err("unclosed label braces"))?;
        let (label_body, after) = body.split_at(close);
        let mut s = label_body;
        while !s.is_empty() {
            let eq = s.find('=').ok_or_else(|| err("label missing '='"))?;
            let key = &s[..eq];
            if key.is_empty()
                || !key
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                return Err(err("invalid label name"));
            }
            s = &s[eq + 1..];
            if !s.starts_with('"') {
                return Err(err("label value not quoted"));
            }
            s = &s[1..];
            let mut value = String::new();
            let mut chars = s.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, e)) => value.push(e),
                        None => return Err(err("dangling escape in label value")),
                    },
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    _ => value.push(c),
                }
            }
            let end = end.ok_or_else(|| err("unterminated label value"))?;
            labels.push((key.to_string(), value));
            s = &s[end + 1..];
            if let Some(next) = s.strip_prefix(',') {
                s = next;
            } else if !s.is_empty() {
                return Err(err("junk between labels"));
            }
        }
        &after[1..]
    } else {
        rest
    };
    let value_part = value_part.trim_start();
    // An optional timestamp may follow the value.
    let mut fields = value_part.split_whitespace();
    let value_str = fields.next().ok_or_else(|| err("sample has no value"))?;
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| err("unparseable timestamp"))?;
    }
    if fields.next().is_some() {
        return Err(err("trailing junk after timestamp"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| err("unparseable sample value"))?,
    };
    Ok((name, labels, value))
}

/// Check that `text` is well-formed Prometheus exposition text.
///
/// Verifies, line by line: `# HELP` / `# TYPE` comment syntax with
/// known types, each `TYPE` declared at most once and before its
/// samples, sample names/labels/values parse, every sample belongs to
/// a declared family (histogram samples may use the `_bucket` / `_sum`
/// / `_count` suffixes), and for each histogram series the `le`
/// buckets are cumulative and non-decreasing, end with `+Inf`, and the
/// `+Inf` count equals the series' `_count` sample.
pub fn validate_text(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut types: HashMap<String, String> = HashMap::new();
    // (family, series-labels-sans-le) → bucket values in order of appearance.
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let ctx = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| ctx("TYPE without a metric name".into()))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| ctx(format!("TYPE {name} without a type")))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(ctx(format!("unknown type {kind:?} for {name}")));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(ctx(format!("duplicate TYPE for {name}")));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                if rest.split_whitespace().next().is_none() {
                    return Err(ctx("HELP without a metric name".into()));
                }
            }
            // Other comments are allowed and ignored.
            continue;
        }
        let (name, labels, value) = parse_sample(line).map_err(&ctx)?;
        // Resolve the sample to a declared family.
        let family = if types.contains_key(&name) {
            name.clone()
        } else {
            let stripped = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| name.strip_suffix(suffix))
                .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"));
            match stripped {
                Some(base) => base.to_string(),
                None => return Err(ctx(format!("sample {name} has no preceding TYPE"))),
            }
        };
        if types.get(&family).map(String::as_str) == Some("histogram") {
            let series_key: String = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v};"))
                .collect();
            if name.ends_with("_bucket") && name.len() == family.len() + "_bucket".len() {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| ctx(format!("{name} bucket without le label")))?;
                let bound = match le {
                    "+Inf" => f64::INFINITY,
                    other => other
                        .parse::<f64>()
                        .map_err(|_| ctx(format!("unparseable le bound {other:?}")))?,
                };
                buckets
                    .entry((family.clone(), series_key))
                    .or_default()
                    .push((bound, value));
            } else if name.ends_with("_count") && name.len() == family.len() + "_count".len() {
                counts.insert((family.clone(), series_key), value);
            }
        }
    }
    for ((family, series), series_buckets) in &buckets {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = -1.0f64;
        for &(bound, cum) in series_buckets {
            if bound <= prev_bound {
                return Err(format!(
                    "histogram {family}{{{series}}}: le bounds not increasing at {bound}"
                ));
            }
            if cum < prev_cum {
                return Err(format!(
                    "histogram {family}{{{series}}}: bucket counts not cumulative at le={bound}"
                ));
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        let (last_bound, last_cum) = *series_buckets.last().expect("non-empty by construction");
        if last_bound != f64::INFINITY {
            return Err(format!(
                "histogram {family}{{{series}}}: missing +Inf bucket"
            ));
        }
        match counts.get(&(family.clone(), series.clone())) {
            Some(&count) if count == last_cum => {}
            Some(&count) => {
                return Err(format!(
                    "histogram {family}{{{series}}}: +Inf bucket {last_cum} != _count {count}"
                ));
            }
            None => {
                return Err(format!("histogram {family}{{{series}}}: missing _count"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn renders_counters_gauges_and_callbacks() {
        let r = Registry::new();
        let c = r.register_counter("req_total", "Requests", &[("host", "a\"b")]);
        c.add(3);
        let g = r.register_gauge("queue_depth", "Depth", &[]);
        g.set(-2);
        let backing = Arc::new(AtomicU64::new(17));
        let read = Arc::clone(&backing);
        r.register_counter_fn("drops_total", "Drops", &[("host", "1")], move || {
            read.load(Ordering::Relaxed)
        });
        let text = r.render();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{host=\"a\\\"b\"} 3"));
        assert!(text.contains("queue_depth -2"));
        assert!(text.contains("drops_total{host=\"1\"} 17"));
        validate_text(&text).unwrap();
    }

    #[test]
    fn renders_histogram_cumulatively() {
        let r = Registry::new();
        let h = r.register_histogram("lat_us", "Latency", &[("stage", "router")]);
        h.record(3);
        h.record(3);
        h.record(100);
        let text = r.render();
        assert!(text.contains("lat_us_bucket{stage=\"router\",le=\"3\"} 2"));
        assert!(text.contains("lat_us_bucket{stage=\"router\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_sum{stage=\"router\"} 106"));
        assert!(text.contains("lat_us_count{stage=\"router\"} 3"));
        validate_text(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_text() {
        for (bad, why) in [
            ("", "empty"),
            ("x_total 1", "no trailing newline"),
            ("x_total 1\n", "sample without TYPE"),
            ("# TYPE x_total counter\nx_total one\n", "bad value"),
            ("# TYPE x_total banana\nx_total 1\n", "unknown type"),
            (
                "# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
                "missing +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n",
                "+Inf != count",
            ),
            ("# TYPE x_total counter\nx_total{host=} 1\n", "label value"),
        ] {
            assert!(validate_text(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn validator_accepts_escapes_and_timestamps() {
        let text =
            "# HELP m a help \\n line\n# TYPE m gauge\nm{k=\"a\\\\b\\\"c\"} 1.5 1700000000\n";
        validate_text(text).unwrap();
    }
}
