//! Lock-free metric instruments: counter, gauge, and log-linear histogram.
//!
//! Every instrument is updated with a handful of relaxed atomic
//! operations and allocates nothing after construction, so hot paths
//! (the tracker emit path records one counter increment and one
//! histogram sample per task) stay within the paper's <1% overhead
//! budget.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// # Example
///
/// ```
/// use saad_obs::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
///
/// # Example
///
/// ```
/// use saad_obs::Gauge;
/// let g = Gauge::new();
/// g.set(7);
/// g.dec();
/// assert_eq!(g.get(), 6);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of two.
const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets within each octave.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Mask selecting the sub-bucket within an octave.
const SUB_MASK: u64 = SUB_BUCKETS - 1;
/// Total bucket count covering the full `u64` range: 32 exact buckets
/// for values `0..32`, then 32 sub-buckets for each of the 59 octaves
/// `[2^5, 2^64)`.
pub(crate) const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value — HdrHistogram-style log-linear layout.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let shift = exp - SUB_BITS;
        (((shift + 1) << SUB_BITS) as usize) + ((v >> shift) & SUB_MASK) as usize
    }
}

/// Smallest value that lands in bucket `i`.
#[cfg(test)]
fn bucket_lower(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        i as u64
    } else {
        let shift = (i >> SUB_BITS) as u32 - 1;
        let sub = (i as u64) & SUB_MASK;
        (SUB_BUCKETS + sub) << shift
    }
}

/// Largest value that lands in bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        i as u64
    } else {
        let shift = (i >> SUB_BITS) as u32 - 1;
        let sub = (i as u64) & SUB_MASK;
        let upper = (((SUB_BUCKETS + sub + 1) as u128) << shift) - 1;
        upper.min(u64::MAX as u128) as u64
    }
}

/// A fixed-bucket log-linear histogram covering the full `u64` range
/// with ≤ `1/32` (~3.1%) relative error per bucket.
///
/// The layout is HdrHistogram-style: values below 32 get exact unit
/// buckets; each power-of-two octave above that is split into 32 linear
/// sub-buckets, for 1920 buckets total. Recording is two relaxed
/// `fetch_add`s (bucket count + running sum) — no allocation, no locks,
/// no floating point — so the hot path stays in the single-digit
/// nanosecond range. Counts are aggregated only at scrape time.
///
/// # Example
///
/// ```
/// use saad_obs::Histogram;
/// let h = Histogram::new();
/// for v in [10, 100, 1_000, 10_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 4);
/// assert_eq!(snap.sum(), 11_110);
/// let p50 = snap.value_at_percentile(50.0);
/// assert!((100..=103).contains(&p50));
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Create an empty histogram (allocates its 1920 buckets once).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free: two relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Sum of all recorded samples (wraps on `u64` overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Total number of recorded samples. O(buckets) — scrape path only.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Consistent-enough point-in-time copy of the bucket array for
    /// rendering and percentile queries. Concurrent recorders may land
    /// between bucket loads; each sample is still counted exactly once
    /// or not at all.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets.
#[derive(Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all samples in the snapshot.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper bound of the bucket containing the sample at percentile
    /// `p` (0–100). The true sample is within ~3.1% below the returned
    /// value. Returns 0 for an empty histogram.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs in increasing
    /// bound order — the exposition layer turns these into cumulative
    /// `le` buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

impl fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("sum", &self.sum)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);

        let g = Gauge::new();
        g.set(-3);
        g.inc();
        g.add(10);
        g.dec();
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn exact_buckets_below_32() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_at_octave_edges() {
        // First value of the log-linear region abuts the exact region.
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        // Last unit-width bucket: [32, 64) still has width-1 buckets.
        assert_eq!(bucket_index(63), 63);
        // [64, 128) has width-2 buckets: 64 and 65 share one.
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(65), 64);
        assert_eq!(bucket_index(66), 65);
        // Extremes.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert!(lo <= hi, "bucket {i}: lower {lo} > upper {hi}");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(
                    bucket_lower(i + 1),
                    hi + 1,
                    "buckets {i} and {} must be contiguous",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_on_powers_of_two() {
        let mut prev = bucket_index(0);
        for exp in 0..64 {
            let v = 1u64 << exp;
            let i = bucket_index(v);
            assert!(i >= prev, "index must not decrease at 2^{exp}");
            prev = i;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Any recorded value v maps to a bucket whose upper bound is
        // within 1/32 of v (for v >= 32; exact below that).
        for &v in &[32u64, 100, 999, 4_096, 123_456, 987_654_321, 1 << 50] {
            let hi = bucket_upper(bucket_index(v));
            assert!(hi >= v);
            let err = (hi - v) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "value {v}: error {err}");
        }
    }

    #[test]
    fn percentile_round_trips() {
        let h = Histogram::new();
        // 1..=1000 microseconds, one sample each.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), 500_500);
        for &(p, expect) in &[(1.0, 10u64), (50.0, 500), (99.0, 990), (100.0, 1000)] {
            let got = snap.value_at_percentile(p);
            // The answer is the bucket upper bound: >= the true value,
            // within the 1/32 relative-error budget.
            assert!(got >= expect, "p{p}: got {got} < {expect}");
            assert!(
                (got - expect) as f64 <= expect as f64 / 32.0 + 1.0,
                "p{p}: got {got}, expected ~{expect}"
            );
        }
        // p0 clamps to the first sample's bucket.
        assert_eq!(snap.value_at_percentile(0.0), 1);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().snapshot().value_at_percentile(99.0), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 80_000);
        let expect: u64 = (0..80_000u64).sum();
        assert_eq!(snap.sum(), expect);
    }
}
