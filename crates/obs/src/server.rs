//! The exposition server: a tiny HTTP/1.0 endpoint on `std::net`
//! threads, matching the no-async style of `saad-net`.
//!
//! Scrapes are rare (seconds apart) and cheap (one render under a read
//! lock), so a single serial accept loop is plenty; shutdown uses the
//! same flag-plus-self-connect idiom as the `saad-net` collector.

use crate::expo::CONTENT_TYPE;
use crate::metric::Counter;
use crate::registry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hook invoked around every scrape — the bridge that lets the
/// meta-monitor run each scrape as a tracked pipeline stage.
pub trait ScrapeObserver: Send + Sync {
    /// A scrape request was accepted and rendering is about to start.
    fn scrape_started(&self) {}
    /// The response was written; `bytes` is the body length.
    fn scrape_finished(&self, bytes: usize) {
        let _ = bytes;
    }
}

/// A Prometheus scrape endpoint serving one [`Registry`].
///
/// Binds a listener and spawns one accept thread; `GET /metrics` (or
/// `/`) returns the rendered registry as `text/plain; version=0.0.4`.
/// Dropping the server shuts it down; [`MetricsServer::shutdown`] does
/// so explicitly.
#[derive(Debug)]
pub struct MetricsServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    scrapes: Arc<Counter>,
    join: Option<JoinHandle<()>>,
}

/// How long a connected scraper may dawdle sending its request.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Longest request head we will buffer before answering 400.
const MAX_REQUEST: usize = 4096;

impl MetricsServer {
    /// Bind `addr` and start serving `registry`.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> io::Result<MetricsServer> {
        MetricsServer::bind_with_observer(addr, registry, None)
    }

    /// Bind `addr` and start serving `registry`, invoking `observer`
    /// around every scrape.
    pub fn bind_with_observer(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        observer: Option<Arc<dyn ScrapeObserver>>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(Counter::new());
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_scrapes = Arc::clone(&scrapes);
        let join = std::thread::Builder::new()
            .name("saad-metrics-server".into())
            .spawn(move || {
                accept_loop(
                    listener,
                    registry,
                    observer,
                    accept_shutdown,
                    accept_scrapes,
                )
            })?;
        Ok(MetricsServer {
            local_addr,
            shutdown,
            scrapes,
            join: Some(join),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of scrape responses served so far.
    ///
    /// Read-your-writes: the count is incremented before the response
    /// bytes are written, so a client that has finished reading its
    /// body always observes its own scrape in this counter.
    pub fn scrapes_served(&self) -> u64 {
        self.scrapes.get()
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept call.
            let _ = TcpStream::connect(self.local_addr);
            let _ = join.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    observer: Option<Arc<dyn ScrapeObserver>>,
    shutdown: Arc<AtomicBool>,
    scrapes: Arc<Counter>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_one(stream, &registry, observer.as_deref(), &scrapes);
    }
}

/// Read one request head, answer it, and close the connection.
fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    observer: Option<&dyn ScrapeObserver>,
    scrapes: &Counter,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST {
            return respond(&mut stream, "400 Bad Request", "request too large\n", false);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let request_line = head
        .split(|&b| b == b'\r')
        .next()
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "only GET is supported\n",
            false,
        );
    }
    let path = path.split('?').next().unwrap_or("");
    if path != "/metrics" && path != "/" {
        return respond(&mut stream, "404 Not Found", "try /metrics\n", false);
    }
    if let Some(obs) = observer {
        obs.scrape_started();
    }
    let body = registry.render();
    // Count before the response goes out: once a client has read its
    // body, its scrape must already be visible in `scrapes_served`.
    scrapes.inc();
    let result = respond(&mut stream, "200 OK", &body, true);
    if let Some(obs) = observer {
        obs.scrape_finished(body.len());
    }
    result
}

fn respond(stream: &mut TcpStream, status: &str, body: &str, metrics: bool) -> io::Result<()> {
    let content_type = if metrics { CONTENT_TYPE } else { "text/plain" };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    if !metrics {
        return Err(io::Error::other(format!("answered {status}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_text;
    use std::sync::atomic::AtomicUsize;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_over_tcp() {
        let registry = Arc::new(Registry::new());
        let c = registry.register_counter("smoke_total", "Smoke", &[]);
        c.add(5);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let response = scrape(
            server.local_addr(),
            "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n",
        );
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("smoke_total 5"));
        validate_text(body).unwrap();
        // Root path works too (curl default).
        let response = scrape(server.local_addr(), "GET / HTTP/1.0\r\n\r\n");
        assert!(response.contains("smoke_total 5"));
        assert_eq!(server.scrapes_served(), 2);
        server.shutdown();
    }

    #[test]
    fn rejects_bad_requests() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::bind("127.0.0.1:0", registry).unwrap();
        let response = scrape(server.local_addr(), "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 405"));
        let response = scrape(server.local_addr(), "GET /nope HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 404"));
        assert_eq!(server.scrapes_served(), 0);
        server.shutdown();
    }

    #[test]
    fn observer_sees_every_scrape() {
        struct CountingObserver {
            started: AtomicUsize,
            bytes: AtomicUsize,
        }
        impl ScrapeObserver for CountingObserver {
            fn scrape_started(&self) {
                self.started.fetch_add(1, Ordering::SeqCst);
            }
            fn scrape_finished(&self, bytes: usize) {
                self.bytes.fetch_add(bytes, Ordering::SeqCst);
            }
        }
        let registry = Arc::new(Registry::new());
        registry.register_counter("x_total", "", &[]);
        let observer = Arc::new(CountingObserver {
            started: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        });
        let dyn_observer: Arc<dyn ScrapeObserver> = observer.clone();
        let server =
            MetricsServer::bind_with_observer("127.0.0.1:0", registry, Some(dyn_observer)).unwrap();
        scrape(server.local_addr(), "GET /metrics HTTP/1.0\r\n\r\n");
        scrape(server.local_addr(), "GET /metrics HTTP/1.0\r\n\r\n");
        server.shutdown();
        assert_eq!(observer.started.load(Ordering::SeqCst), 2);
        assert!(observer.bytes.load(Ordering::SeqCst) > 0);
    }
}
