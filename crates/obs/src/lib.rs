//! Self-observability for SAAD: metrics primitives and Prometheus exposition.
//!
//! SAAD's whole point is low-overhead visibility into a staged server, so
//! its own pipeline must be observable at the same standard. This crate
//! provides the three classic instruments — [`Counter`], [`Gauge`], and a
//! fixed-bucket log-linear [`Histogram`] — all lock-free on the record
//! path (a handful of relaxed atomic ops, no allocation after
//! registration), a [`Registry`] that names and labels them, and a
//! [`MetricsServer`] that serves the registry in Prometheus text format
//! (version 0.0.4) over plain `std::net` threads, matching the no-async
//! style of `saad-net`.
//!
//! The registry supports two kinds of series:
//!
//! * **owned instruments** created by `register_*` (or attached with
//!   [`Registry::attach_histogram`]) that hot paths update directly, and
//! * **callback instruments** ([`Registry::register_counter_fn`],
//!   [`Registry::register_gauge_fn`]) evaluated only at scrape time —
//!   the mechanism by which existing pipeline atomics (drop counters,
//!   queue depths, watermarks) become metrics with zero added cost on
//!   the paths that maintain them.
//!
//! ```
//! use saad_obs::{Registry, Histogram};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let emitted = registry.register_counter(
//!     "saad_tracker_synopses_emitted_total",
//!     "Task synopses emitted by the tracker",
//!     &[("host", "1")],
//! );
//! let latency = registry.register_histogram(
//!     "saad_checkpoint_write_latency_us",
//!     "Checkpoint write latency in microseconds",
//!     &[],
//! );
//! emitted.inc();
//! latency.record(850);
//! let text = registry.render();
//! assert!(text.contains("saad_tracker_synopses_emitted_total{host=\"1\"} 1"));
//! saad_obs::validate_text(&text).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expo;
pub mod metric;
pub mod registry;
pub mod server;

pub use expo::validate_text;
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use server::{MetricsServer, ScrapeObserver};
