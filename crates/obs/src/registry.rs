//! The metrics registry: names, labels, and series bookkeeping.
//!
//! A [`Registry`] owns a set of metric *families* (one name + help +
//! type), each holding one or more *series* (a label set bound to an
//! instrument). Registration takes a write lock and allocates; after
//! that, hot paths touch only the returned `Arc`'d instrument —
//! scraping walks the registry under a read lock without disturbing
//! recorders.

use crate::metric::{Counter, Gauge, Histogram};
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// What a series measures — fixed per family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
}

impl Kind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// The value source behind one series.
pub(crate) enum Instrument {
    /// Owned counter updated by the instrumented code.
    Counter(Arc<Counter>),
    /// Owned gauge updated by the instrumented code.
    Gauge(Arc<Gauge>),
    /// Owned (or attached) histogram updated by the instrumented code.
    Histogram(Arc<Histogram>),
    /// Counter evaluated at scrape time from an existing atomic.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Gauge evaluated at scrape time from an existing atomic.
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

impl Instrument {
    fn kind(&self) -> Kind {
        match self {
            Instrument::Counter(_) | Instrument::CounterFn(_) => Kind::Counter,
            Instrument::Gauge(_) | Instrument::GaugeFn(_) => Kind::Gauge,
            Instrument::Histogram(_) => Kind::Histogram,
        }
    }
}

/// One label set bound to one instrument.
pub(crate) struct Series {
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) instrument: Instrument,
}

/// One metric name with its help text, type, and series.
pub(crate) struct Family {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) kind: Kind,
    pub(crate) series: Vec<Series>,
}

/// A named collection of metric families.
///
/// All `register_*` methods panic on malformed names/labels, on
/// re-registering a name with a different type, and on duplicate
/// `(name, labels)` series — these are programmer errors caught at
/// startup, not runtime conditions.
#[derive(Default)]
pub struct Registry {
    pub(crate) families: RwLock<Vec<Family>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let families = self.families.read();
        f.debug_struct("Registry")
            .field("families", &families.len())
            .field(
                "series",
                &families.iter().map(|fam| fam.series.len()).sum::<usize>(),
            )
            .finish()
    }
}

/// `true` if `name` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` if `name` is a valid Prometheus label name:
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register an owned counter series and return its handle.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.insert(name, help, labels, Instrument::Counter(Arc::clone(&c)));
        c
    }

    /// Register an owned gauge series and return its handle.
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.insert(name, help, labels, Instrument::Gauge(Arc::clone(&g)));
        g
    }

    /// Register an owned histogram series and return its handle.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.insert(name, help, labels, Instrument::Histogram(Arc::clone(&h)));
        h
    }

    /// Attach a histogram created elsewhere (e.g. one already being fed
    /// by a pipeline thread) as a series under `name`.
    pub fn attach_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) {
        self.insert(name, help, labels, Instrument::Histogram(histogram));
    }

    /// Register a counter series whose value is computed at scrape time
    /// — the zero-hot-path-cost bridge from existing pipeline atomics.
    pub fn register_counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert(name, help, labels, Instrument::CounterFn(Box::new(f)));
    }

    /// Register a gauge series whose value is computed at scrape time.
    pub fn register_gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.insert(name, help, labels, Instrument::GaugeFn(Box::new(f)));
    }

    fn insert(&self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
            assert!(
                *k != "le",
                "label name \"le\" on {name} is reserved for histogram buckets"
            );
        }
        let kind = instrument.kind();
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.write();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                family.kind,
                kind,
                "metric {name} re-registered as {} (was {})",
                kind.as_str(),
                family.kind.as_str()
            );
            assert!(
                !family.series.iter().any(|s| s.labels == labels),
                "duplicate series {name}{labels:?}"
            );
            family.series.push(Series { labels, instrument });
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: vec![Series { labels, instrument }],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        assert!(valid_metric_name("saad_tracker_synopses_emitted_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has space"));
        assert!(valid_label_name("host"));
        assert!(!valid_label_name("le:gacy"));
    }

    #[test]
    #[should_panic(expected = "duplicate series")]
    fn duplicate_series_panics() {
        let r = Registry::new();
        r.register_counter("dup_total", "", &[("host", "1")]);
        r.register_counter("dup_total", "", &[("host", "1")]);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn type_conflict_panics() {
        let r = Registry::new();
        r.register_counter("conflicted", "", &[]);
        r.register_gauge("conflicted", "", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_panics() {
        let r = Registry::new();
        r.register_counter("c_total", "", &[("le", "1")]);
    }

    #[test]
    fn same_name_different_labels_ok() {
        let r = Registry::new();
        let a = r.register_counter("multi_total", "help", &[("host", "1")]);
        let b = r.register_counter("multi_total", "help", &[("host", "2")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 2);
    }
}
