//! The SAAD wire protocol: a tiny versioned handshake followed by
//! length-prefixed transport frames.
//!
//! A connection starts with a fixed-size `Hello` from the peer declaring
//! its protocol version, [`HostId`], and resume position (next frame
//! sequence number plus cumulative sent/written synopsis counts). The
//! collector answers with a fixed-size `HelloAck` that either accepts the
//! connection — echoing what it already holds for that host — or rejects
//! it with a typed reason. After an accepting ack, the stream is a
//! sequence of `u32` big-endian length prefixes, each followed by one
//! frame exactly as produced by
//! [`FrameSender::encode_frame`](saad_core::transport::FrameSender::encode_frame).
//!
//! # Version 2: the federation extension
//!
//! Protocol v2 appends a separately-checksummed **extension block** to
//! both handshake messages: the `Hello` gains the control-plane ring
//! epoch the peer routed by and its [`PeerRole`] (agent or leaf
//! collector); the `HelloAck` gains the collector's current epoch. The
//! v1 prefix of a v2 message is byte-identical to a real v1 message —
//! including its own CRC — so a v2 collector decodes the 36-byte prefix
//! first, learns the announced version, and only then reads the
//! extension. A v1 agent therefore still receives a well-formed 28-byte
//! v1 reject it can decode, and terminates cleanly on version skew
//! instead of deadlocking on bytes that never come.
//!
//! Everything is checksummed with the same CRC-32 the frame format uses,
//! so a flipped bit anywhere — handshake or payload — is detected, never
//! silently admitted.

use saad_core::transport::{crc32, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
use saad_core::HostId;
use std::fmt;
use std::io::{self, Read, Write};

/// Current wire protocol version. A collector rejects peers announcing a
/// different version rather than guessing at frame semantics.
pub const PROTOCOL_VERSION: u16 = 2;

/// Magic prefix of a peer `Hello`.
pub const HELLO_MAGIC: [u8; 4] = *b"SAAD";

/// Magic prefix of a collector `HelloAck`.
pub const ACK_MAGIC: [u8; 4] = *b"SADA";

/// Encoded size of a protocol-v1 [`Hello`] — also the prefix length of a
/// v2 hello, which is what a collector reads before it knows the version.
pub const HELLO_V1_LEN: usize = 36;

/// Encoded size of the v2 hello extension block: epoch (8) + role (1) +
/// pad (1) + CRC-32 (4).
pub const HELLO_EXT_LEN: usize = 14;

/// Encoded size of a current-version [`Hello`] in bytes.
pub const HELLO_LEN: usize = HELLO_V1_LEN + HELLO_EXT_LEN;

/// Encoded size of a protocol-v1 [`HelloAck`].
pub const HELLO_ACK_V1_LEN: usize = 28;

/// Encoded size of the v2 ack extension block: epoch (8) + CRC-32 (4).
pub const HELLO_ACK_EXT_LEN: usize = 12;

/// Encoded size of a current-version [`HelloAck`] in bytes.
pub const HELLO_ACK_LEN: usize = HELLO_ACK_V1_LEN + HELLO_ACK_EXT_LEN;

/// Largest length-prefixed message body the collector will read: one full
/// transport frame (header + maximum payload). A prefix above this bound
/// means the stream is corrupt or hostile; the connection is dropped.
pub const MAX_MESSAGE_LEN: usize = FRAME_HEADER_LEN + MAX_FRAME_PAYLOAD;

/// `last_seq` value in a [`HelloAck`] meaning "never heard from this
/// host".
pub const NO_SEQ: u64 = u64::MAX;

/// [`Hello::epoch`] value meaning "not ring-routed": the peer connected
/// to a pinned address rather than resolving through a control plane, so
/// no epoch staleness check applies. Also what a v1 hello decodes to.
pub const PINNED_EPOCH: u64 = u64::MAX;

/// What kind of peer is opening the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PeerRole {
    /// A tracker-side agent streaming one host's synopses.
    Agent = 0,
    /// A leaf collector forwarding re-framed digests for many hosts.
    Leaf = 1,
}

impl PeerRole {
    fn from_u8(v: u8) -> PeerRole {
        match v {
            1 => PeerRole::Leaf,
            _ => PeerRole::Agent,
        }
    }
}

/// Peer-side opening message: who is connecting and where its frame
/// stream resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the peer speaks.
    pub version: u16,
    /// Host this peer frames synopses for (an agent's tracked host, or a
    /// leaf collector's own identity).
    pub host: HostId,
    /// Sequence number the next encoded frame will carry. Zero means a
    /// fresh sender with no history to resume.
    pub next_seq: u64,
    /// Cumulative synopses the peer has framed so far.
    pub sent_cum: u64,
    /// Cumulative synopses in frames fully written to a live socket. The
    /// difference `sent_cum − written_cum` is loss the peer already knows
    /// about and is reporting rather than retransmitting.
    pub written_cum: u64,
    /// Control-plane ring epoch the peer routed by ([`PINNED_EPOCH`] when
    /// it did not route through a ring; v2 only — v1 decodes to
    /// [`PINNED_EPOCH`]).
    pub epoch: u64,
    /// What kind of peer this is (v2 only — v1 decodes to
    /// [`PeerRole::Agent`]).
    pub role: PeerRole,
}

/// Why a collector refused a [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// Not rejected.
    None = 0,
    /// Peer and collector disagree on [`PROTOCOL_VERSION`].
    VersionMismatch = 1,
    /// The `Hello` failed its magic or checksum.
    Malformed = 2,
    /// The peer routed by a ring epoch older than the collector's — its
    /// assignment may be obsolete. Non-terminal: refetch the ring and
    /// reconnect where it now points.
    StaleEpoch = 3,
}

impl RejectReason {
    fn from_u8(v: u8) -> RejectReason {
        match v {
            1 => RejectReason::VersionMismatch,
            2 => RejectReason::Malformed,
            3 => RejectReason::StaleEpoch,
            _ => RejectReason::None,
        }
    }
}

/// Collector-side handshake reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// Protocol version the collector speaks.
    pub version: u16,
    /// Whether the connection may proceed to frame streaming.
    pub accept: bool,
    /// Reason when `accept` is false.
    pub reason: RejectReason,
    /// Highest frame sequence number the collector has seen from this
    /// host, or [`NO_SEQ`] if it has none.
    pub last_seq: u64,
    /// Synopses the collector has delivered for this host so far.
    pub delivered_cum: u64,
    /// The collector's current control-plane ring epoch (0 when it
    /// enforces none; v2 only — v1 decodes to 0). On a
    /// [`RejectReason::StaleEpoch`] reject this is the epoch the peer
    /// must catch up to.
    pub epoch: u64,
}

/// A handshake message that could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// First four bytes were not the expected magic.
    BadMagic([u8; 4]),
    /// Stored and computed CRC-32 disagree.
    ChecksumMismatch {
        /// Checksum carried by the message.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// Buffer length matches no known encoding of the message.
    BadLength(usize),
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::BadMagic(m) => write!(f, "bad handshake magic {m:?}"),
            HandshakeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "handshake checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            HandshakeError::BadLength(n) => write!(f, "handshake message of impossible length {n}"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Encode a [`Hello`] into its wire form: 36 bytes for `version <= 1`,
/// 36 + 14 for v2 and later (the v1 prefix stays byte-identical to a
/// real v1 hello, CRC included).
pub fn encode_hello(hello: &Hello) -> Vec<u8> {
    let mut buf = vec![0u8; HELLO_V1_LEN];
    buf[0..4].copy_from_slice(&HELLO_MAGIC);
    buf[4..6].copy_from_slice(&hello.version.to_be_bytes());
    buf[6..8].copy_from_slice(&hello.host.0.to_be_bytes());
    buf[8..16].copy_from_slice(&hello.next_seq.to_be_bytes());
    buf[16..24].copy_from_slice(&hello.sent_cum.to_be_bytes());
    buf[24..32].copy_from_slice(&hello.written_cum.to_be_bytes());
    let crc = crc32(&[&buf[..32]]);
    buf[32..36].copy_from_slice(&crc.to_be_bytes());
    if hello.version >= 2 {
        buf.extend_from_slice(&hello.epoch.to_be_bytes());
        buf.push(hello.role as u8);
        buf.push(0); // pad
        let ext_crc = crc32(&[&buf[..HELLO_V1_LEN + 10]]);
        buf.extend_from_slice(&ext_crc.to_be_bytes());
        debug_assert_eq!(buf.len(), HELLO_LEN);
    }
    buf
}

/// Decode the fixed 36-byte prefix every hello shares. For a v1 hello
/// this is the complete message; for v2 the caller must follow up with
/// [`apply_hello_ext`] (the returned hello announces its `version`, and
/// [`hello_ext_len`] says how many more bytes to read).
///
/// # Errors
///
/// Returns [`HandshakeError`] when the magic or prefix checksum is wrong.
/// Version agreement is the caller's policy decision, not a decode error.
pub fn decode_hello_prefix(buf: &[u8; HELLO_V1_LEN]) -> Result<Hello, HandshakeError> {
    if buf[0..4] != HELLO_MAGIC {
        return Err(HandshakeError::BadMagic(buf[0..4].try_into().expect("4")));
    }
    let stored = u32::from_be_bytes(buf[32..36].try_into().expect("4"));
    let computed = crc32(&[&buf[..32]]);
    if stored != computed {
        return Err(HandshakeError::ChecksumMismatch { stored, computed });
    }
    Ok(Hello {
        version: u16::from_be_bytes(buf[4..6].try_into().expect("2")),
        host: HostId(u16::from_be_bytes(buf[6..8].try_into().expect("2"))),
        next_seq: u64::from_be_bytes(buf[8..16].try_into().expect("8")),
        sent_cum: u64::from_be_bytes(buf[16..24].try_into().expect("8")),
        written_cum: u64::from_be_bytes(buf[24..32].try_into().expect("8")),
        epoch: PINNED_EPOCH,
        role: PeerRole::Agent,
    })
}

/// Extension bytes that follow the 36-byte prefix for `version` (0 for
/// v1, [`HELLO_EXT_LEN`] for v2 and later).
pub fn hello_ext_len(version: u16) -> usize {
    if version >= 2 {
        HELLO_EXT_LEN
    } else {
        0
    }
}

/// Fill a prefix-decoded [`Hello`] from its v2 extension block. The
/// extension CRC covers the whole message up to itself (prefix included),
/// so corruption anywhere is caught even though the prefix validated on
/// its own.
///
/// # Errors
///
/// Returns [`HandshakeError::ChecksumMismatch`] when the extension CRC
/// disagrees.
pub fn apply_hello_ext(
    hello: &mut Hello,
    prefix: &[u8; HELLO_V1_LEN],
    ext: &[u8; HELLO_EXT_LEN],
) -> Result<(), HandshakeError> {
    let stored = u32::from_be_bytes(ext[10..14].try_into().expect("4"));
    let computed = crc32(&[prefix, &ext[..10]]);
    if stored != computed {
        return Err(HandshakeError::ChecksumMismatch { stored, computed });
    }
    hello.epoch = u64::from_be_bytes(ext[0..8].try_into().expect("8"));
    hello.role = PeerRole::from_u8(ext[8]);
    Ok(())
}

/// Decode a complete [`Hello`] from a buffer holding either encoding (36
/// or 50 bytes).
///
/// # Errors
///
/// Returns [`HandshakeError`] on bad magic, checksum, or a length that
/// disagrees with the announced version.
pub fn decode_hello(buf: &[u8]) -> Result<Hello, HandshakeError> {
    let prefix: &[u8; HELLO_V1_LEN] = buf
        .get(..HELLO_V1_LEN)
        .and_then(|b| b.try_into().ok())
        .ok_or(HandshakeError::BadLength(buf.len()))?;
    let mut hello = decode_hello_prefix(prefix)?;
    let ext_len = hello_ext_len(hello.version);
    if buf.len() != HELLO_V1_LEN + ext_len {
        return Err(HandshakeError::BadLength(buf.len()));
    }
    if ext_len > 0 {
        let ext: &[u8; HELLO_EXT_LEN] = buf[HELLO_V1_LEN..].try_into().expect("ext length checked");
        apply_hello_ext(&mut hello, prefix, ext)?;
    }
    Ok(hello)
}

/// Encode a [`HelloAck`] in the wire form `wire_version` implies: the
/// 28-byte v1 form for `wire_version <= 1`, 28 + 12 for v2 and later.
///
/// `wire_version` is the **peer's announced version**, not the
/// collector's: the reply must be in a form the peer can read, which is
/// what makes a version-mismatch reject decodable by the very agent being
/// rejected.
pub fn encode_hello_ack(ack: &HelloAck, wire_version: u16) -> Vec<u8> {
    let mut buf = vec![0u8; HELLO_ACK_V1_LEN];
    buf[0..4].copy_from_slice(&ACK_MAGIC);
    buf[4..6].copy_from_slice(&ack.version.to_be_bytes());
    buf[6] = ack.accept as u8;
    buf[7] = ack.reason as u8;
    buf[8..16].copy_from_slice(&ack.last_seq.to_be_bytes());
    buf[16..24].copy_from_slice(&ack.delivered_cum.to_be_bytes());
    let crc = crc32(&[&buf[..24]]);
    buf[24..28].copy_from_slice(&crc.to_be_bytes());
    if wire_version >= 2 {
        buf.extend_from_slice(&ack.epoch.to_be_bytes());
        let ext_crc = crc32(&[&buf[..HELLO_ACK_V1_LEN + 8]]);
        buf.extend_from_slice(&ext_crc.to_be_bytes());
        debug_assert_eq!(buf.len(), HELLO_ACK_LEN);
    }
    buf
}

/// Decode a [`HelloAck`] from a buffer holding either encoding (28 or 40
/// bytes — the reader knows which to expect from the version it announced
/// in its own hello).
///
/// # Errors
///
/// Returns [`HandshakeError`] when the magic, either checksum, or the
/// buffer length is wrong.
pub fn decode_hello_ack(buf: &[u8]) -> Result<HelloAck, HandshakeError> {
    if buf.len() != HELLO_ACK_V1_LEN && buf.len() != HELLO_ACK_LEN {
        return Err(HandshakeError::BadLength(buf.len()));
    }
    if buf[0..4] != ACK_MAGIC {
        return Err(HandshakeError::BadMagic(buf[0..4].try_into().expect("4")));
    }
    let stored = u32::from_be_bytes(buf[24..28].try_into().expect("4"));
    let computed = crc32(&[&buf[..24]]);
    if stored != computed {
        return Err(HandshakeError::ChecksumMismatch { stored, computed });
    }
    let mut epoch = 0u64;
    if buf.len() == HELLO_ACK_LEN {
        let stored = u32::from_be_bytes(buf[36..40].try_into().expect("4"));
        let computed = crc32(&[&buf[..36]]);
        if stored != computed {
            return Err(HandshakeError::ChecksumMismatch { stored, computed });
        }
        epoch = u64::from_be_bytes(buf[28..36].try_into().expect("8"));
    }
    Ok(HelloAck {
        version: u16::from_be_bytes(buf[4..6].try_into().expect("2")),
        accept: buf[6] != 0,
        reason: RejectReason::from_u8(buf[7]),
        last_seq: u64::from_be_bytes(buf[8..16].try_into().expect("8")),
        delivered_cum: u64::from_be_bytes(buf[16..24].try_into().expect("8")),
        epoch,
    })
}

/// Write one length-prefixed message: `u32` big-endian body length, then
/// the body.
///
/// # Errors
///
/// Propagates the underlying I/O error; a partial write leaves the stream
/// desynchronized, so callers must treat any error as fatal for the
/// connection.
pub fn write_message<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_MESSAGE_LEN);
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)
}

/// Read exactly `buf.len()` bytes, retrying reads that hit a socket
/// read-timeout (`WouldBlock` / `TimedOut`) while `keep_going()` stays
/// true — the idiom a shutdown-aware connection handler needs, since a
/// plain `read_exact` would either block forever or lose already-consumed
/// bytes on timeout.
///
/// Returns `Ok(false)` on a clean EOF **before any byte was read** (the
/// peer closed at a message boundary).
///
/// # Errors
///
/// Mid-message EOF surfaces as [`io::ErrorKind::UnexpectedEof`]; a
/// `keep_going()` veto surfaces as [`io::ErrorKind::Interrupted`]; other
/// I/O errors propagate unchanged.
pub fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    keep_going: impl Fn() -> bool,
) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-message",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !keep_going() {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "shutdown"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2_hello() -> Hello {
        Hello {
            version: PROTOCOL_VERSION,
            host: HostId(42),
            next_seq: 1_000_000_007,
            sent_cum: 77_777,
            written_cum: 70_001,
            epoch: 9,
            role: PeerRole::Leaf,
        }
    }

    #[test]
    fn hello_round_trips() {
        let hello = v2_hello();
        let wire = encode_hello(&hello);
        assert_eq!(wire.len(), HELLO_LEN);
        assert_eq!(decode_hello(&wire).unwrap(), hello);
    }

    #[test]
    fn v1_hello_round_trips_with_default_extension_fields() {
        let hello = Hello {
            version: 1,
            epoch: PINNED_EPOCH,
            role: PeerRole::Agent,
            ..v2_hello()
        };
        let wire = encode_hello(&hello);
        assert_eq!(wire.len(), HELLO_V1_LEN);
        assert_eq!(decode_hello(&wire).unwrap(), hello);
    }

    #[test]
    fn v2_hello_prefix_is_a_valid_v1_hello() {
        // The property the back-compat path rests on: a v1-only reader
        // consuming the first 36 bytes of a v2 hello sees a well-formed
        // message announcing version 2.
        let wire = encode_hello(&v2_hello());
        let prefix: [u8; HELLO_V1_LEN] = wire[..HELLO_V1_LEN].try_into().unwrap();
        let seen = decode_hello_prefix(&prefix).unwrap();
        assert_eq!(seen.version, PROTOCOL_VERSION);
        assert_eq!(seen.host, HostId(42));
        assert_eq!(seen.epoch, PINNED_EPOCH, "prefix carries no epoch");
        // The streaming path: prefix first, then the extension.
        let mut hello = seen;
        let ext: [u8; HELLO_EXT_LEN] = wire[HELLO_V1_LEN..].try_into().unwrap();
        apply_hello_ext(&mut hello, &prefix, &ext).unwrap();
        assert_eq!(hello, v2_hello());
    }

    #[test]
    fn hello_ack_round_trips_in_both_forms() {
        let ack = HelloAck {
            version: PROTOCOL_VERSION,
            accept: false,
            reason: RejectReason::StaleEpoch,
            last_seq: NO_SEQ,
            delivered_cum: 123,
            epoch: 17,
        };
        let v2 = encode_hello_ack(&ack, 2);
        assert_eq!(v2.len(), HELLO_ACK_LEN);
        assert_eq!(decode_hello_ack(&v2).unwrap(), ack);
        // The v1 form drops the epoch but keeps everything else — what a
        // v1 agent sees when a v2 collector rejects it.
        let v1 = encode_hello_ack(&ack, 1);
        assert_eq!(v1.len(), HELLO_ACK_V1_LEN);
        let seen = decode_hello_ack(&v1).unwrap();
        assert_eq!(seen, HelloAck { epoch: 0, ..ack });
    }

    #[test]
    fn flipped_bit_fails_checksum_in_prefix_and_extension() {
        let mut wire = encode_hello(&v2_hello());
        wire[9] ^= 0x40; // prefix field
        assert!(matches!(
            decode_hello(&wire),
            Err(HandshakeError::ChecksumMismatch { .. })
        ));
        let mut wire = encode_hello(&v2_hello());
        wire[HELLO_V1_LEN + 2] ^= 0x01; // epoch byte: prefix CRC can't see it
        let prefix: [u8; HELLO_V1_LEN] = wire[..HELLO_V1_LEN].try_into().unwrap();
        assert!(decode_hello_prefix(&prefix).is_ok());
        assert!(matches!(
            decode_hello(&wire),
            Err(HandshakeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn wrong_magic_and_length_are_rejected() {
        let ack = HelloAck {
            version: PROTOCOL_VERSION,
            accept: true,
            reason: RejectReason::None,
            last_seq: 0,
            delivered_cum: 0,
            epoch: 0,
        };
        let mut wire = encode_hello_ack(&ack, 2);
        wire[0] = b'X';
        assert!(matches!(
            decode_hello_ack(&wire),
            Err(HandshakeError::BadMagic(_))
        ));
        assert!(matches!(
            decode_hello_ack(&[0u8; 30]),
            Err(HandshakeError::BadLength(30))
        ));
        // A v2 hello truncated to the v1 length contradicts its announced
        // version.
        let wire = encode_hello(&v2_hello());
        assert!(matches!(
            decode_hello(&wire[..HELLO_V1_LEN]),
            Err(HandshakeError::BadLength(HELLO_V1_LEN))
        ));
    }

    #[test]
    fn read_full_reports_clean_eof_only_at_boundary() {
        let data = [1u8, 2, 3];
        let mut cursor = io::Cursor::new(&data[..]);
        let mut buf = [0u8; 3];
        assert!(read_full(&mut cursor, &mut buf, || true).unwrap());
        assert_eq!(buf, data);
        // Boundary EOF: nothing left, zero-length read not required first.
        let mut empty = io::Cursor::new(&[][..]);
        assert!(!read_full(&mut empty, &mut buf, || true).unwrap());
        // Mid-message EOF: two bytes left, three wanted.
        let mut short = io::Cursor::new(&data[..2]);
        let err = read_full(&mut short, &mut buf, || true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
