//! The SAAD wire protocol: a tiny versioned handshake followed by
//! length-prefixed transport frames.
//!
//! A connection starts with a fixed-size `Hello` from the agent declaring
//! its protocol version, [`HostId`], and resume position (next frame
//! sequence number plus cumulative sent/written synopsis counts). The
//! collector answers with a fixed-size `HelloAck` that either accepts the
//! connection — echoing what it already holds for that host — or rejects
//! it with a typed reason. After an accepting ack, the stream is a
//! sequence of `u32` big-endian length prefixes, each followed by one
//! frame exactly as produced by
//! [`FrameSender::encode_frame`](saad_core::transport::FrameSender::encode_frame).
//!
//! Everything is checksummed with the same CRC-32 the frame format uses,
//! so a flipped bit anywhere — handshake or payload — is detected, never
//! silently admitted.

use saad_core::transport::{crc32, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
use saad_core::HostId;
use std::fmt;
use std::io::{self, Read, Write};

/// Current wire protocol version. A collector rejects agents announcing a
/// different version rather than guessing at frame semantics.
pub const PROTOCOL_VERSION: u16 = 1;

/// Magic prefix of an agent `Hello`.
pub const HELLO_MAGIC: [u8; 4] = *b"SAAD";

/// Magic prefix of a collector `HelloAck`.
pub const ACK_MAGIC: [u8; 4] = *b"SADA";

/// Encoded size of a [`Hello`] in bytes.
pub const HELLO_LEN: usize = 36;

/// Encoded size of a [`HelloAck`] in bytes.
pub const HELLO_ACK_LEN: usize = 28;

/// Largest length-prefixed message body the collector will read: one full
/// transport frame (header + maximum payload). A prefix above this bound
/// means the stream is corrupt or hostile; the connection is dropped.
pub const MAX_MESSAGE_LEN: usize = FRAME_HEADER_LEN + MAX_FRAME_PAYLOAD;

/// `last_seq` value in a [`HelloAck`] meaning "never heard from this
/// host".
pub const NO_SEQ: u64 = u64::MAX;

/// Agent-side opening message: who is connecting and where its frame
/// stream resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the agent speaks.
    pub version: u16,
    /// Host this agent frames synopses for.
    pub host: HostId,
    /// Sequence number the next encoded frame will carry. Zero means a
    /// fresh sender with no history to resume.
    pub next_seq: u64,
    /// Cumulative synopses the agent has framed so far.
    pub sent_cum: u64,
    /// Cumulative synopses in frames fully written to a live socket. The
    /// difference `sent_cum − written_cum` is loss the agent already knows
    /// about and is reporting rather than retransmitting.
    pub written_cum: u64,
}

/// Why a collector refused a [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// Not rejected.
    None = 0,
    /// Agent and collector disagree on [`PROTOCOL_VERSION`].
    VersionMismatch = 1,
    /// The `Hello` failed its magic or checksum.
    Malformed = 2,
}

impl RejectReason {
    fn from_u8(v: u8) -> RejectReason {
        match v {
            1 => RejectReason::VersionMismatch,
            2 => RejectReason::Malformed,
            _ => RejectReason::None,
        }
    }
}

/// Collector-side handshake reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// Protocol version the collector speaks.
    pub version: u16,
    /// Whether the connection may proceed to frame streaming.
    pub accept: bool,
    /// Reason when `accept` is false.
    pub reason: RejectReason,
    /// Highest frame sequence number the collector has seen from this
    /// host, or [`NO_SEQ`] if it has none.
    pub last_seq: u64,
    /// Synopses the collector has delivered for this host so far.
    pub delivered_cum: u64,
}

/// A handshake message that could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// First four bytes were not the expected magic.
    BadMagic([u8; 4]),
    /// Stored and computed CRC-32 disagree.
    ChecksumMismatch {
        /// Checksum carried by the message.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::BadMagic(m) => write!(f, "bad handshake magic {m:?}"),
            HandshakeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "handshake checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Encode a [`Hello`] into its fixed 36-byte wire form.
pub fn encode_hello(hello: &Hello) -> [u8; HELLO_LEN] {
    let mut buf = [0u8; HELLO_LEN];
    buf[0..4].copy_from_slice(&HELLO_MAGIC);
    buf[4..6].copy_from_slice(&hello.version.to_be_bytes());
    buf[6..8].copy_from_slice(&hello.host.0.to_be_bytes());
    buf[8..16].copy_from_slice(&hello.next_seq.to_be_bytes());
    buf[16..24].copy_from_slice(&hello.sent_cum.to_be_bytes());
    buf[24..32].copy_from_slice(&hello.written_cum.to_be_bytes());
    let crc = crc32(&[&buf[..32]]);
    buf[32..36].copy_from_slice(&crc.to_be_bytes());
    buf
}

/// Decode a [`Hello`] from its wire form.
///
/// # Errors
///
/// Returns [`HandshakeError`] when the magic or checksum is wrong. Version
/// agreement is the caller's policy decision, not a decode error.
pub fn decode_hello(buf: &[u8; HELLO_LEN]) -> Result<Hello, HandshakeError> {
    if buf[0..4] != HELLO_MAGIC {
        return Err(HandshakeError::BadMagic(buf[0..4].try_into().expect("4")));
    }
    let stored = u32::from_be_bytes(buf[32..36].try_into().expect("4"));
    let computed = crc32(&[&buf[..32]]);
    if stored != computed {
        return Err(HandshakeError::ChecksumMismatch { stored, computed });
    }
    Ok(Hello {
        version: u16::from_be_bytes(buf[4..6].try_into().expect("2")),
        host: HostId(u16::from_be_bytes(buf[6..8].try_into().expect("2"))),
        next_seq: u64::from_be_bytes(buf[8..16].try_into().expect("8")),
        sent_cum: u64::from_be_bytes(buf[16..24].try_into().expect("8")),
        written_cum: u64::from_be_bytes(buf[24..32].try_into().expect("8")),
    })
}

/// Encode a [`HelloAck`] into its fixed 28-byte wire form.
pub fn encode_hello_ack(ack: &HelloAck) -> [u8; HELLO_ACK_LEN] {
    let mut buf = [0u8; HELLO_ACK_LEN];
    buf[0..4].copy_from_slice(&ACK_MAGIC);
    buf[4..6].copy_from_slice(&ack.version.to_be_bytes());
    buf[6] = ack.accept as u8;
    buf[7] = ack.reason as u8;
    buf[8..16].copy_from_slice(&ack.last_seq.to_be_bytes());
    buf[16..24].copy_from_slice(&ack.delivered_cum.to_be_bytes());
    let crc = crc32(&[&buf[..24]]);
    buf[24..28].copy_from_slice(&crc.to_be_bytes());
    buf
}

/// Decode a [`HelloAck`] from its wire form.
///
/// # Errors
///
/// Returns [`HandshakeError`] when the magic or checksum is wrong.
pub fn decode_hello_ack(buf: &[u8; HELLO_ACK_LEN]) -> Result<HelloAck, HandshakeError> {
    if buf[0..4] != ACK_MAGIC {
        return Err(HandshakeError::BadMagic(buf[0..4].try_into().expect("4")));
    }
    let stored = u32::from_be_bytes(buf[24..28].try_into().expect("4"));
    let computed = crc32(&[&buf[..24]]);
    if stored != computed {
        return Err(HandshakeError::ChecksumMismatch { stored, computed });
    }
    Ok(HelloAck {
        version: u16::from_be_bytes(buf[4..6].try_into().expect("2")),
        accept: buf[6] != 0,
        reason: RejectReason::from_u8(buf[7]),
        last_seq: u64::from_be_bytes(buf[8..16].try_into().expect("8")),
        delivered_cum: u64::from_be_bytes(buf[16..24].try_into().expect("8")),
    })
}

/// Write one length-prefixed message: `u32` big-endian body length, then
/// the body.
///
/// # Errors
///
/// Propagates the underlying I/O error; a partial write leaves the stream
/// desynchronized, so callers must treat any error as fatal for the
/// connection.
pub fn write_message<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_MESSAGE_LEN);
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)
}

/// Read exactly `buf.len()` bytes, retrying reads that hit a socket
/// read-timeout (`WouldBlock` / `TimedOut`) while `keep_going()` stays
/// true — the idiom a shutdown-aware connection handler needs, since a
/// plain `read_exact` would either block forever or lose already-consumed
/// bytes on timeout.
///
/// Returns `Ok(false)` on a clean EOF **before any byte was read** (the
/// peer closed at a message boundary).
///
/// # Errors
///
/// Mid-message EOF surfaces as [`io::ErrorKind::UnexpectedEof`]; a
/// `keep_going()` veto surfaces as [`io::ErrorKind::Interrupted`]; other
/// I/O errors propagate unchanged.
pub fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    keep_going: impl Fn() -> bool,
) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-message",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !keep_going() {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "shutdown"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let hello = Hello {
            version: PROTOCOL_VERSION,
            host: HostId(42),
            next_seq: 1_000_000_007,
            sent_cum: 77_777,
            written_cum: 70_001,
        };
        let wire = encode_hello(&hello);
        assert_eq!(decode_hello(&wire).unwrap(), hello);
    }

    #[test]
    fn hello_ack_round_trips() {
        let ack = HelloAck {
            version: PROTOCOL_VERSION,
            accept: false,
            reason: RejectReason::VersionMismatch,
            last_seq: NO_SEQ,
            delivered_cum: 123,
        };
        let wire = encode_hello_ack(&ack);
        assert_eq!(decode_hello_ack(&wire).unwrap(), ack);
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut wire = encode_hello(&Hello {
            version: PROTOCOL_VERSION,
            host: HostId(1),
            next_seq: 5,
            sent_cum: 50,
            written_cum: 50,
        });
        wire[9] ^= 0x40;
        assert!(matches!(
            decode_hello(&wire),
            Err(HandshakeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut wire = encode_hello_ack(&HelloAck {
            version: PROTOCOL_VERSION,
            accept: true,
            reason: RejectReason::None,
            last_seq: 0,
            delivered_cum: 0,
        });
        wire[0] = b'X';
        assert!(matches!(
            decode_hello_ack(&wire),
            Err(HandshakeError::BadMagic(_))
        ));
    }

    #[test]
    fn read_full_reports_clean_eof_only_at_boundary() {
        let data = [1u8, 2, 3];
        let mut cursor = io::Cursor::new(&data[..]);
        let mut buf = [0u8; 3];
        assert!(read_full(&mut cursor, &mut buf, || true).unwrap());
        assert_eq!(buf, data);
        // Boundary EOF: nothing left, zero-length read not required first.
        let mut empty = io::Cursor::new(&[][..]);
        assert!(!read_full(&mut empty, &mut buf, || true).unwrap());
        // Mid-message EOF: two bytes left, three wanted.
        let mut short = io::Cursor::new(&data[..2]);
        let err = read_full(&mut short, &mut buf, || true).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
