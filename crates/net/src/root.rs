//! The root of the federation: merges many leaf uplink streams into the
//! one exactly-accounted synopsis stream the analyzer pool consumes.
//!
//! Every digest frame a leaf forwards is positioned in the originating
//! agent's **global** stream coordinates (see [`crate::leaf`]), which is
//! what makes the merge law here both simple and exact:
//!
//! - per host, **delivered** synopses is the *sum* over all connections
//!   that ever carried the host,
//! - per host, **expected** synopses is the *max* frame-end position
//!   seen on any connection,
//! - loss is their difference — reported incrementally and exactly once
//!   via [`DigestMerge`], no matter how the host's digests were split
//!   across a failing, re-homing topology.
//!
//! Frame sequence numbers, by contrast, are a per-uplink framing detail
//! (each leaf numbers its own digests), so duplicate suppression uses a
//! **per-connection** [`FrameReceiver`] rather than a shared one; the
//! cross-connection invariants live entirely in the global coordinates.
//!
//! Admitted synopses flow to the analyzer input through the same
//! [`feed_frame`] contract the single-collector path uses — batches plus
//! [`LossReport`]s — so the whole detection stack runs unchanged behind
//! a federation.

use crate::protocol::{
    apply_hello_ext, decode_hello_prefix, encode_hello_ack, hello_ext_len, read_full, HelloAck,
    RejectReason, HELLO_EXT_LEN, HELLO_V1_LEN, MAX_MESSAGE_LEN, NO_SEQ, PROTOCOL_VERSION,
};
use crossbeam_channel::Sender;
use parking_lot::Mutex;
use saad_core::pipeline::feed_frame;
use saad_core::synopsis::TaskSynopsis;
use saad_core::transport::{
    parse_frame, DigestMerge, FrameOutcome, FrameReceiver, LinkStats, LossReport,
};
use saad_core::HostId;
use saad_sim::SimTime;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`RootCollector`].
#[derive(Debug, Clone)]
pub struct RootConfig {
    /// Socket read timeout used to poll the shutdown flag.
    pub read_poll: Duration,
    /// Protocol version this root accepts (leaf uplinks are always
    /// current-version peers).
    pub version: u16,
}

impl Default for RootConfig {
    fn default() -> RootConfig {
        RootConfig {
            read_poll: Duration::from_millis(50),
            version: PROTOCOL_VERSION,
        }
    }
}

/// Snapshot of root-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RootStats {
    /// Leaf uplink connections accepted since start.
    pub uplinks_accepted: u64,
    /// Uplink connections currently streaming.
    pub uplinks_active: u64,
    /// Handshakes refused.
    pub handshakes_rejected: u64,
    /// Fresh digest frames admitted across all uplinks.
    pub digests: u64,
    /// Synopses forwarded to the analyzer input.
    pub synopses: u64,
    /// Digest frames rejected as corrupt.
    pub corrupted_digests: u64,
    /// Duplicate digest frames discarded.
    pub duplicate_digests: u64,
    /// Synopses known lost across all hosts — agent links, leaf
    /// crashes, and uplink failures combined (exact at quiescence).
    pub lost_synopses: u64,
    /// Ingest watermark across all uplinks.
    pub watermark: SimTime,
}

#[derive(Debug, Default)]
struct Counters {
    uplinks_accepted: AtomicU64,
    uplinks_active: AtomicU64,
    handshakes_rejected: AtomicU64,
    digests: AtomicU64,
    synopses: AtomicU64,
    corrupted_digests: AtomicU64,
    duplicate_digests: AtomicU64,
    watermark_micros: AtomicU64,
}

struct Shared {
    merge: Mutex<DigestMerge>,
    batch_tx: Sender<Vec<TaskSynopsis>>,
    loss_tx: Sender<LossReport>,
    shutdown: AtomicBool,
    counters: Counters,
    config: RootConfig,
    conns: Mutex<HashMap<u64, TcpStream>>,
    handler_joins: Mutex<Vec<JoinHandle<()>>>,
}

/// A running root collector. Call [`RootCollector::shutdown`] for a
/// clean stop.
pub struct RootCollector {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_join: Option<JoinHandle<()>>,
}

impl RootCollector {
    /// Bind on `addr` (port 0 allowed) and start accepting leaf uplinks.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        batch_tx: Sender<Vec<TaskSynopsis>>,
        loss_tx: Sender<LossReport>,
        config: RootConfig,
    ) -> io::Result<RootCollector> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            merge: Mutex::new(DigestMerge::new()),
            batch_tx,
            loss_tx,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            config,
            conns: Mutex::new(HashMap::new()),
            handler_joins: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept_join = std::thread::Builder::new()
            .name("saad-root-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn root accept thread");
        Ok(RootCollector {
            local_addr,
            shared,
            accept_join: Some(accept_join),
        })
    }

    /// The bound address — the actual port when bound with port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of root-wide counters.
    pub fn stats(&self) -> RootStats {
        let c = &self.shared.counters;
        RootStats {
            uplinks_accepted: c.uplinks_accepted.load(Ordering::Relaxed),
            uplinks_active: c.uplinks_active.load(Ordering::Relaxed),
            handshakes_rejected: c.handshakes_rejected.load(Ordering::Relaxed),
            digests: c.digests.load(Ordering::Relaxed),
            synopses: c.synopses.load(Ordering::Relaxed),
            corrupted_digests: c.corrupted_digests.load(Ordering::Relaxed),
            duplicate_digests: c.duplicate_digests.load(Ordering::Relaxed),
            lost_synopses: self.shared.merge.lock().total_lost(),
            watermark: SimTime::from_micros(c.watermark_micros.load(Ordering::Relaxed)),
        }
    }

    /// Merged cross-uplink accounting for one host: delivered summed over
    /// every connection that carried it, expectation the max global
    /// position seen anywhere.
    pub fn merged_stats(&self, host: HostId) -> LinkStats {
        self.shared.merge.lock().stats(host)
    }

    /// Expose root counters in `registry` (scrape-time callbacks, weak
    /// captures — same discipline as the single collector).
    pub fn register_metrics(&self, registry: &saad_obs::Registry) {
        let counter = |f: fn(&Counters) -> &AtomicU64| {
            let shared = Arc::downgrade(&self.shared);
            move || {
                shared
                    .upgrade()
                    .map_or(0, |s| f(&s.counters).load(Ordering::Relaxed))
            }
        };
        registry.register_counter_fn(
            "saad_root_uplinks_accepted_total",
            "Leaf uplink connections accepted since root start",
            &[],
            counter(|c| &c.uplinks_accepted),
        );
        registry.register_counter_fn(
            "saad_root_digests_total",
            "Fresh digest frames admitted across all uplinks",
            &[],
            counter(|c| &c.digests),
        );
        registry.register_counter_fn(
            "saad_root_synopses_total",
            "Synopses forwarded to the analyzer input",
            &[],
            counter(|c| &c.synopses),
        );
        registry.register_counter_fn(
            "saad_root_duplicate_digests_total",
            "Duplicate digest frames discarded",
            &[],
            counter(|c| &c.duplicate_digests),
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_counter_fn(
            "saad_root_lost_synopses_total",
            "Synopses known lost across the whole federation (exact at quiescence)",
            &[],
            move || shared.upgrade().map_or(0, |s| s.merge.lock().total_lost()),
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_gauge_fn(
            "saad_root_uplinks_active",
            "Leaf uplink connections currently streaming",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    s.counters.uplinks_active.load(Ordering::Relaxed) as i64
                })
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_gauge_fn(
            "saad_root_watermark_us",
            "Highest synopsis start time admitted on any uplink, in stream microseconds",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    s.counters.watermark_micros.load(Ordering::Relaxed) as i64
                })
            },
        );
    }

    /// Stop accepting, close every uplink, and join all handler threads.
    /// Returns the final counters.
    pub fn shutdown(mut self) -> RootStats {
        let stats = {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            for stream in self.shared.conns.lock().values() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            let _ = TcpStream::connect(self.local_addr);
            if let Some(join) = self.accept_join.take() {
                let _ = join.join();
            }
            let joins = std::mem::take(&mut *self.shared.handler_joins.lock());
            for join in joins {
                let _ = join.join();
            }
            self.stats()
        };
        stats
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_conn_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        let _ = stream.set_read_timeout(Some(shared.config.read_poll));
        let _ = stream.set_nodelay(true);
        if let Ok(registered) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, registered);
        }
        shared
            .counters
            .uplinks_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .uplinks_active
            .fetch_add(1, Ordering::Relaxed);
        let handler_shared = shared.clone();
        let join = std::thread::Builder::new()
            .name(format!("saad-root-conn-{conn_id}"))
            .spawn(move || {
                handle_uplink(stream, &handler_shared);
                handler_shared.conns.lock().remove(&conn_id);
                handler_shared
                    .counters
                    .uplinks_active
                    .fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn root uplink handler");
        shared.handler_joins.lock().push(join);
    }
}

/// Handshake then merge digest frames until EOF, error, or shutdown.
fn handle_uplink(mut stream: TcpStream, shared: &Shared) {
    let keep_going = || !shared.shutdown.load(Ordering::SeqCst);

    // --- Handshake (same two-phase read as the collector) -------------
    let mut prefix = [0u8; HELLO_V1_LEN];
    match read_full(&mut stream, &mut prefix, keep_going) {
        Ok(true) => {}
        Ok(false) | Err(_) => return,
    }
    let mut hello = match decode_hello_prefix(&prefix) {
        Ok(h) => h,
        Err(_) => {
            reject(&mut stream, shared, RejectReason::Malformed, 1);
            return;
        }
    };
    if hello_ext_len(hello.version) > 0 {
        let mut ext = [0u8; HELLO_EXT_LEN];
        match read_full(&mut stream, &mut ext, keep_going) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        if apply_hello_ext(&mut hello, &prefix, &ext).is_err() {
            reject(&mut stream, shared, RejectReason::Malformed, hello.version);
            return;
        }
    }
    if hello.version != shared.config.version {
        reject(
            &mut stream,
            shared,
            RejectReason::VersionMismatch,
            hello.version,
        );
        return;
    }
    let ack = HelloAck {
        version: shared.config.version,
        accept: true,
        reason: RejectReason::None,
        // Each uplink connection is a fresh framing context: the leaf's
        // digest sequence numbers are connection-local, and the exact
        // cross-connection state lives in the global-coordinate merge.
        last_seq: NO_SEQ,
        delivered_cum: 0,
        epoch: 0,
    };
    if write_ack(&mut stream, &encode_hello_ack(&ack, hello.version)).is_err() {
        return;
    }

    // --- Digest stream -------------------------------------------------
    // Per-connection receiver: duplicate suppression within this uplink's
    // own frame numbering. Its loss arithmetic is ignored — the merge is
    // authoritative across connections.
    let mut local_rx = FrameReceiver::new();
    let mut len_buf = [0u8; 4];
    let mut body = Vec::new();
    loop {
        match read_full(&mut stream, &mut len_buf, keep_going) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_MESSAGE_LEN {
            shared
                .counters
                .corrupted_digests
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        body.resize(len, 0);
        match read_full(&mut stream, &mut body, keep_going) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let parsed = match parse_frame(&body) {
            Ok(p) => p,
            Err(_) => {
                shared
                    .counters
                    .corrupted_digests
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        let max_start = parsed
            .synopses
            .iter()
            .map(|s| s.start)
            .max()
            .unwrap_or(SimTime::ZERO);
        let pos_end = parsed.cumulative + parsed.synopses.len() as u64;
        match local_rx.admit(parsed) {
            FrameOutcome::Fresh { host, synopses, .. } => {
                let n = synopses.len();
                // The merge computes loss in global coordinates and
                // reports each lost synopsis exactly once across every
                // uplink that ever carried this host.
                let merged_newly_lost = shared.merge.lock().on_fresh(host, n as u64, pos_end);
                let forwarded = feed_frame(
                    FrameOutcome::Fresh {
                        host,
                        synopses,
                        newly_lost: merged_newly_lost,
                    },
                    &shared.batch_tx,
                    &shared.loss_tx,
                );
                shared.counters.digests.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .synopses
                    .fetch_add(forwarded as u64, Ordering::Relaxed);
                shared
                    .counters
                    .watermark_micros
                    .fetch_max(max_start.as_micros(), Ordering::Relaxed);
            }
            FrameOutcome::Duplicate { host, .. } => {
                shared.merge.lock().on_duplicate(host);
                shared
                    .counters
                    .duplicate_digests
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn reject(stream: &mut TcpStream, shared: &Shared, reason: RejectReason, wire_version: u16) {
    shared
        .counters
        .handshakes_rejected
        .fetch_add(1, Ordering::Relaxed);
    let ack = HelloAck {
        version: shared.config.version,
        accept: false,
        reason,
        last_seq: NO_SEQ,
        delivered_cum: 0,
        epoch: 0,
    };
    let _ = write_ack(stream, &encode_hello_ack(&ack, wire_version));
}

fn write_ack(stream: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
    stream.write_all(bytes)?;
    stream.flush()
}
