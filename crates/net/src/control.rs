//! The federation control plane: leaf membership, heartbeats, and epoch
//! publication.
//!
//! Modeled on the role/roleGroup orchestration of the HBase operator the
//! roadmap cites: the control plane holds the authoritative membership
//! table, each leaf heartbeats into it, and every membership change —
//! register, deregister, or a missed-heartbeat eviction — publishes a new
//! immutable [`RingSnapshot`] under the next epoch. Readers (agents via
//! [`LeafResolver`], collectors via the shared epoch handle) only ever
//! see complete snapshots; there is no partially-applied membership.
//!
//! The control plane is deliberately *not* in the data path. It answers
//! `resolve()` from a cached `Arc` snapshot and shares the current epoch
//! with root/leaf collectors through one `Arc<AtomicU64>`, so a thousand
//! agents re-homing cost it nothing but atomic loads.

use crate::ring::{LeafId, LeafResolver, RingSnapshot};
use parking_lot::Mutex;
use saad_core::HostId;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct LeafEntry {
    addr: SocketAddr,
    last_beat: Instant,
    alive: bool,
}

struct Inner {
    leaves: Mutex<BTreeMap<LeafId, LeafEntry>>,
    /// Current published epoch, shared (via [`ControlPlane::epoch_handle`])
    /// with every collector that enforces staleness.
    epoch: Arc<AtomicU64>,
    snapshot: Mutex<Arc<RingSnapshot>>,
    seed: u64,
    heartbeat_timeout: Duration,
    /// Leaves evicted for missed heartbeats (not graceful deregisters).
    failovers: AtomicU64,
    republishes: AtomicU64,
}

impl Inner {
    /// Rebuild + publish a snapshot from live membership under the next
    /// epoch. Caller must hold no locks taken inside.
    fn republish(&self) {
        let leaves = self.leaves.lock();
        let live: Vec<(LeafId, SocketAddr)> = leaves
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(&id, e)| (id, e.addr))
            .collect();
        drop(leaves);
        // fetch_add returns the previous value; epochs start at 1 so that
        // 0 can mean "no epoch ever published".
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = RingSnapshot::new(epoch, self.seed, live);
        *self.snapshot.lock() = snap;
        self.republishes.fetch_add(1, Ordering::Relaxed);
    }
}

/// Authoritative federation membership + epoch publisher.
///
/// Clone-cheap handle (`Arc` inside); the monitor thread, collectors, and
/// agent resolvers all share one instance.
#[derive(Clone)]
pub struct ControlPlane {
    inner: Arc<Inner>,
}

/// Handle to the background heartbeat monitor; joins the thread on
/// [`MonitorHandle::stop`].
pub struct MonitorHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl MonitorHandle {
    /// Stop the monitor thread and wait for it to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl ControlPlane {
    /// New control plane with no members. `seed` fixes ring assignment
    /// for the federation's lifetime; a leaf that misses heartbeats for
    /// `heartbeat_timeout` is declared dead by [`ControlPlane::sweep`].
    pub fn new(seed: u64, heartbeat_timeout: Duration) -> ControlPlane {
        let epoch = Arc::new(AtomicU64::new(0));
        ControlPlane {
            inner: Arc::new(Inner {
                leaves: Mutex::new(BTreeMap::new()),
                snapshot: Mutex::new(RingSnapshot::new(0, seed, [])),
                epoch,
                seed,
                heartbeat_timeout,
                failovers: AtomicU64::new(0),
                republishes: AtomicU64::new(0),
            }),
        }
    }

    /// Add (or resurrect) a leaf and publish the grown ring.
    pub fn register_leaf(&self, id: LeafId, addr: SocketAddr) {
        self.inner.leaves.lock().insert(
            id,
            LeafEntry {
                addr,
                last_beat: Instant::now(),
                alive: true,
            },
        );
        self.inner.republish();
    }

    /// Gracefully remove a leaf (planned drain, not a failure) and
    /// publish the shrunk ring.
    pub fn deregister_leaf(&self, id: LeafId) {
        if self.inner.leaves.lock().remove(&id).is_some() {
            self.inner.republish();
        }
    }

    /// Record a heartbeat from `id`. Returns `false` for an unknown or
    /// already-evicted leaf — the leaf's cue to re-register.
    pub fn heartbeat(&self, id: LeafId) -> bool {
        let mut leaves = self.inner.leaves.lock();
        match leaves.get_mut(&id) {
            Some(e) if e.alive => {
                e.last_beat = Instant::now();
                true
            }
            _ => false,
        }
    }

    /// Declare `id` dead immediately (e.g. the root observed its uplink
    /// socket die) and publish the shrunk ring. Counts as a failover.
    pub fn mark_dead(&self, id: LeafId) {
        let mut leaves = self.inner.leaves.lock();
        match leaves.get_mut(&id) {
            Some(e) if e.alive => e.alive = false,
            _ => return,
        }
        drop(leaves);
        self.inner.failovers.fetch_add(1, Ordering::Relaxed);
        self.inner.republish();
    }

    /// Evict every live leaf whose last heartbeat is older than the
    /// timeout; returns the evicted ids. Publishes at most one new epoch
    /// regardless of how many died in the interval.
    pub fn sweep(&self) -> Vec<LeafId> {
        let now = Instant::now();
        let mut dead = Vec::new();
        {
            let mut leaves = self.inner.leaves.lock();
            for (&id, e) in leaves.iter_mut() {
                if e.alive && now.duration_since(e.last_beat) > self.inner.heartbeat_timeout {
                    e.alive = false;
                    dead.push(id);
                }
            }
        }
        if !dead.is_empty() {
            self.inner
                .failovers
                .fetch_add(dead.len() as u64, Ordering::Relaxed);
            self.inner.republish();
        }
        dead
    }

    /// The currently published ring.
    pub fn snapshot(&self) -> Arc<RingSnapshot> {
        self.inner.snapshot.lock().clone()
    }

    /// Shared handle to the current epoch, for wiring into
    /// `CollectorConfig::epoch` so collectors enforce staleness against
    /// the live value without calling back into the control plane.
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        self.inner.epoch.clone()
    }

    /// Leaves evicted by failure detection (missed heartbeats or
    /// [`ControlPlane::mark_dead`]) since start.
    pub fn failovers(&self) -> u64 {
        self.inner.failovers.load(Ordering::Relaxed)
    }

    /// Live leaves in the current membership table.
    pub fn live_leaves(&self) -> usize {
        self.inner
            .leaves
            .lock()
            .values()
            .filter(|e| e.alive)
            .count()
    }

    /// Spawn a background thread sweeping for missed heartbeats every
    /// `interval`. Stops (and joins) when the returned handle is dropped.
    pub fn spawn_monitor(&self, interval: Duration) -> MonitorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let cp = self.clone();
        let stop2 = stop.clone();
        let join = std::thread::Builder::new()
            .name("saad-ctrl-monitor".into())
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    cp.sweep();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn control monitor");
        MonitorHandle {
            stop,
            join: Some(join),
        }
    }

    /// Export control-plane health: epoch, live membership, failovers.
    pub fn register_metrics(&self, registry: &saad_obs::Registry) {
        let inner = Arc::downgrade(&self.inner);
        registry.register_counter_fn(
            "saad_control_epoch",
            "Current published ring epoch",
            &[],
            move || {
                inner
                    .upgrade()
                    .map_or(0, |i| i.epoch.load(Ordering::SeqCst))
            },
        );
        let inner = Arc::downgrade(&self.inner);
        registry.register_counter_fn(
            "saad_control_failovers_total",
            "Leaves evicted by failure detection since start",
            &[],
            move || {
                inner
                    .upgrade()
                    .map_or(0, |i| i.failovers.load(Ordering::Relaxed))
            },
        );
        let inner = Arc::downgrade(&self.inner);
        registry.register_counter_fn(
            "saad_control_republishes_total",
            "Ring snapshots published since start",
            &[],
            move || {
                inner
                    .upgrade()
                    .map_or(0, |i| i.republishes.load(Ordering::Relaxed))
            },
        );
        let inner = Arc::downgrade(&self.inner);
        registry.register_gauge_fn(
            "saad_control_leaves_live",
            "Leaves currently alive in the membership table",
            &[],
            move || {
                inner.upgrade().map_or(0, |i| {
                    i.leaves.lock().values().filter(|e| e.alive).count() as i64
                })
            },
        );
    }
}

impl LeafResolver for ControlPlane {
    fn resolve(&self, host: HostId) -> Option<(SocketAddr, u64)> {
        let snap = self.snapshot();
        let (_, addr) = snap.assign_addr(host)?;
        Some((addr, snap.epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u16) -> SocketAddr {
        format!("127.0.0.1:{}", 20_000 + n).parse().unwrap()
    }

    #[test]
    fn membership_changes_bump_the_epoch_monotonically() {
        let cp = ControlPlane::new(7, Duration::from_secs(1));
        assert_eq!(cp.snapshot().epoch, 0);
        cp.register_leaf(LeafId(0), addr(0));
        cp.register_leaf(LeafId(1), addr(1));
        let e2 = cp.snapshot().epoch;
        assert_eq!(e2, 2);
        cp.mark_dead(LeafId(0));
        let snap = cp.snapshot();
        assert_eq!(snap.epoch, 3);
        assert!(!snap.leaves.contains_key(&LeafId(0)));
        assert_eq!(cp.failovers(), 1);
        assert_eq!(cp.epoch_handle().load(Ordering::SeqCst), 3);
    }

    #[test]
    fn resolve_follows_the_published_ring() {
        let cp = ControlPlane::new(0x5AAD, Duration::from_secs(1));
        cp.register_leaf(LeafId(0), addr(0));
        cp.register_leaf(LeafId(1), addr(1));
        let host = HostId(12);
        let (a, epoch) = cp.resolve(host).unwrap();
        assert_eq!(epoch, 2);
        // Kill whichever leaf owns the host; resolution must move to the
        // survivor under the bumped epoch.
        let owner = cp.snapshot().assign(host).unwrap();
        cp.mark_dead(owner);
        let (b, epoch2) = cp.resolve(host).unwrap();
        assert_eq!(epoch2, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn sweep_evicts_only_silent_leaves() {
        let cp = ControlPlane::new(1, Duration::from_millis(40));
        cp.register_leaf(LeafId(0), addr(0));
        cp.register_leaf(LeafId(1), addr(1));
        std::thread::sleep(Duration::from_millis(70));
        assert!(cp.heartbeat(LeafId(1)), "live leaf heartbeats fine");
        let dead = cp.sweep();
        assert_eq!(dead, vec![LeafId(0)]);
        assert_eq!(cp.live_leaves(), 1);
        assert!(!cp.heartbeat(LeafId(0)), "evicted leaf told to re-register");
        // Dead leaf re-registers and is live again under a fresh epoch.
        let before = cp.snapshot().epoch;
        cp.register_leaf(LeafId(0), addr(0));
        assert_eq!(cp.live_leaves(), 2);
        assert!(cp.snapshot().epoch > before);
        assert!(cp.sweep().is_empty(), "fresh registration not re-evicted");
    }

    #[test]
    fn empty_ring_resolves_to_nowhere() {
        let cp = ControlPlane::new(1, Duration::from_secs(1));
        assert!(cp.resolve(HostId(0)).is_none());
        cp.register_leaf(LeafId(3), addr(3));
        cp.deregister_leaf(LeafId(3));
        assert!(cp.resolve(HostId(0)).is_none());
        assert_eq!(cp.failovers(), 0, "graceful drain is not a failover");
    }
}
