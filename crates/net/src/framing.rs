//! Incremental assembly of `u32` length-prefixed messages from an
//! arbitrarily fragmented byte stream.
//!
//! This is the framing layer the reactor collector runs over its
//! per-connection [`RingBuf`]: bytes arrive in whatever fragments the
//! kernel delivers, and [`FrameAssembler::next_message`] yields each
//! complete message body exactly once, borrowing it zero-copy from the
//! ring. The same type drives the fragmentation property tests, so the
//! code under test is the code in production.

use crate::protocol::MAX_MESSAGE_LEN;
use saad_reactor::RingBuf;

/// Error from [`FrameAssembler::next_message`]: a length prefix exceeded
/// [`MAX_MESSAGE_LEN`]. Message boundaries can no longer be found; the
/// stream is unrecoverable and must be closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedPrefix(
    /// The bogus length the prefix claimed.
    pub u64,
);

impl std::fmt::Display for OversizedPrefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "length prefix {} exceeds the {MAX_MESSAGE_LEN}-byte message bound",
            self.0
        )
    }
}

impl std::error::Error for OversizedPrefix {}

/// Reassembles length-prefixed messages from stream fragments.
///
/// Feed bytes either by copy ([`FrameAssembler::extend`]) or by vectored
/// reads straight into [`FrameAssembler::ring_mut`], then drain with
/// [`FrameAssembler::next_message`] until it returns `Ok(None)`.
#[derive(Debug)]
pub struct FrameAssembler {
    ring: RingBuf,
    /// Bytes of the message returned by the previous `next_message`
    /// call (prefix + body), consumed lazily on the next call — this is
    /// what lets `next_message` hand out a borrow of the ring.
    pending: usize,
    stalls: u64,
}

impl FrameAssembler {
    /// An assembler whose ring starts at `capacity` bytes (it grows on
    /// demand up to the size of the largest legal message).
    #[must_use]
    pub fn new(capacity: usize) -> FrameAssembler {
        FrameAssembler {
            ring: RingBuf::with_capacity(capacity),
            pending: 0,
            stalls: 0,
        }
    }

    /// Append one fragment by copy.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.ring.extend_from_slice(bytes);
    }

    /// The underlying ring, for landing vectored reads without a copy.
    /// Only append (`write_slices` + `commit`); never consume — the
    /// assembler owns consumption.
    pub fn ring_mut(&mut self) -> &mut RingBuf {
        &mut self.ring
    }

    /// Bytes currently buffered and not yet returned as a message.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.ring.len() - self.pending
    }

    /// Drain calls that ended on a partial message — the "decode stall"
    /// count: how often the stream paused mid-message.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// The next complete message body, zero-copy from the ring; `None`
    /// when more bytes are needed. The returned slice is valid until the
    /// next call on this assembler (which consumes it).
    ///
    /// # Errors
    ///
    /// [`OversizedPrefix`] when a prefix exceeds [`MAX_MESSAGE_LEN`]:
    /// close the stream.
    pub fn next_message(&mut self) -> Result<Option<&[u8]>, OversizedPrefix> {
        if self.pending > 0 {
            self.ring.consume(self.pending);
            self.pending = 0;
        }
        if self.ring.len() < 4 {
            if !self.ring.is_empty() {
                self.stalls += 1;
            }
            return Ok(None);
        }
        let prefix = self.ring.contiguous(4).expect("4 bytes buffered");
        let len = u32::from_be_bytes(prefix.try_into().expect("4 bytes")) as usize;
        if len > MAX_MESSAGE_LEN {
            return Err(OversizedPrefix(len as u64));
        }
        let whole = 4 + len;
        if self.ring.len() < whole {
            // Pre-size the ring so the rest of the message lands without
            // mid-read growth.
            self.ring.grow(whole);
            self.stalls += 1;
            return Ok(None);
        }
        self.pending = whole;
        let msg = self.ring.contiguous(whole).expect("whole message buffered");
        Ok(Some(&msg[4..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefixed(body: &[u8]) -> Vec<u8> {
        let mut v = (body.len() as u32).to_be_bytes().to_vec();
        v.extend_from_slice(body);
        v
    }

    #[test]
    fn whole_messages_come_back_in_order() {
        let mut a = FrameAssembler::new(64);
        a.extend(&prefixed(b"first"));
        a.extend(&prefixed(b"second"));
        assert_eq!(a.next_message().unwrap().unwrap(), b"first");
        assert_eq!(a.next_message().unwrap().unwrap(), b"second");
        assert_eq!(a.next_message().unwrap(), None);
        assert_eq!(a.buffered(), 0);
        assert_eq!(a.stalls(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembles() {
        let wire: Vec<u8> = [prefixed(b"hello"), prefixed(b""), prefixed(b"world!")].concat();
        let mut a = FrameAssembler::new(64);
        let mut got: Vec<Vec<u8>> = Vec::new();
        for &b in &wire {
            a.extend(&[b]);
            while let Some(msg) = a.next_message().unwrap() {
                got.push(msg.to_vec());
            }
        }
        assert_eq!(
            got,
            vec![b"hello".to_vec(), b"".to_vec(), b"world!".to_vec()]
        );
        assert!(a.stalls() > 0, "trickled input must register stalls");
    }

    #[test]
    fn oversized_prefix_is_fatal() {
        let mut a = FrameAssembler::new(64);
        a.extend(&(MAX_MESSAGE_LEN as u32 + 1).to_be_bytes());
        assert_eq!(
            a.next_message(),
            Err(OversizedPrefix(MAX_MESSAGE_LEN as u64 + 1))
        );
    }

    #[test]
    fn message_larger_than_initial_ring_grows() {
        let big = vec![7u8; 10_000];
        let mut a = FrameAssembler::new(64);
        a.extend(&prefixed(&big));
        assert_eq!(a.next_message().unwrap().unwrap(), &big[..]);
    }
}
