//! Host→leaf assignment: a seeded rendezvous-hash ring published as
//! versioned, immutable epochs.
//!
//! Each tracked host is routed to exactly one leaf collector by
//! **rendezvous (highest-random-weight) hashing**: every live leaf gets a
//! deterministic pseudo-random score for the host, and the highest score
//! wins. Rendezvous hashing gives the two properties federation needs
//! with no virtual-node bookkeeping:
//!
//! - **Bounded churn.** When a leaf dies, only the hosts it owned move
//!   (they redistribute evenly over the survivors); when a leaf joins,
//!   hosts move *only to the joiner*, and in expectation only `1/N` of
//!   them. Everything else keeps its assignment, so a membership change
//!   never stampedes the whole fleet through reconnects.
//! - **Determinism.** Scores depend only on `(seed, host, leaf)`, so
//!   every party holding the same [`RingSnapshot`] computes the same
//!   assignment — there is no coordination beyond distributing the
//!   snapshot itself.
//!
//! Snapshots are immutable and tagged with a monotonically increasing
//! **epoch**; the control plane bumps the epoch on every membership
//! change and collectors reject handshakes routed by an older epoch (see
//! [`RejectReason::StaleEpoch`](crate::protocol::RejectReason)), which is
//! the signal for an agent to refetch the ring and re-home.

use saad_core::HostId;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Identity of one leaf collector in the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeafId(pub u16);

impl std::fmt::Display for LeafId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "leaf-{}", self.0)
    }
}

/// splitmix64 finalizer — the same cheap, well-distributed mix the rest
/// of the codebase seeds RNGs with, used here as the rendezvous score
/// function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One immutable published view of ring membership.
///
/// Cheap to clone behind an [`Arc`]; a new membership view is a new
/// snapshot under a higher epoch, never a mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    /// Version of this membership view. Strictly increases across
    /// publishes; handshakes carry it so collectors can detect routing
    /// by an obsolete view.
    pub epoch: u64,
    /// Seed all assignment scores derive from. Fixed for the lifetime of
    /// the federation so assignments are reproducible run to run.
    pub seed: u64,
    /// Live leaves and where to reach them, keyed by id (sorted, so
    /// iteration order — and therefore score tie-breaking — is
    /// deterministic).
    pub leaves: BTreeMap<LeafId, SocketAddr>,
}

impl RingSnapshot {
    /// Build a snapshot from explicit membership.
    pub fn new(
        epoch: u64,
        seed: u64,
        leaves: impl IntoIterator<Item = (LeafId, SocketAddr)>,
    ) -> Arc<RingSnapshot> {
        Arc::new(RingSnapshot {
            epoch,
            seed,
            leaves: leaves.into_iter().collect(),
        })
    }

    /// The leaf `host` is assigned to, or `None` when the ring is empty.
    ///
    /// Highest rendezvous score wins; on the (astronomically unlikely)
    /// score tie the lower [`LeafId`] wins, so the choice is total and
    /// deterministic.
    pub fn assign(&self, host: HostId) -> Option<LeafId> {
        self.leaves
            .keys()
            .map(|&leaf| (score(self.seed, host, leaf), leaf))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, leaf)| leaf)
    }

    /// Address of the leaf `host` is assigned to.
    pub fn assign_addr(&self, host: HostId) -> Option<(LeafId, SocketAddr)> {
        let leaf = self.assign(host)?;
        Some((leaf, self.leaves[&leaf]))
    }
}

fn score(seed: u64, host: HostId, leaf: LeafId) -> u64 {
    mix64(seed ^ mix64((host.0 as u64) << 16 | leaf.0 as u64))
}

/// Where an agent should connect *right now*, and under which ring epoch
/// that answer was computed.
///
/// The agent consults its resolver before **every** connect attempt, so a
/// control-plane republish re-homes a reconnecting agent with no extra
/// machinery: the next backoff attempt simply dials the new owner. A
/// `None` answer means "nowhere to go at the moment" — the agent backs
/// off and asks again.
pub trait LeafResolver: Send + Sync {
    /// Resolve the current collector address and ring epoch for `host`.
    fn resolve(&self, host: HostId) -> Option<(SocketAddr, u64)>;
}

/// Resolver for the non-federated (single collector) deployment: always
/// the same address, with the epoch pinned to
/// [`PINNED_EPOCH`](crate::protocol::PINNED_EPOCH) so no staleness check
/// applies.
#[derive(Debug, Clone, Copy)]
pub struct PinnedResolver {
    addr: SocketAddr,
}

impl PinnedResolver {
    /// Pin every host to `addr`.
    pub fn new(addr: SocketAddr) -> PinnedResolver {
        PinnedResolver { addr }
    }
}

impl LeafResolver for PinnedResolver {
    fn resolve(&self, _host: HostId) -> Option<(SocketAddr, u64)> {
        Some((self.addr, crate::protocol::PINNED_EPOCH))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addr(n: u16) -> SocketAddr {
        format!("127.0.0.1:{}", 10_000 + n).parse().unwrap()
    }

    fn ring(epoch: u64, seed: u64, ids: &[u16]) -> Arc<RingSnapshot> {
        RingSnapshot::new(epoch, seed, ids.iter().map(|&i| (LeafId(i), addr(i))))
    }

    #[test]
    fn empty_ring_assigns_nothing() {
        assert_eq!(ring(1, 7, &[]).assign(HostId(3)), None);
    }

    #[test]
    fn assignment_is_deterministic_and_covers_all_leaves() {
        let r = ring(1, 0x5AAD, &[0, 1, 2, 3]);
        let mut owned = std::collections::HashMap::new();
        for h in 0..400u16 {
            let leaf = r.assign(HostId(h)).unwrap();
            assert_eq!(r.assign(HostId(h)), Some(leaf), "stable on re-query");
            *owned.entry(leaf).or_insert(0usize) += 1;
        }
        // Every leaf owns a reasonable share of 400 hosts (expected 100
        // each) — rendezvous hashing balances without virtual nodes.
        assert_eq!(owned.len(), 4, "all leaves own hosts: {owned:?}");
        for (&leaf, &n) in &owned {
            assert!((40..=180).contains(&n), "{leaf} owns {n} of 400");
        }
    }

    #[test]
    fn leave_rehomes_only_the_dead_leafs_hosts() {
        let before = ring(1, 0x5AAD, &[0, 1, 2, 3]);
        let after = ring(2, 0x5AAD, &[0, 1, 3]); // leaf 2 died
        for h in 0..500u16 {
            let was = before.assign(HostId(h)).unwrap();
            let now = after.assign(HostId(h)).unwrap();
            if was != LeafId(2) {
                assert_eq!(was, now, "host {h} moved although its leaf survived");
            } else {
                assert_ne!(now, LeafId(2));
            }
        }
    }

    proptest! {
        #[test]
        fn join_moves_hosts_only_to_the_joiner_and_about_one_in_n(
            seed in 0u64..u64::MAX,
            existing in proptest::collection::vec(0u16..200, 1..12),
            joiner in 200u16..220,
        ) {
            let ids: Vec<u16> = existing
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<u16>>()
                .into_iter()
                .collect();
            let mut grown = ids.clone();
            grown.push(joiner);
            let before = ring(1, seed, &ids);
            let after = ring(2, seed, &grown);
            let n = grown.len() as f64;
            let hosts = 600u16;
            let mut moved = 0usize;
            for h in 0..hosts {
                let was = before.assign(HostId(h)).unwrap();
                let now = after.assign(HostId(h)).unwrap();
                if was != now {
                    prop_assert!(now == LeafId(joiner), "host {} moved to a non-joiner", h);
                    moved += 1;
                }
            }
            // Expected moves: hosts/n. Allow generous slack for small n,
            // but rule out both stampede (≫1/N) and dead joiner.
            let expected = hosts as f64 / n;
            prop_assert!((moved as f64) < expected * 2.5 + 8.0,
                "{} of {} moved on join of 1/{} (expected ~{:.0})", moved, hosts, n, expected);
            prop_assert!(moved > 0, "joiner {} owns nothing across {} hosts", joiner, hosts);
        }

        #[test]
        fn assignment_depends_only_on_snapshot_contents(
            seed in 0u64..u64::MAX,
            ids in proptest::collection::vec(0u16..300, 1..16),
            host in 0u16..2000,
        ) {
            let v: Vec<u16> = ids
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<u16>>()
                .into_iter()
                .collect();
            // Same membership under different epochs or construction
            // order → same assignment: the epoch versions the view, it
            // does not perturb routing.
            let a = ring(1, seed, &v);
            let mut rev = v.clone();
            rev.reverse();
            let b = ring(999, seed, &rev);
            prop_assert_eq!(a.assign(HostId(host)), b.assign(HostId(host)));
        }
    }
}
