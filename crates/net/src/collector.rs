//! The collector server: many concurrent agent connections feeding one
//! shared, exactly-accounted synopsis stream.
//!
//! Each accepted connection runs on its own thread: it performs the
//! [`protocol`](crate::protocol) handshake, then reads length-prefixed
//! transport frames, validating and decoding them **outside** any shared
//! lock ([`parse_frame`]) and sequencing them **under** the shared
//! [`FrameReceiver`] lock ([`FrameReceiver::admit`], O(1) per frame). The
//! expensive per-byte work therefore parallelizes across connections;
//! only the cheap per-host accounting serializes.
//!
//! Admitted frames flow into the analyzer input via
//! [`feed_frame`]: synopses as one batch send, newly revealed gaps as
//! [`LossReport`]s — exactly the contract the in-process pipeline already
//! uses, so `spawn_analyzer_pool_with_lifecycle` works unchanged behind a
//! socket.
//!
//! [`Collector::shutdown`] returns the final [`CollectorState`] — the
//! carried-over `FrameReceiver` — which a restarted collector can adopt
//! via [`Collector::with_state`] so loss accounting stays exact across
//! collector restarts. A collector restarted *without* that state relies
//! on the agents' resume handshakes ([`FrameReceiver::resume`]) instead.

use crate::protocol::{
    apply_hello_ext, decode_hello_prefix, encode_hello_ack, hello_ext_len, read_full, Hello,
    HelloAck, RejectReason, HELLO_EXT_LEN, HELLO_V1_LEN, MAX_MESSAGE_LEN, NO_SEQ, PINNED_EPOCH,
    PROTOCOL_VERSION,
};
use crossbeam_channel::Sender;
use parking_lot::Mutex;
use saad_core::batch::SynopsisBatch;
use saad_core::intern::SignatureInterner;
use saad_core::pipeline::{feed_frame, feed_frame_soa};
use saad_core::synopsis::TaskSynopsis;
use saad_core::transport::{parse_frame, FrameOutcome, FrameReceiver, LinkStats, LossReport};
use saad_core::HostId;
use saad_sim::SimTime;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`Collector`].
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Socket read timeout used by connection handlers to poll the
    /// shutdown flag; a handler notices shutdown within about this long.
    pub read_poll: Duration,
    /// Protocol version this collector accepts (normally
    /// [`PROTOCOL_VERSION`]; overridable to exercise rejection paths).
    pub version: u16,
    /// Live control-plane epoch to enforce, typically
    /// [`ControlPlane::epoch_handle`](crate::control::ControlPlane::epoch_handle).
    /// A hello routed by an older ring epoch is rejected with
    /// [`RejectReason::StaleEpoch`] so the peer refetches the ring;
    /// [`PINNED_EPOCH`] hellos (including everything v1) are exempt.
    /// `None` disables the check entirely.
    pub epoch: Option<Arc<AtomicU64>>,
    /// Kernel receive-buffer clamp applied to every accepted connection
    /// (`None` leaves the OS default and its autotuning). Bounds
    /// per-connection kernel memory at high fan-in and makes
    /// backpressure timing reproducible; see
    /// [`saad_reactor::set_recv_buffer`].
    pub recv_buffer: Option<usize>,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            read_poll: Duration::from_millis(50),
            version: PROTOCOL_VERSION,
            epoch: None,
            recv_buffer: None,
        }
    }
}

/// Link state carried across collector restarts: the shared
/// [`FrameReceiver`] with its per-host delivery, duplicate, and loss
/// accounting.
#[derive(Debug, Default)]
pub struct CollectorState {
    receiver: FrameReceiver,
}

impl CollectorState {
    /// The carried-over receiver (read-only view).
    pub fn receiver(&self) -> &FrameReceiver {
        &self.receiver
    }

    /// Wrap a receiver (used by collector implementations handing state
    /// to a successor).
    pub(crate) fn from_receiver(receiver: FrameReceiver) -> CollectorState {
        CollectorState { receiver }
    }

    /// Unwrap into the receiver (used by collector implementations
    /// adopting carried-over state).
    pub(crate) fn into_receiver(self) -> FrameReceiver {
        self.receiver
    }
}

/// Snapshot of collector-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Connections accepted since start.
    pub connections_accepted: u64,
    /// Connections currently streaming.
    pub connections_active: u64,
    /// Handshakes refused (bad magic/checksum or version skew).
    pub handshakes_rejected: u64,
    /// Subset of rejections caused by a stale control-plane ring epoch.
    pub stale_epoch_rejects: u64,
    /// Fresh (non-duplicate) frames admitted.
    pub frames: u64,
    /// Synopses forwarded to the analyzer input.
    pub synopses: u64,
    /// Frames rejected as corrupt (checksum, truncation, oversize, codec).
    pub corrupted_frames: u64,
    /// Duplicate frames discarded across all hosts.
    pub duplicate_frames: u64,
    /// Synopses known lost across all hosts (exact at quiescence).
    pub lost_synopses: u64,
    /// Ingest watermark: the highest synopsis start time admitted on any
    /// connection. Monotone; [`SimTime::ZERO`] until the first synopsis.
    pub watermark: SimTime,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_active: AtomicU64,
    pub(crate) handshakes_rejected: AtomicU64,
    pub(crate) stale_epoch_rejects: AtomicU64,
    pub(crate) frames: AtomicU64,
    pub(crate) synopses: AtomicU64,
    pub(crate) watermark_micros: AtomicU64,
}

impl Counters {
    /// Monotone max-update of the ingest watermark.
    pub(crate) fn stamp_watermark(&self, at: SimTime) {
        self.watermark_micros
            .fetch_max(at.as_micros(), Ordering::Relaxed);
    }
}

/// Consumer of admitted frames that needs the agent's **global stream
/// coordinates**, not just the payload — what a leaf collector's uplink
/// implements so it can re-frame digests upstream at the exact positions
/// the originating agents encoded them at (see `crate::leaf`).
pub trait AdmittedSink: Send + Sync {
    /// One fresh admitted frame for `host`: its synopses, the loss this
    /// frame newly revealed on the agent link, and the host's global
    /// stream position just past the frame's last synopsis (i.e. the
    /// frame's `cumulative` + `synopses.len()`).
    fn on_fresh(
        &self,
        host: HostId,
        synopses: Vec<TaskSynopsis>,
        newly_lost: u64,
        stream_pos_end: u64,
    );
}

/// Where admitted frames' synopses go: raw batches for the classic
/// analyzer input, SoA batches for [`spawn_batch_analyzer_pool`]
/// (`saad_core::pipeline`) — interned at the collector edge so the whole
/// downstream path works in dense column arrays — or an [`AdmittedSink`]
/// forwarding digests upstream (the leaf-collector role).
pub(crate) enum SynopsisOut {
    Raw(Sender<Vec<TaskSynopsis>>),
    Soa {
        tx: Sender<SynopsisBatch>,
        interner: Arc<SignatureInterner>,
    },
    Forward(Arc<dyn AdmittedSink>),
}

impl SynopsisOut {
    /// Forward one admitted frame outcome; returns synopses forwarded.
    /// `pos_end` is the frame's end position in the sender's global
    /// stream coordinates (only the `Forward` sink needs it).
    pub(crate) fn feed(
        &self,
        outcome: FrameOutcome,
        loss_tx: &Sender<LossReport>,
        pos_end: u64,
    ) -> usize {
        match self {
            SynopsisOut::Raw(tx) => feed_frame(outcome, tx, loss_tx),
            SynopsisOut::Soa { tx, interner } => feed_frame_soa(outcome, tx, interner, loss_tx),
            SynopsisOut::Forward(sink) => match outcome {
                FrameOutcome::Fresh {
                    host,
                    synopses,
                    newly_lost,
                } => {
                    let n = synopses.len();
                    sink.on_fresh(host, synopses, newly_lost, pos_end);
                    n
                }
                FrameOutcome::Duplicate { .. } => 0,
            },
        }
    }
}

struct Shared {
    receiver: Mutex<FrameReceiver>,
    out: SynopsisOut,
    loss_tx: Sender<LossReport>,
    shutdown: AtomicBool,
    counters: Counters,
    config: CollectorConfig,
    /// Live connection sockets, keyed by connection id, so shutdown can
    /// unblock handlers stuck in a read.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handler_joins: Mutex<Vec<JoinHandle<()>>>,
}

/// A running collector server. Dropping without calling
/// [`Collector::shutdown`] leaves the accept thread running for the
/// process lifetime; call `shutdown` for a clean stop and to recover the
/// link state.
pub struct Collector {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_join: Option<JoinHandle<()>>,
}

impl Collector {
    /// Bind a fresh collector (empty link state) on `addr` and start
    /// accepting. `addr` may use port 0; see [`Collector::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        batch_tx: Sender<Vec<TaskSynopsis>>,
        loss_tx: Sender<LossReport>,
        config: CollectorConfig,
    ) -> io::Result<Collector> {
        Collector::with_state(addr, CollectorState::default(), batch_tx, loss_tx, config)
    }

    /// Like [`Collector::bind`], but admitted synopses are interned (into
    /// `interner`, shared with the consuming batch pool) and forwarded as
    /// SoA [`SynopsisBatch`]es — one batch send per admitted frame, no
    /// per-synopsis sends anywhere past the decoder.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_soa<A: ToSocketAddrs>(
        addr: A,
        batch_tx: Sender<SynopsisBatch>,
        interner: Arc<SignatureInterner>,
        loss_tx: Sender<LossReport>,
        config: CollectorConfig,
    ) -> io::Result<Collector> {
        Collector::serve_inner(
            TcpListener::bind(addr)?,
            CollectorState::default(),
            SynopsisOut::Soa {
                tx: batch_tx,
                interner,
            },
            loss_tx,
            config,
        )
    }

    /// Bind a collector whose admitted frames feed an [`AdmittedSink`]
    /// instead of an analyzer channel — the leaf-collector role: the sink
    /// re-frames synopses upstream in the agents' global stream
    /// coordinates. Agent-link loss is *not* reported locally (no
    /// [`LossReport`] channel); it is passed to the sink, which makes it
    /// visible to the root as a stream-position gap.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_forward<A: ToSocketAddrs>(
        addr: A,
        sink: Arc<dyn AdmittedSink>,
        config: CollectorConfig,
    ) -> io::Result<Collector> {
        // The Forward sink never reports loss locally; satisfy the shared
        // struct with a disconnected channel.
        let (loss_tx, _) = crossbeam_channel::unbounded();
        Collector::serve_inner(
            TcpListener::bind(addr)?,
            CollectorState::default(),
            SynopsisOut::Forward(sink),
            loss_tx,
            config,
        )
    }

    /// Bind a collector that adopts `state` — the receiver returned by a
    /// previous incarnation's [`Collector::shutdown`] — so per-host
    /// delivery and loss accounting continue exactly where they left off.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn with_state<A: ToSocketAddrs>(
        addr: A,
        state: CollectorState,
        batch_tx: Sender<Vec<TaskSynopsis>>,
        loss_tx: Sender<LossReport>,
        config: CollectorConfig,
    ) -> io::Result<Collector> {
        Collector::serve(TcpListener::bind(addr)?, state, batch_tx, loss_tx, config)
    }

    /// Serve on an already-bound listener (lets callers own the bind —
    /// e.g. retry a fixed port across a restart — without risking the
    /// carried-over `state` on a bind failure).
    ///
    /// # Errors
    ///
    /// Propagates a `local_addr` query failure.
    pub fn serve(
        listener: TcpListener,
        state: CollectorState,
        batch_tx: Sender<Vec<TaskSynopsis>>,
        loss_tx: Sender<LossReport>,
        config: CollectorConfig,
    ) -> io::Result<Collector> {
        Collector::serve_inner(listener, state, SynopsisOut::Raw(batch_tx), loss_tx, config)
    }

    /// SoA counterpart of [`Collector::serve`]: serve on an already-bound
    /// listener with carried-over `state`, forwarding admitted synopses as
    /// [`SynopsisBatch`]es interned into `interner`.
    ///
    /// # Errors
    ///
    /// Propagates a `local_addr` query failure.
    pub fn serve_soa(
        listener: TcpListener,
        state: CollectorState,
        batch_tx: Sender<SynopsisBatch>,
        interner: Arc<SignatureInterner>,
        loss_tx: Sender<LossReport>,
        config: CollectorConfig,
    ) -> io::Result<Collector> {
        Collector::serve_inner(
            listener,
            state,
            SynopsisOut::Soa {
                tx: batch_tx,
                interner,
            },
            loss_tx,
            config,
        )
    }

    fn serve_inner(
        listener: TcpListener,
        state: CollectorState,
        out: SynopsisOut,
        loss_tx: Sender<LossReport>,
        config: CollectorConfig,
    ) -> io::Result<Collector> {
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            receiver: Mutex::new(state.receiver),
            out,
            loss_tx,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            config,
            conns: Mutex::new(HashMap::new()),
            handler_joins: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept_join = std::thread::Builder::new()
            .name("saad-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Collector {
            local_addr,
            shared,
            accept_join: Some(accept_join),
        })
    }

    /// The bound address — the actual port when bound with port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of collector-wide counters (takes the receiver lock
    /// briefly for link totals).
    pub fn stats(&self) -> CollectorStats {
        let c = &self.shared.counters;
        let (corrupted, duplicates, lost) = {
            let rx = self.shared.receiver.lock();
            let (mut dup, mut lost) = (0u64, 0u64);
            for (_, s) in rx.all_stats() {
                dup += s.duplicate_frames;
                lost += s.lost_synopses;
            }
            (rx.corrupted_frames(), dup, lost)
        };
        CollectorStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_active: c.connections_active.load(Ordering::Relaxed),
            handshakes_rejected: c.handshakes_rejected.load(Ordering::Relaxed),
            stale_epoch_rejects: c.stale_epoch_rejects.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            synopses: c.synopses.load(Ordering::Relaxed),
            corrupted_frames: corrupted,
            duplicate_frames: duplicates,
            lost_synopses: lost,
            watermark: SimTime::from_micros(c.watermark_micros.load(Ordering::Relaxed)),
        }
    }

    /// Link statistics for one host (zeroes if never heard from).
    pub fn link_stats(&self, host: HostId) -> LinkStats {
        self.shared.receiver.lock().stats(host)
    }

    /// Expose the collector's live counters in `registry`. Every series
    /// is a scrape-time callback over counters the collector already
    /// maintains; the ones aggregating link totals take the receiver
    /// lock briefly at scrape time, exactly like [`Collector::stats`].
    pub fn register_metrics(&self, registry: &saad_obs::Registry) {
        // The registry typically outlives the collector, and `Shared`
        // owns the analyzer-side senders: a strong capture here would
        // keep the batch channel open after shutdown and deadlock
        // downstream joins. Scrapes after shutdown read zero.
        let counter = |f: fn(&Counters) -> &AtomicU64| {
            let shared = Arc::downgrade(&self.shared);
            move || {
                shared
                    .upgrade()
                    .map_or(0, |s| f(&s.counters).load(Ordering::Relaxed))
            }
        };
        registry.register_counter_fn(
            "saad_collector_connections_accepted_total",
            "Agent connections accepted since collector start",
            &[],
            counter(|c| &c.connections_accepted),
        );
        registry.register_counter_fn(
            "saad_collector_handshakes_rejected_total",
            "Handshakes refused (bad magic/checksum or version skew)",
            &[],
            counter(|c| &c.handshakes_rejected),
        );
        registry.register_counter_fn(
            "saad_collector_stale_epoch_rejects_total",
            "Handshakes refused because the peer routed by a stale ring epoch",
            &[],
            counter(|c| &c.stale_epoch_rejects),
        );
        registry.register_counter_fn(
            "saad_collector_frames_total",
            "Fresh (non-duplicate) frames admitted",
            &[],
            counter(|c| &c.frames),
        );
        registry.register_counter_fn(
            "saad_collector_synopses_total",
            "Synopses forwarded to the analyzer input",
            &[],
            counter(|c| &c.synopses),
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_gauge_fn(
            "saad_collector_connections_active",
            "Agent connections currently streaming",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    s.counters.connections_active.load(Ordering::Relaxed) as i64
                })
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_gauge_fn(
            "saad_collector_watermark_us",
            "Highest synopsis start time admitted on any connection, in stream microseconds",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    s.counters.watermark_micros.load(Ordering::Relaxed) as i64
                })
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_counter_fn(
            "saad_collector_corrupted_frames_total",
            "Frames rejected as corrupt (checksum, truncation, oversize, codec)",
            &[],
            move || {
                shared
                    .upgrade()
                    .map_or(0, |s| s.receiver.lock().corrupted_frames())
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_counter_fn(
            "saad_collector_duplicate_frames_total",
            "Duplicate frames discarded across all hosts",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    let rx = s.receiver.lock();
                    rx.all_stats().map(|(_, st)| st.duplicate_frames).sum()
                })
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_counter_fn(
            "saad_collector_lost_synopses_total",
            "Synopses known lost across all hosts (exact at quiescence)",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    let rx = s.receiver.lock();
                    rx.all_stats().map(|(_, st)| st.lost_synopses).sum()
                })
            },
        );
    }

    /// Stop accepting, close every live connection, join all handler
    /// threads, and return the final link state for a successor collector.
    pub fn shutdown(mut self) -> CollectorState {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock handlers stuck mid-read (their poll timeout would catch
        // the flag anyway; this just makes shutdown prompt).
        for stream in self.shared.conns.lock().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        let joins = std::mem::take(&mut *self.shared.handler_joins.lock());
        for join in joins {
            let _ = join.join();
        }
        CollectorState {
            receiver: std::mem::take(&mut *self.shared.receiver.lock()),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_conn_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        let _ = stream.set_read_timeout(Some(shared.config.read_poll));
        let _ = stream.set_nodelay(true);
        if let Some(bytes) = shared.config.recv_buffer {
            let _ = saad_reactor::set_recv_buffer(&stream, bytes);
        }
        if let Ok(registered) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, registered);
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        let handler_shared = shared.clone();
        let join = std::thread::Builder::new()
            .name(format!("saad-net-conn-{conn_id}"))
            .spawn(move || {
                handle_connection(stream, &handler_shared);
                handler_shared.conns.lock().remove(&conn_id);
                handler_shared
                    .counters
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection handler");
        shared.handler_joins.lock().push(join);
    }
}

/// Handshake then stream frames until EOF, error, or shutdown.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let keep_going = || !shared.shutdown.load(Ordering::SeqCst);

    // --- Handshake ---------------------------------------------------
    // Two-phase read: the 36-byte v1 prefix is byte-identical across
    // versions and announces which version — and therefore how many
    // extension bytes — follow. A decode failure is answered in the v1
    // wire form, the only one an unidentified peer is guaranteed to read.
    let mut prefix = [0u8; HELLO_V1_LEN];
    match read_full(&mut stream, &mut prefix, keep_going) {
        Ok(true) => {}
        Ok(false) | Err(_) => return,
    }
    let mut hello = match decode_hello_prefix(&prefix) {
        Ok(h) => h,
        Err(_) => {
            reject(&mut stream, shared, RejectReason::Malformed, 1);
            return;
        }
    };
    if hello_ext_len(hello.version) > 0 {
        let mut ext = [0u8; HELLO_EXT_LEN];
        match read_full(&mut stream, &mut ext, keep_going) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        if apply_hello_ext(&mut hello, &prefix, &ext).is_err() {
            reject(&mut stream, shared, RejectReason::Malformed, hello.version);
            return;
        }
    }
    // From here every reply is formatted by the *peer's* announced
    // version, so even a rejected old-protocol agent reads a complete,
    // decodable ack and terminates cleanly instead of hanging.
    if hello.version != shared.config.version {
        reject(
            &mut stream,
            shared,
            RejectReason::VersionMismatch,
            hello.version,
        );
        return;
    }
    if stale_epoch(shared, &hello) {
        shared
            .counters
            .stale_epoch_rejects
            .fetch_add(1, Ordering::Relaxed);
        reject(&mut stream, shared, RejectReason::StaleEpoch, hello.version);
        return;
    }
    let (last_seq, delivered_cum) = {
        let mut rx = shared.receiver.lock();
        rx.resume(
            hello.host,
            hello.written_cum,
            hello.sent_cum,
            hello.next_seq,
        );
        (
            rx.highest_seq(hello.host).unwrap_or(NO_SEQ),
            rx.stats(hello.host).delivered_synopses,
        )
    };
    let ack = HelloAck {
        version: shared.config.version,
        accept: true,
        reason: RejectReason::None,
        last_seq,
        delivered_cum,
        epoch: current_epoch(shared),
    };
    if stream
        .write_ack(&encode_hello_ack(&ack, hello.version))
        .is_err()
    {
        return;
    }

    // --- Frame stream ------------------------------------------------
    let mut len_buf = [0u8; 4];
    let mut body = Vec::new();
    loop {
        match read_full(&mut stream, &mut len_buf, keep_going) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_MESSAGE_LEN {
            // A nonsense prefix means we can no longer find message
            // boundaries; the stream is unrecoverable.
            shared.receiver.lock().record_corrupted();
            return;
        }
        body.resize(len, 0);
        match read_full(&mut stream, &mut body, keep_going) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        // Expensive validation/decoding outside the shared lock.
        let parsed = match parse_frame(&body) {
            Ok(p) => p,
            Err(_) => {
                // Body corrupt but the length prefix framed it correctly;
                // later messages remain readable.
                shared.receiver.lock().record_corrupted();
                continue;
            }
        };
        let max_start = parsed
            .synopses
            .iter()
            .map(|s| s.start)
            .max()
            .unwrap_or(SimTime::ZERO);
        // End of this frame in the sender's global stream coordinates —
        // what a forwarding sink re-frames at so gaps stay visible
        // upstream.
        let pos_end = parsed.cumulative + parsed.synopses.len() as u64;
        let outcome = shared.receiver.lock().admit(parsed);
        let is_fresh = matches!(outcome, FrameOutcome::Fresh { .. });
        let forwarded = shared.out.feed(outcome, &shared.loss_tx, pos_end);
        if is_fresh {
            shared.counters.frames.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .synopses
                .fetch_add(forwarded as u64, Ordering::Relaxed);
            shared.counters.stamp_watermark(max_start);
        }
    }
}

/// Current enforced epoch, or 0 when the collector enforces none.
fn current_epoch(shared: &Shared) -> u64 {
    shared
        .config
        .epoch
        .as_ref()
        .map_or(0, |e| e.load(Ordering::SeqCst))
}

/// Did this hello route by a ring epoch older than the enforced one?
/// [`PINNED_EPOCH`] peers (and all v1 peers, which decode to it) are
/// never stale: they did not route through a ring at all.
fn stale_epoch(shared: &Shared, hello: &Hello) -> bool {
    match &shared.config.epoch {
        Some(e) => hello.epoch != PINNED_EPOCH && hello.epoch < e.load(Ordering::SeqCst),
        None => false,
    }
}

/// Refuse the handshake, formatting the ack in `wire_version` — the
/// **peer's** announced version — so the rejected peer can decode it.
fn reject(stream: &mut TcpStream, shared: &Shared, reason: RejectReason, wire_version: u16) {
    shared
        .counters
        .handshakes_rejected
        .fetch_add(1, Ordering::Relaxed);
    let ack = HelloAck {
        version: shared.config.version,
        accept: false,
        reason,
        last_seq: NO_SEQ,
        delivered_cum: 0,
        epoch: current_epoch(shared),
    };
    let _ = stream.write_ack(&encode_hello_ack(&ack, wire_version));
}

/// Small extension so ack writes read naturally above.
trait WriteAck {
    fn write_ack(&mut self, bytes: &[u8]) -> io::Result<()>;
}

impl WriteAck for TcpStream {
    fn write_ack(&mut self, bytes: &[u8]) -> io::Result<()> {
        use io::Write;
        self.write_all(bytes)?;
        self.flush()
    }
}
