//! The readiness-driven collector: thousands of agent connections
//! multiplexed over a few [`saad_reactor`] event-loop threads.
//!
//! The thread-per-connection [`Collector`](crate::Collector) is the
//! conformance oracle: same handshake, same framing, same
//! [`FrameReceiver`] sequencing, same batch/loss-report feed contract.
//! What changes is the execution model. Each accepted connection is
//! assigned round-robin to one of `loops` event-loop threads and never
//! migrates; its entire life — handshake state machine, vectored reads
//! into a per-connection [`RingBuf`](saad_reactor::RingBuf), incremental
//! frame decode — runs on that loop thread, touched only when the kernel
//! reports the socket ready.
//!
//! The hot path is allocation-minimal: socket bytes land directly in the
//! connection's ring via `read_vectored`, frames are decoded **in
//! place** from the ring ([`decode_batch_into`]) straight into the
//! columns of a staging [`SynopsisBatch`], and sequencing uses
//! [`FrameReceiver::admit_meta`] — the payload never materializes as a
//! `Vec<TaskSynopsis>` or per-synopsis `log_points` vectors. One
//! `SynopsisBatch` allocation per fresh frame (the batch handed
//! downstream), zero per synopsis.
//!
//! Backpressure is unchanged from the threaded collector: the batch
//! channel send blocks the loop thread when the analyzer falls behind,
//! which stops reads on every connection of that loop and lets TCP flow
//! control push back to the agents.
//!
//! See DESIGN.md §16 for the architecture and buffer-ownership rules.

use crate::collector::{CollectorState, CollectorStats, Counters, SynopsisOut};
use crate::framing::FrameAssembler;
use crate::protocol::{
    apply_hello_ext, decode_hello_prefix, encode_hello_ack, hello_ext_len, Hello, HelloAck,
    RejectReason, HELLO_EXT_LEN, HELLO_V1_LEN, NO_SEQ, PINNED_EPOCH, PROTOCOL_VERSION,
};
use crossbeam_channel::Sender;
use parking_lot::Mutex;
use saad_core::batch::SynopsisBatch;
use saad_core::codec::decode_batch_into;
use saad_core::intern::SignatureInterner;
use saad_core::synopsis::TaskSynopsis;
use saad_core::transport::{
    parse_frame, parse_frame_header, verify_frame_crc, AdmitDecision, FrameOutcome, FrameReceiver,
    LinkStats, LossReport, FRAME_HEADER_LEN,
};
use saad_core::HostId;
use saad_reactor::{Backend, EventLoop, Interest, Token, Waker, WAKE_TOKEN};
use saad_sim::SimTime;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Token of the accept listener (event loop 0 only).
const LISTENER: Token = Token(0);
/// Token of the per-loop heartbeat timer (shutdown safety net).
const TICK: Token = Token(1);
/// First token handed to a connection.
const FIRST_CONN: u64 = 2;

/// Tuning for a [`ReactorCollector`].
#[derive(Debug, Clone)]
pub struct ReactorCollectorConfig {
    /// Event-loop threads. Connections are assigned round-robin at
    /// accept and never migrate.
    pub loops: usize,
    /// Protocol version this collector accepts (normally
    /// [`PROTOCOL_VERSION`]).
    pub version: u16,
    /// Live control-plane epoch to enforce (see
    /// [`CollectorConfig::epoch`](crate::CollectorConfig)).
    pub epoch: Option<Arc<AtomicU64>>,
    /// Heartbeat timer bounding how long a loop sleeps without checking
    /// the shutdown flag (wakes normally make shutdown prompt; this is
    /// the safety net).
    pub tick: Duration,
    /// Initial per-connection ring-buffer capacity in bytes; rings grow
    /// on demand up to the largest legal message.
    pub initial_ring: usize,
    /// Readiness backend override (`None` = best available). Forcing
    /// [`Backend::Poll`] exercises the fallback path on Linux.
    pub backend: Option<Backend>,
    /// Kernel receive-buffer clamp applied to every accepted connection
    /// (`None` leaves the OS default and its autotuning); see
    /// [`CollectorConfig::recv_buffer`](crate::CollectorConfig).
    pub recv_buffer: Option<usize>,
}

impl Default for ReactorCollectorConfig {
    fn default() -> ReactorCollectorConfig {
        ReactorCollectorConfig {
            loops: 2,
            version: PROTOCOL_VERSION,
            epoch: None,
            tick: Duration::from_millis(50),
            initial_ring: 16 * 1024,
            backend: None,
            recv_buffer: None,
        }
    }
}

/// Per-loop observability counters, exported as `saad_reactor_*` series.
#[derive(Debug, Default)]
pub(crate) struct LoopMetrics {
    pub(crate) polls: AtomicU64,
    pub(crate) spurious_polls: AtomicU64,
    pub(crate) wakeups: AtomicU64,
    pub(crate) read_bytes: AtomicU64,
    pub(crate) decode_stalls: AtomicU64,
    pub(crate) registered_fds: AtomicU64,
    pub(crate) connections: AtomicU64,
}

struct RShared {
    receiver: Mutex<FrameReceiver>,
    out: SynopsisOut,
    loss_tx: Sender<LossReport>,
    shutdown: AtomicBool,
    counters: Counters,
    config: ReactorCollectorConfig,
    loop_metrics: Vec<Arc<LoopMetrics>>,
    /// Connections accepted on loop 0 awaiting adoption by their target
    /// loop, which is nudged via its waker.
    inject: Vec<Mutex<Vec<TcpStream>>>,
    wakers: Vec<Waker>,
    conn_seq: AtomicU64,
}

/// A running readiness-driven collector. Call
/// [`ReactorCollector::shutdown`] for a clean stop and to recover the
/// link state for a successor.
pub struct ReactorCollector {
    local_addr: SocketAddr,
    shared: Arc<RShared>,
    joins: Vec<JoinHandle<()>>,
}

impl ReactorCollector {
    /// Bind a fresh reactor collector (empty link state) on `addr`,
    /// feeding raw synopsis batches.
    ///
    /// # Errors
    ///
    /// Propagates bind, event-loop, or waker creation failure.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        batch_tx: Sender<Vec<TaskSynopsis>>,
        loss_tx: Sender<LossReport>,
        config: ReactorCollectorConfig,
    ) -> io::Result<ReactorCollector> {
        ReactorCollector::with_state(addr, CollectorState::default(), batch_tx, loss_tx, config)
    }

    /// Like [`ReactorCollector::bind`] but feeding SoA
    /// [`SynopsisBatch`]es interned into `interner` — the zero-copy hot
    /// path: ring → batch columns, no intermediate `Vec<TaskSynopsis>`.
    ///
    /// # Errors
    ///
    /// Propagates bind, event-loop, or waker creation failure.
    pub fn bind_soa<A: ToSocketAddrs>(
        addr: A,
        batch_tx: Sender<SynopsisBatch>,
        interner: Arc<SignatureInterner>,
        loss_tx: Sender<LossReport>,
        config: ReactorCollectorConfig,
    ) -> io::Result<ReactorCollector> {
        ReactorCollector::serve_inner(
            TcpListener::bind(addr)?,
            CollectorState::default(),
            SynopsisOut::Soa {
                tx: batch_tx,
                interner,
            },
            loss_tx,
            config,
        )
    }

    /// Bind adopting carried-over `state` (see
    /// [`Collector::with_state`](crate::Collector::with_state)).
    ///
    /// # Errors
    ///
    /// Propagates bind, event-loop, or waker creation failure.
    pub fn with_state<A: ToSocketAddrs>(
        addr: A,
        state: CollectorState,
        batch_tx: Sender<Vec<TaskSynopsis>>,
        loss_tx: Sender<LossReport>,
        config: ReactorCollectorConfig,
    ) -> io::Result<ReactorCollector> {
        ReactorCollector::serve(TcpListener::bind(addr)?, state, batch_tx, loss_tx, config)
    }

    /// Serve on an already-bound listener with carried-over `state`.
    ///
    /// # Errors
    ///
    /// Propagates event-loop or waker creation failure.
    pub fn serve(
        listener: TcpListener,
        state: CollectorState,
        batch_tx: Sender<Vec<TaskSynopsis>>,
        loss_tx: Sender<LossReport>,
        config: ReactorCollectorConfig,
    ) -> io::Result<ReactorCollector> {
        ReactorCollector::serve_inner(listener, state, SynopsisOut::Raw(batch_tx), loss_tx, config)
    }

    /// SoA counterpart of [`ReactorCollector::serve`].
    ///
    /// # Errors
    ///
    /// Propagates event-loop or waker creation failure.
    pub fn serve_soa(
        listener: TcpListener,
        state: CollectorState,
        batch_tx: Sender<SynopsisBatch>,
        interner: Arc<SignatureInterner>,
        loss_tx: Sender<LossReport>,
        config: ReactorCollectorConfig,
    ) -> io::Result<ReactorCollector> {
        ReactorCollector::serve_inner(
            listener,
            state,
            SynopsisOut::Soa {
                tx: batch_tx,
                interner,
            },
            loss_tx,
            config,
        )
    }

    fn serve_inner(
        listener: TcpListener,
        state: CollectorState,
        out: SynopsisOut,
        loss_tx: Sender<LossReport>,
        config: ReactorCollectorConfig,
    ) -> io::Result<ReactorCollector> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let nloops = config.loops.max(1);
        // Build every event loop up front so all wakers exist before any
        // loop starts accepting (loop 0 needs peers' wakers to hand off
        // connections).
        let mut els = Vec::with_capacity(nloops);
        let mut wakers = Vec::with_capacity(nloops);
        for _ in 0..nloops {
            let el = match config.backend {
                Some(b) => EventLoop::with_backend(b)?,
                None => EventLoop::new()?,
            };
            wakers.push(el.waker()?);
            els.push(el);
        }
        let shared = Arc::new(RShared {
            receiver: Mutex::new(state.into_receiver()),
            out,
            loss_tx,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            config,
            loop_metrics: (0..nloops)
                .map(|_| Arc::new(LoopMetrics::default()))
                .collect(),
            inject: (0..nloops).map(|_| Mutex::new(Vec::new())).collect(),
            wakers,
            conn_seq: AtomicU64::new(0),
        });
        let mut listener = Some(listener);
        let joins = els
            .into_iter()
            .enumerate()
            .map(|(idx, el)| {
                let loop_shared = shared.clone();
                let loop_listener = if idx == 0 { listener.take() } else { None };
                std::thread::Builder::new()
                    .name(format!("saad-reactor-{idx}"))
                    .spawn(move || run_loop(idx, el, loop_listener, &loop_shared))
                    .expect("spawn reactor loop")
            })
            .collect();
        Ok(ReactorCollector {
            local_addr,
            shared,
            joins,
        })
    }

    /// The bound address — the actual port when bound with port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of collector-wide counters (same shape as the threaded
    /// collector's, so harnesses compare them directly).
    pub fn stats(&self) -> CollectorStats {
        let c = &self.shared.counters;
        let (corrupted, duplicates, lost) = {
            let rx = self.shared.receiver.lock();
            let (mut dup, mut lost) = (0u64, 0u64);
            for (_, s) in rx.all_stats() {
                dup += s.duplicate_frames;
                lost += s.lost_synopses;
            }
            (rx.corrupted_frames(), dup, lost)
        };
        CollectorStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_active: c.connections_active.load(Ordering::Relaxed),
            handshakes_rejected: c.handshakes_rejected.load(Ordering::Relaxed),
            stale_epoch_rejects: c.stale_epoch_rejects.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            synopses: c.synopses.load(Ordering::Relaxed),
            corrupted_frames: corrupted,
            duplicate_frames: duplicates,
            lost_synopses: lost,
            watermark: SimTime::from_micros(c.watermark_micros.load(Ordering::Relaxed)),
        }
    }

    /// Link statistics for one host (zeroes if never heard from).
    pub fn link_stats(&self, host: HostId) -> LinkStats {
        self.shared.receiver.lock().stats(host)
    }

    /// Expose the reactor collector's counters in `registry` as
    /// `saad_reactor_*` series: collector-wide totals plus per-loop
    /// readiness health (registered fds, wakeups, spurious polls, read
    /// bytes, decode stalls), each labeled `loop="<idx>"`. All are
    /// scrape-time callbacks over weak references, so a dropped
    /// collector scrapes as zero instead of pinning its channels open.
    pub fn register_metrics(&self, registry: &saad_obs::Registry) {
        let counter = |f: fn(&Counters) -> &AtomicU64| {
            let shared = Arc::downgrade(&self.shared);
            move || {
                shared
                    .upgrade()
                    .map_or(0, |s| f(&s.counters).load(Ordering::Relaxed))
            }
        };
        registry.register_counter_fn(
            "saad_reactor_connections_accepted_total",
            "Agent connections accepted since reactor collector start",
            &[],
            counter(|c| &c.connections_accepted),
        );
        registry.register_counter_fn(
            "saad_reactor_handshakes_rejected_total",
            "Handshakes refused by the reactor collector",
            &[],
            counter(|c| &c.handshakes_rejected),
        );
        registry.register_counter_fn(
            "saad_reactor_frames_total",
            "Fresh (non-duplicate) frames admitted by the reactor collector",
            &[],
            counter(|c| &c.frames),
        );
        registry.register_counter_fn(
            "saad_reactor_synopses_total",
            "Synopses forwarded to the analyzer input by the reactor collector",
            &[],
            counter(|c| &c.synopses),
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_gauge_fn(
            "saad_reactor_connections_active",
            "Agent connections currently owned by reactor loops",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    s.counters.connections_active.load(Ordering::Relaxed) as i64
                })
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_gauge_fn(
            "saad_reactor_watermark_us",
            "Highest synopsis start time admitted by the reactor collector, in stream microseconds",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    s.counters.watermark_micros.load(Ordering::Relaxed) as i64
                })
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_counter_fn(
            "saad_reactor_corrupted_frames_total",
            "Frames rejected as corrupt by the reactor collector",
            &[],
            move || {
                shared
                    .upgrade()
                    .map_or(0, |s| s.receiver.lock().corrupted_frames())
            },
        );
        let shared = Arc::downgrade(&self.shared);
        registry.register_counter_fn(
            "saad_reactor_lost_synopses_total",
            "Synopses known lost across all hosts (exact at quiescence)",
            &[],
            move || {
                shared.upgrade().map_or(0, |s| {
                    let rx = s.receiver.lock();
                    rx.all_stats().map(|(_, st)| st.lost_synopses).sum()
                })
            },
        );
        for idx in 0..self.shared.loop_metrics.len() {
            let label = idx.to_string();
            let per_loop = |f: fn(&LoopMetrics) -> &AtomicU64| {
                let shared = Arc::downgrade(&self.shared);
                move || {
                    shared
                        .upgrade()
                        .map_or(0, |s| f(&s.loop_metrics[idx]).load(Ordering::Relaxed))
                }
            };
            registry.register_counter_fn(
                "saad_reactor_wakeups_total",
                "Cross-thread wake-token deliveries per event loop",
                &[("loop", &label)],
                per_loop(|m| &m.wakeups),
            );
            registry.register_counter_fn(
                "saad_reactor_polls_total",
                "Completed readiness polls per event loop",
                &[("loop", &label)],
                per_loop(|m| &m.polls),
            );
            registry.register_counter_fn(
                "saad_reactor_spurious_polls_total",
                "Polls that delivered no events, per event loop",
                &[("loop", &label)],
                per_loop(|m| &m.spurious_polls),
            );
            registry.register_counter_fn(
                "saad_reactor_read_bytes_total",
                "Socket bytes landed in connection rings, per event loop",
                &[("loop", &label)],
                per_loop(|m| &m.read_bytes),
            );
            registry.register_counter_fn(
                "saad_reactor_decode_stalls_total",
                "Drains that ended on a partial message, per event loop",
                &[("loop", &label)],
                per_loop(|m| &m.decode_stalls),
            );
            let fds = per_loop(|m| &m.registered_fds);
            registry.register_gauge_fn(
                "saad_reactor_registered_fds",
                "Sources currently registered with the loop's poller",
                &[("loop", &label)],
                move || fds() as i64,
            );
            let conns = per_loop(|m| &m.connections);
            registry.register_gauge_fn(
                "saad_reactor_loop_connections",
                "Agent connections currently owned by this event loop",
                &[("loop", &label)],
                move || conns() as i64,
            );
        }
    }

    /// Stop every loop, close every connection, join the loop threads,
    /// and return the final link state for a successor collector.
    pub fn shutdown(mut self) -> CollectorState {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.shared.wakers {
            waker.wake();
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
        CollectorState::from_receiver(std::mem::take(&mut *self.shared.receiver.lock()))
    }
}

/// Handshake progress of one connection.
enum Phase {
    /// Awaiting the version-independent 36-byte hello prefix.
    Prefix,
    /// Awaiting the v2 extension block.
    Ext,
    /// Handshake done; length-prefixed frame stream.
    Streaming,
}

struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    phase: Phase,
    /// The hello prefix bytes, kept because the v2 extension CRC covers
    /// them.
    prefix: [u8; HELLO_V1_LEN],
    pending_hello: Option<Hello>,
    /// Outbound ack bytes not yet written (acks are the only thing the
    /// collector sends).
    out_buf: Vec<u8>,
    out_off: usize,
    /// Close once `out_buf` drains (set on handshake rejection).
    closing: bool,
    /// Per-connection staging batch the incremental decoder fills;
    /// swapped out whole on a fresh frame, cleared on a duplicate.
    staging: SynopsisBatch,
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream, initial_ring: usize) -> Conn {
        Conn {
            stream,
            assembler: FrameAssembler::new(initial_ring),
            phase: Phase::Prefix,
            prefix: [0u8; HELLO_V1_LEN],
            pending_hello: None,
            out_buf: Vec::new(),
            out_off: 0,
            closing: false,
            staging: SynopsisBatch::new(),
            interest: Interest::READABLE,
        }
    }

    fn out_done(&self) -> bool {
        self.out_off >= self.out_buf.len()
    }

    /// Read until `WouldBlock`, then process everything buffered.
    /// Returns `false` when the connection must close.
    fn ingest(&mut self, shared: &RShared, metrics: &LoopMetrics) -> bool {
        let mut eof = false;
        loop {
            let ring = self.assembler.ring_mut();
            if ring.free() == 0 {
                let cap = ring.capacity();
                ring.grow(cap * 2);
            }
            let n = {
                let mut slices = ring.io_slices();
                match (&self.stream).read_vectored(&mut slices) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            };
            ring.commit(n);
            metrics.read_bytes.fetch_add(n as u64, Ordering::Relaxed);
        }
        // Process buffered bytes even on EOF: complete messages that
        // arrived with the FIN are still valid.
        let keep = self.process(shared, metrics);
        keep && !eof
    }

    /// Run the connection state machine over buffered bytes until more
    /// input is needed. Returns `false` on unrecoverable framing.
    fn process(&mut self, shared: &RShared, metrics: &LoopMetrics) -> bool {
        loop {
            if self.closing {
                // A rejected peer gets its ack flushed; nothing further
                // is parsed from it.
                return true;
            }
            match self.phase {
                Phase::Prefix => {
                    let ring = self.assembler.ring_mut();
                    let Some(bytes) = ring.contiguous(HELLO_V1_LEN) else {
                        return true;
                    };
                    self.prefix.copy_from_slice(bytes);
                    self.assembler.ring_mut().consume(HELLO_V1_LEN);
                    match decode_hello_prefix(&self.prefix) {
                        Ok(hello) => {
                            if hello_ext_len(hello.version) > 0 {
                                self.pending_hello = Some(hello);
                                self.phase = Phase::Ext;
                            } else {
                                self.finish_handshake(hello, shared);
                            }
                        }
                        // An unidentified peer gets the v1 wire form —
                        // the only one it is guaranteed to decode.
                        Err(_) => self.reject(shared, RejectReason::Malformed, 1),
                    }
                }
                Phase::Ext => {
                    let ext: [u8; HELLO_EXT_LEN] = {
                        let ring = self.assembler.ring_mut();
                        let Some(bytes) = ring.contiguous(HELLO_EXT_LEN) else {
                            return true;
                        };
                        bytes.try_into().expect("exact length")
                    };
                    self.assembler.ring_mut().consume(HELLO_EXT_LEN);
                    let mut hello = self.pending_hello.take().expect("ext follows prefix");
                    if apply_hello_ext(&mut hello, &self.prefix, &ext).is_err() {
                        let wire = hello.version;
                        self.reject(shared, RejectReason::Malformed, wire);
                    } else {
                        self.finish_handshake(hello, shared);
                    }
                }
                Phase::Streaming => match self.assembler.next_message() {
                    Ok(Some(msg)) => handle_message(msg, &mut self.staging, shared),
                    Ok(None) => {
                        if self.assembler.buffered() > 0 {
                            metrics.decode_stalls.fetch_add(1, Ordering::Relaxed);
                        }
                        return true;
                    }
                    Err(_) => {
                        // A nonsense length prefix: boundaries are lost,
                        // the stream is unrecoverable.
                        shared.receiver.lock().record_corrupted();
                        return false;
                    }
                },
            }
        }
    }

    /// Version/epoch checks, resume, and ack — byte-identical to the
    /// threaded collector's handshake tail.
    fn finish_handshake(&mut self, hello: Hello, shared: &RShared) {
        if hello.version != shared.config.version {
            self.reject(shared, RejectReason::VersionMismatch, hello.version);
            return;
        }
        if stale_epoch(shared, &hello) {
            shared
                .counters
                .stale_epoch_rejects
                .fetch_add(1, Ordering::Relaxed);
            self.reject(shared, RejectReason::StaleEpoch, hello.version);
            return;
        }
        let (last_seq, delivered_cum) = {
            let mut rx = shared.receiver.lock();
            rx.resume(
                hello.host,
                hello.written_cum,
                hello.sent_cum,
                hello.next_seq,
            );
            (
                rx.highest_seq(hello.host).unwrap_or(NO_SEQ),
                rx.stats(hello.host).delivered_synopses,
            )
        };
        let ack = HelloAck {
            version: shared.config.version,
            accept: true,
            reason: RejectReason::None,
            last_seq,
            delivered_cum,
            epoch: current_epoch(shared),
        };
        self.out_buf = encode_hello_ack(&ack, hello.version);
        self.out_off = 0;
        self.phase = Phase::Streaming;
    }

    /// Queue a rejection ack formatted in the **peer's** wire version
    /// and close once it flushes.
    fn reject(&mut self, shared: &RShared, reason: RejectReason, wire_version: u16) {
        shared
            .counters
            .handshakes_rejected
            .fetch_add(1, Ordering::Relaxed);
        let ack = HelloAck {
            version: shared.config.version,
            accept: false,
            reason,
            last_seq: NO_SEQ,
            delivered_cum: 0,
            epoch: current_epoch(shared),
        };
        self.out_buf = encode_hello_ack(&ack, wire_version);
        self.out_off = 0;
        self.closing = true;
    }

    /// Write pending ack bytes until done or `WouldBlock`. Returns
    /// `false` on write error.
    fn flush(&mut self) -> bool {
        while self.out_off < self.out_buf.len() {
            match (&self.stream).write(&self.out_buf[self.out_off..]) {
                Ok(0) => return false,
                Ok(n) => self.out_off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }
}

/// Validate, decode, sequence, and forward one complete message —
/// the per-frame contract shared with the threaded collector.
fn handle_message(msg: &[u8], staging: &mut SynopsisBatch, shared: &RShared) {
    match &shared.out {
        SynopsisOut::Soa { tx, interner } => {
            // Zero-copy path: header checks and payload decode straight
            // from the ring into the staging batch's columns.
            if msg.len() < FRAME_HEADER_LEN {
                shared.receiver.lock().record_corrupted();
                return;
            }
            let (header_bytes, payload) = msg.split_at(FRAME_HEADER_LEN);
            let header = match parse_frame_header(header_bytes) {
                Ok(h) => h,
                Err(_) => {
                    shared.receiver.lock().record_corrupted();
                    return;
                }
            };
            if payload.len() != header.payload_len as usize
                || verify_frame_crc(header_bytes, payload).is_err()
            {
                shared.receiver.lock().record_corrupted();
                return;
            }
            debug_assert!(staging.is_empty(), "staging must drain between frames");
            let n = match decode_batch_into(payload, staging, interner) {
                Ok(n) => n,
                Err(_) => {
                    // decode_batch_into already rolled the batch back.
                    shared.receiver.lock().record_corrupted();
                    return;
                }
            };
            let decision = shared.receiver.lock().admit_meta(
                header.host,
                header.seq,
                header.cumulative,
                n as u64,
            );
            match decision {
                AdmitDecision::Fresh { newly_lost } => {
                    // Watermarks are a running max, so the last one is
                    // the frame's max start.
                    let max_start = staging.watermarks.last().copied().unwrap_or(SimTime::ZERO);
                    if newly_lost > 0 {
                        // Loss first, stamped at the frame's first
                        // synopsis — same order and stamp as
                        // `feed_frame_soa`.
                        let at = staging.starts.first().copied().unwrap_or(SimTime::ZERO);
                        let _ = shared.loss_tx.send(LossReport {
                            host: header.host,
                            at,
                            count: newly_lost,
                        });
                    }
                    if n > 0 {
                        let batch = std::mem::replace(staging, SynopsisBatch::with_capacity(n));
                        let _ = tx.send(batch);
                    }
                    shared.counters.frames.fetch_add(1, Ordering::Relaxed);
                    shared
                        .counters
                        .synopses
                        .fetch_add(n as u64, Ordering::Relaxed);
                    shared.counters.stamp_watermark(max_start);
                }
                AdmitDecision::Duplicate => staging.clear(),
            }
        }
        other => {
            // Raw/Forward sinks need owned `TaskSynopsis` values anyway;
            // use the whole-frame parse like the threaded collector.
            let parsed = match parse_frame(msg) {
                Ok(p) => p,
                Err(_) => {
                    shared.receiver.lock().record_corrupted();
                    return;
                }
            };
            let max_start = parsed
                .synopses
                .iter()
                .map(|s| s.start)
                .max()
                .unwrap_or(SimTime::ZERO);
            let pos_end = parsed.cumulative + parsed.synopses.len() as u64;
            let outcome = shared.receiver.lock().admit(parsed);
            let is_fresh = matches!(outcome, FrameOutcome::Fresh { .. });
            let forwarded = other.feed(outcome, &shared.loss_tx, pos_end);
            if is_fresh {
                shared.counters.frames.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .synopses
                    .fetch_add(forwarded as u64, Ordering::Relaxed);
                shared.counters.stamp_watermark(max_start);
            }
        }
    }
}

fn current_epoch(shared: &RShared) -> u64 {
    shared
        .config
        .epoch
        .as_ref()
        .map_or(0, |e| e.load(Ordering::SeqCst))
}

fn stale_epoch(shared: &RShared, hello: &Hello) -> bool {
    match &shared.config.epoch {
        Some(e) => hello.epoch != PINNED_EPOCH && hello.epoch < e.load(Ordering::SeqCst),
        None => false,
    }
}

fn run_loop(idx: usize, mut el: EventLoop, listener: Option<TcpListener>, shared: &Arc<RShared>) {
    let metrics = shared.loop_metrics[idx].clone();
    if let Some(l) = &listener {
        el.register(l.as_raw_fd(), LISTENER, Interest::READABLE)
            .expect("register listener");
    }
    el.set_timer_after(shared.config.tick, TICK);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN;
    let mut events = Vec::new();
    loop {
        events.clear();
        if el.poll(&mut events, None).is_err() {
            // A failing wait would spin; treat it like shutdown.
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        for ev in &events {
            match ev.token {
                WAKE_TOKEN => {
                    let injected: Vec<TcpStream> = std::mem::take(&mut *shared.inject[idx].lock());
                    for stream in injected {
                        add_conn(&mut el, &mut conns, &mut next_token, stream, shared);
                    }
                }
                TICK => {
                    el.set_timer_after(shared.config.tick, TICK);
                }
                LISTENER => {
                    let l = listener.as_ref().expect("listener events only on loop 0");
                    accept_ready(&mut el, l, &mut conns, &mut next_token, idx, shared);
                }
                token => {
                    service_conn(
                        &mut el,
                        &mut conns,
                        token,
                        ev.readable || ev.hangup || ev.error,
                        shared,
                        &metrics,
                    );
                }
            }
        }
        let stats = el.stats();
        metrics.polls.store(stats.polls, Ordering::Relaxed);
        metrics
            .spurious_polls
            .store(stats.spurious_polls, Ordering::Relaxed);
        metrics.wakeups.store(stats.wakeups, Ordering::Relaxed);
        metrics
            .registered_fds
            .store(el.registered() as u64, Ordering::Relaxed);
        metrics
            .connections
            .store(conns.len() as u64, Ordering::Relaxed);
    }
    // Loop exit: drop every owned connection (closing the sockets) and
    // the listener, and zero the gauges.
    for (_, conn) in conns.drain() {
        let _ = el.deregister(conn.stream.as_raw_fd());
        shared
            .counters
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
    }
    metrics.registered_fds.store(0, Ordering::Relaxed);
    metrics.connections.store(0, Ordering::Relaxed);
}

/// Accept every pending connection and dispatch round-robin across
/// loops; remote loops are handed the socket via their inject queue and
/// nudged with a wake.
fn accept_ready(
    el: &mut EventLoop,
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    idx: usize,
    shared: &Arc<RShared>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        if let Some(bytes) = shared.config.recv_buffer {
            let _ = saad_reactor::set_recv_buffer(&stream, bytes);
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        let target = (id as usize) % shared.wakers.len();
        if target == idx {
            add_conn(el, conns, next_token, stream, shared);
        } else {
            shared.inject[target].lock().push(stream);
            shared.wakers[target].wake();
        }
    }
}

fn add_conn(
    el: &mut EventLoop,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    stream: TcpStream,
    shared: &Arc<RShared>,
) {
    let token = Token(*next_token);
    *next_token += 1;
    if el
        .register(stream.as_raw_fd(), token, Interest::READABLE)
        .is_err()
    {
        shared
            .counters
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
        return;
    }
    conns.insert(token.0, Conn::new(stream, shared.config.initial_ring));
}

/// Drive one connection for one readiness event: ingest if readable,
/// flush pending ack bytes, adjust interest, close when done.
fn service_conn(
    el: &mut EventLoop,
    conns: &mut HashMap<u64, Conn>,
    token: Token,
    readable: bool,
    shared: &Arc<RShared>,
    metrics: &LoopMetrics,
) {
    let Some(conn) = conns.get_mut(&token.0) else {
        // Already closed earlier in this drain; stale event.
        return;
    };
    let mut alive = true;
    if readable {
        alive = conn.ingest(shared, metrics);
    }
    if alive {
        alive = conn.flush();
    }
    if alive && conn.closing && conn.out_done() {
        alive = false;
    }
    if alive {
        let want = if conn.out_done() {
            Interest::READABLE
        } else {
            Interest::BOTH
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if el.reregister(fd, token, want).is_ok() {
                conn.interest = want;
            }
        }
    } else {
        let conn = conns.remove(&token.0).expect("present above");
        let _ = el.deregister(conn.stream.as_raw_fd());
        shared
            .counters
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
    }
}
