//! Wire-level synopsis ingestion: the distributed half of SAAD.
//!
//! The paper's deployment has a tracker shim on every server node
//! streaming tiny task synopses over the network to one statistical
//! analyzer. This crate supplies that link for the reproduction:
//!
//! * [`protocol`] — a versioned fixed-size handshake (`Hello` /
//!   `HelloAck`) followed by `u32` length-prefixed transport frames,
//!   everything CRC-32 checked.
//! * [`Collector`] — the server side: many concurrent connections, frame
//!   validation parallel per connection, sequencing under one shared
//!   [`FrameReceiver`](saad_core::transport::FrameReceiver), batches and
//!   [`LossReport`](saad_core::transport::LossReport)s flowing into the
//!   same channels `spawn_analyzer_pool_with_lifecycle` already consumes.
//! * [`Agent`] — the tracker side: a bounded queue with the in-process
//!   `DropNewest` / `DropOldest` / `Block` overload policies, a worker
//!   owning the socket and a persistent frame sequence, reconnect with
//!   jittered exponential backoff, and a resume handshake that turns
//!   every outage into exact loss accounting instead of silent gaps.
//!
//! Nothing is retransmitted: the detector is loss-aware by design
//! (`record_loss` + completeness), so the transport's job is to make
//! loss *visible and exact*, not to hide it.

#![warn(missing_docs)]

pub mod agent;
pub mod collector;
pub mod protocol;

pub use agent::{Agent, AgentConfig, AgentSink, AgentStats, BackoffConfig};
pub use collector::{Collector, CollectorConfig, CollectorState, CollectorStats};
pub use protocol::{Hello, HelloAck, RejectReason, PROTOCOL_VERSION};
