//! Wire-level synopsis ingestion: the distributed half of SAAD.
//!
//! The paper's deployment has a tracker shim on every server node
//! streaming tiny task synopses over the network to one statistical
//! analyzer. This crate supplies that link for the reproduction:
//!
//! * [`protocol`] — a versioned fixed-size handshake (`Hello` /
//!   `HelloAck`) followed by `u32` length-prefixed transport frames,
//!   everything CRC-32 checked.
//! * [`Collector`] — the server side: many concurrent connections, frame
//!   validation parallel per connection, sequencing under one shared
//!   [`FrameReceiver`](saad_core::transport::FrameReceiver), batches and
//!   [`LossReport`](saad_core::transport::LossReport)s flowing into the
//!   same channels `spawn_analyzer_pool_with_lifecycle` already consumes.
//! * [`ReactorCollector`] — the same collector contract on a
//!   readiness-driven core: a few [`saad_reactor`] event-loop threads
//!   multiplex thousands of connections, with vectored reads into
//!   per-connection rings and in-place frame decode ([`framing`]).
//! * [`Agent`] — the tracker side: a bounded queue with the in-process
//!   `DropNewest` / `DropOldest` / `Block` overload policies, a worker
//!   owning the socket and a persistent frame sequence, reconnect with
//!   jittered exponential backoff, and a resume handshake that turns
//!   every outage into exact loss accounting instead of silent gaps.
//!
//! Nothing is retransmitted: the detector is loss-aware by design
//! (`record_loss` + completeness), so the transport's job is to make
//! loss *visible and exact*, not to hide it.
//!
//! # Federation
//!
//! Above the single link, the crate also provides a two-tier collection
//! topology with the same exactness guarantee end to end:
//!
//! * [`ring`] — seeded rendezvous-hash host→leaf assignment published as
//!   immutable, epoch-versioned [`RingSnapshot`]s; join/leave re-homes
//!   only ~1/N of hosts.
//! * [`control`] — the [`ControlPlane`]: leaf registration, heartbeats,
//!   failure detection, and epoch republication; doubles as the
//!   [`LeafResolver`] agents consult before every connect attempt.
//! * [`leaf`] — [`LeafCollector`]: terminates a regional agent fleet and
//!   forwards windowed digests upstream **in the agents' global stream
//!   coordinates**, so any loss anywhere surfaces at the root as a
//!   cumulative-count gap.
//! * [`root`] — [`RootCollector`]: merges leaf uplinks with a
//!   sum/max law ([`DigestMerge`](saad_core::transport::DigestMerge))
//!   that reports each lost synopsis exactly once across failover, with
//!   zero double-counting.

#![warn(missing_docs)]

pub mod agent;
pub mod collector;
pub mod control;
pub mod framing;
pub mod leaf;
pub mod protocol;
pub mod reactor_collector;
pub mod ring;
pub mod root;

pub use agent::{Agent, AgentConfig, AgentSink, AgentStats, BackoffConfig};
pub use collector::{AdmittedSink, Collector, CollectorConfig, CollectorState, CollectorStats};
pub use control::{ControlPlane, MonitorHandle};
pub use framing::{FrameAssembler, OversizedPrefix};
pub use leaf::{LeafCollector, LeafConfig, LeafStats};
pub use protocol::{Hello, HelloAck, PeerRole, RejectReason, PROTOCOL_VERSION};
pub use reactor_collector::{ReactorCollector, ReactorCollectorConfig};
pub use ring::{LeafId, LeafResolver, PinnedResolver, RingSnapshot};
pub use root::{RootCollector, RootConfig, RootStats};
pub use saad_reactor::{set_recv_buffer, set_send_buffer};
