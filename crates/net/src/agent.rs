//! The tracker-side agent: a bounded send queue in front of a persistent
//! framed TCP connection to the collector.
//!
//! Producers hand synopsis batches to [`Agent::send`] (or stream single
//! synopses through an [`AgentSink`]); a worker thread owns the socket
//! and a persistent [`FrameSender`], so frame sequence numbers and
//! cumulative counts survive reconnects. The queue honors the same
//! [`OverloadPolicy`] semantics as the in-process
//! `ChannelSink` — `DropNewest`, `DropOldest`, and `Block` — with every
//! refused synopsis counted, never silently discarded.
//!
//! When the connection dies the worker reconnects with jittered
//! exponential backoff and replays the handshake, declaring its resume
//! position (`next_seq`, `sent_cum`, `written_cum`). Frames that failed
//! mid-write are **not retransmitted**: the sender counts their synopses
//! as wire-lost, and the gap surfaces on the collector as exact
//! `newly_lost` accounting (via cumulative-count arithmetic on the next
//! fresh frame, or via the resume handshake if the collector restarted).
//! Retransmission would trade bounded memory for at-least-once delivery
//! the detector does not need — it is loss-aware by design.

use crate::protocol::{
    decode_hello_ack, encode_hello, read_full, Hello, PeerRole, RejectReason, HELLO_ACK_LEN,
    HELLO_ACK_V1_LEN, PROTOCOL_VERSION,
};
use crate::ring::{LeafResolver, PinnedResolver};
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saad_core::pipeline::{DropCounts, OverloadPolicy};
use saad_core::synopsis::TaskSynopsis;
use saad_core::tracker::SynopsisSink;
use saad_core::transport::FrameSender;
use saad_core::HostId;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reconnect backoff tuning: exponential with multiplicative jitter.
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// First retry delay.
    pub initial: Duration,
    /// Ceiling on any single delay.
    pub max: Duration,
    /// Growth factor per consecutive failure.
    pub multiplier: f64,
    /// Each delay is scaled by a uniform factor in `[1−jitter, 1+jitter]`
    /// so a fleet of agents does not reconnect in lockstep.
    pub jitter: f64,
    /// Seed for the jitter stream (deterministic per agent).
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig {
            initial: Duration::from_millis(20),
            max: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.2,
            seed: 0x5AAD_0001,
        }
    }
}

impl BackoffConfig {
    pub(crate) fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.initial.as_secs_f64() * self.multiplier.powi(attempt as i32);
        let capped = base.min(self.max.as_secs_f64());
        let factor = 1.0 + rng.gen_range(-self.jitter..self.jitter.max(1e-9));
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// Tuning for an [`Agent`].
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Most batches the send queue holds before `policy` applies.
    pub capacity: usize,
    /// What to do when the queue is full. Policies act on whole batches;
    /// drop counters record the affected synopses individually.
    pub policy: OverloadPolicy,
    /// Reconnect backoff.
    pub backoff: BackoffConfig,
    /// Socket write timeout; a stalled collector fails the write and the
    /// frame is accounted wire-lost rather than blocking the worker
    /// forever.
    pub write_timeout: Duration,
    /// Socket read timeout while waiting for the handshake ack.
    pub read_timeout: Duration,
    /// Protocol version announced in the handshake (normally
    /// [`PROTOCOL_VERSION`]; overridable to exercise rejection paths).
    pub version: u16,
}

impl Default for AgentConfig {
    fn default() -> AgentConfig {
        AgentConfig {
            capacity: 1024,
            policy: OverloadPolicy::Block {
                timeout: Duration::from_secs(1),
            },
            backoff: BackoffConfig::default(),
            write_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            version: PROTOCOL_VERSION,
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    connects: AtomicU64,
    reconnects: AtomicU64,
    handshake_rejects: AtomicU64,
    stale_epoch_rejects: AtomicU64,
    rehomes: AtomicU64,
    frames_written: AtomicU64,
    synopses_written: AtomicU64,
    synopses_wire_lost: AtomicU64,
    dropped_newest: AtomicU64,
    dropped_oldest: AtomicU64,
    dropped_timed_out: AtomicU64,
    dropped_disconnected: AtomicU64,
    /// `u64::MAX` = never rejected; otherwise the `RejectReason` as u8.
    reject_reason: AtomicU64,
}

impl StatsInner {
    fn new() -> StatsInner {
        StatsInner {
            reject_reason: AtomicU64::new(u64::MAX),
            ..StatsInner::default()
        }
    }
}

/// Snapshot of one agent's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Successful connection + handshake completions.
    pub connects: u64,
    /// Connects after the first — i.e. recoveries from a dead link.
    pub reconnects: u64,
    /// Handshakes the collector refused (stale-epoch rejects included,
    /// though those are retried, not terminal).
    pub handshake_rejects: u64,
    /// Handshakes refused for routing by a stale ring epoch — each one
    /// triggered a ring refetch and another attempt.
    pub stale_epoch_rejects: u64,
    /// Successful connects whose resolved address differed from the
    /// previous connection's — i.e. control-plane-driven re-homings.
    pub rehomes: u64,
    /// Frames fully written to a live socket.
    pub frames_written: u64,
    /// Synopses carried by those frames.
    pub synopses_written: u64,
    /// Synopses in frames whose write failed — lost on the wire, reported
    /// to the collector via sequence arithmetic, never retransmitted.
    pub synopses_wire_lost: u64,
    /// Synopses refused at the queue, by reason (same semantics as the
    /// in-process sink's [`DropCounts`]).
    pub drops: DropCounts,
    /// Why the collector refused the handshake, if it ever did.
    pub reject_reason: Option<RejectReason>,
}

impl StatsInner {
    fn snapshot(&self) -> AgentStats {
        AgentStats {
            connects: self.connects.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            handshake_rejects: self.handshake_rejects.load(Ordering::Relaxed),
            stale_epoch_rejects: self.stale_epoch_rejects.load(Ordering::Relaxed),
            rehomes: self.rehomes.load(Ordering::Relaxed),
            frames_written: self.frames_written.load(Ordering::Relaxed),
            synopses_written: self.synopses_written.load(Ordering::Relaxed),
            synopses_wire_lost: self.synopses_wire_lost.load(Ordering::Relaxed),
            drops: DropCounts {
                newest: self.dropped_newest.load(Ordering::Relaxed),
                oldest: self.dropped_oldest.load(Ordering::Relaxed),
                timed_out: self.dropped_timed_out.load(Ordering::Relaxed),
                disconnected: self.dropped_disconnected.load(Ordering::Relaxed),
            },
            reject_reason: match self.reject_reason.load(Ordering::Relaxed) {
                u64::MAX => None,
                v => Some(match v {
                    1 => RejectReason::VersionMismatch,
                    2 => RejectReason::Malformed,
                    3 => RejectReason::StaleEpoch,
                    _ => RejectReason::None,
                }),
            },
        }
    }
}

/// Queue front shared by [`Agent`] and every [`AgentSink`] clone.
#[derive(Clone)]
struct QueueFront {
    tx: Sender<Vec<TaskSynopsis>>,
    /// Receiver clone used to evict under [`OverloadPolicy::DropOldest`].
    evict: Option<Receiver<Vec<TaskSynopsis>>>,
    policy: OverloadPolicy,
    stats: Arc<StatsInner>,
}

/// Bound on eviction retries under [`OverloadPolicy::DropOldest`], same
/// rationale as the in-process sink: give up rather than livelock when
/// other producers keep refilling the evicted slot.
const DROP_OLDEST_RETRIES: usize = 64;

impl QueueFront {
    fn enqueue(&self, batch: Vec<TaskSynopsis>) {
        if batch.is_empty() {
            return;
        }
        let stats = &self.stats;
        match self.policy {
            OverloadPolicy::DropNewest => match self.tx.try_send(batch) {
                Ok(()) => {}
                Err(TrySendError::Full(b)) => {
                    stats
                        .dropped_newest
                        .fetch_add(b.len() as u64, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(b)) => {
                    stats
                        .dropped_disconnected
                        .fetch_add(b.len() as u64, Ordering::Relaxed);
                }
            },
            OverloadPolicy::DropOldest => {
                let evict = self.evict.as_ref().expect("DropOldest has receiver");
                let mut batch = batch;
                for _ in 0..DROP_OLDEST_RETRIES {
                    match self.tx.try_send(batch) {
                        Ok(()) => return,
                        Err(TrySendError::Full(b)) => {
                            batch = b;
                            if let Ok(old) = evict.try_recv() {
                                stats
                                    .dropped_oldest
                                    .fetch_add(old.len() as u64, Ordering::Relaxed);
                            }
                        }
                        Err(TrySendError::Disconnected(b)) => {
                            stats
                                .dropped_disconnected
                                .fetch_add(b.len() as u64, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                stats
                    .dropped_newest
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
            OverloadPolicy::Block { timeout } => match self.tx.send_timeout(batch, timeout) {
                Ok(()) => {}
                Err(crossbeam_channel::SendTimeoutError::Timeout(b)) => {
                    stats
                        .dropped_timed_out
                        .fetch_add(b.len() as u64, Ordering::Relaxed);
                }
                Err(crossbeam_channel::SendTimeoutError::Disconnected(b)) => {
                    stats
                        .dropped_disconnected
                        .fetch_add(b.len() as u64, Ordering::Relaxed);
                }
            },
        }
    }
}

/// A connected (or reconnecting) agent client for one host.
pub struct Agent {
    front: QueueFront,
    closing: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl Agent {
    /// Start an agent for `host` streaming to the collector at `addr`.
    /// The connection is established lazily by the worker thread; `send`
    /// may be called immediately.
    pub fn connect(addr: SocketAddr, host: HostId, config: AgentConfig) -> Agent {
        Agent::connect_via(Arc::new(PinnedResolver::new(addr)), host, config)
    }

    /// Start an agent whose collector address is looked up through
    /// `resolver` before **every** connect attempt — the federated
    /// deployment, where a
    /// [`ControlPlane`](crate::control::ControlPlane) republishing the
    /// ring re-homes this agent on its next reconnect. A
    /// [`RejectReason::StaleEpoch`] reject is treated as "ask the
    /// resolver again", not as a terminal failure.
    pub fn connect_via(
        resolver: Arc<dyn LeafResolver>,
        host: HostId,
        config: AgentConfig,
    ) -> Agent {
        assert!(config.capacity > 0, "agent queue capacity must be positive");
        let (tx, rx) = bounded(config.capacity);
        let evict = matches!(config.policy, OverloadPolicy::DropOldest).then(|| rx.clone());
        let stats = Arc::new(StatsInner::new());
        let closing = Arc::new(AtomicBool::new(false));
        let front = QueueFront {
            tx,
            evict,
            policy: config.policy,
            stats: stats.clone(),
        };
        let worker_closing = closing.clone();
        let worker = std::thread::Builder::new()
            .name(format!("saad-net-agent-{}", host.0))
            .spawn(move || worker_loop(resolver, host, config, rx, stats, worker_closing))
            .expect("spawn agent worker");
        Agent {
            front,
            closing,
            worker: Some(worker),
        }
    }

    /// Queue one batch for transmission, applying the configured overload
    /// policy if the queue is full. Empty batches are ignored.
    pub fn send(&self, batch: Vec<TaskSynopsis>) {
        self.front.enqueue(batch);
    }

    /// A [`SynopsisSink`] front that buffers single synopses into batches
    /// of `batch_size` before queueing them. Call [`AgentSink::flush`]
    /// (or drop the sink) to push out a partial batch.
    pub fn sink(&self, batch_size: usize) -> AgentSink {
        assert!(batch_size > 0, "batch size must be positive");
        AgentSink {
            front: self.front.clone(),
            buf: parking_lot::Mutex::new(Vec::with_capacity(batch_size)),
            batch_size,
        }
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> AgentStats {
        self.front.stats.snapshot()
    }

    /// Expose this agent's lifetime counters in `registry`, labelled with
    /// the host id so a process running several agents can register them
    /// all. Scrape-time callbacks only; the send path is untouched.
    pub fn register_metrics(&self, registry: &saad_obs::Registry, host: HostId) {
        let host_label = host.0.to_string();
        let labels = [("host", host_label.as_str())];
        let counter = |f: fn(&StatsInner) -> &AtomicU64| {
            let stats = Arc::clone(&self.front.stats);
            move || f(&stats).load(Ordering::Relaxed)
        };
        registry.register_counter_fn(
            "saad_agent_connects_total",
            "Successful connection + handshake completions",
            &labels,
            counter(|s| &s.connects),
        );
        registry.register_counter_fn(
            "saad_agent_reconnects_total",
            "Connects after the first — recoveries from a dead link",
            &labels,
            counter(|s| &s.reconnects),
        );
        registry.register_counter_fn(
            "saad_agent_handshake_rejects_total",
            "Handshakes the collector refused",
            &labels,
            counter(|s| &s.handshake_rejects),
        );
        registry.register_counter_fn(
            "saad_agent_stale_epoch_rejects_total",
            "Handshakes refused for a stale ring epoch (retried after refetch)",
            &labels,
            counter(|s| &s.stale_epoch_rejects),
        );
        registry.register_counter_fn(
            "saad_agent_rehomes_total",
            "Successful connects that landed on a different leaf than before",
            &labels,
            counter(|s| &s.rehomes),
        );
        registry.register_counter_fn(
            "saad_agent_frames_written_total",
            "Frames fully written to a live socket",
            &labels,
            counter(|s| &s.frames_written),
        );
        registry.register_counter_fn(
            "saad_agent_synopses_written_total",
            "Synopses carried by fully written frames",
            &labels,
            counter(|s| &s.synopses_written),
        );
        registry.register_counter_fn(
            "saad_agent_synopses_wire_lost_total",
            "Synopses in frames whose write failed — lost on the wire, never retransmitted",
            &labels,
            counter(|s| &s.synopses_wire_lost),
        );
        for (reason, f) in [
            (
                "newest",
                (|s| &s.dropped_newest) as fn(&StatsInner) -> &AtomicU64,
            ),
            ("oldest", |s| &s.dropped_oldest),
            ("timed_out", |s| &s.dropped_timed_out),
            ("disconnected", |s| &s.dropped_disconnected),
        ] {
            let stats = Arc::clone(&self.front.stats);
            registry.register_counter_fn(
                "saad_agent_dropped_total",
                "Synopses refused at the agent send queue, by reason",
                &[("host", host_label.as_str()), ("reason", reason)],
                move || f(&stats).load(Ordering::Relaxed),
            );
        }
    }

    /// Flush and stop: queued batches still drain over a live connection,
    /// but the worker stops waiting for reconnects — anything it cannot
    /// deliver is counted as a disconnected drop. Returns the final
    /// counters.
    pub fn close(mut self) -> AgentStats {
        self.closing.store(true, Ordering::SeqCst);
        let stats = self.front.stats.clone();
        if let Some(join) = self.worker.take() {
            let _ = join.join();
        }
        stats.snapshot()
    }
}

impl Drop for Agent {
    fn drop(&mut self) {
        // Dropped without close(): signal the worker to stop retrying and
        // let it wind down on its own (no join — drop must not block).
        self.closing.store(true, Ordering::SeqCst);
    }
}

/// Batching [`SynopsisSink`] front for an [`Agent`] (see [`Agent::sink`]).
pub struct AgentSink {
    front: QueueFront,
    buf: parking_lot::Mutex<Vec<TaskSynopsis>>,
    batch_size: usize,
}

impl AgentSink {
    /// Queue any buffered partial batch now.
    pub fn flush(&self) {
        let batch = std::mem::take(&mut *self.buf.lock());
        self.front.enqueue(batch);
    }
}

impl SynopsisSink for AgentSink {
    fn submit(&self, synopsis: TaskSynopsis) {
        let full = {
            let mut buf = self.buf.lock();
            buf.push(synopsis);
            (buf.len() >= self.batch_size).then(|| std::mem::take(&mut *buf))
        };
        if let Some(batch) = full {
            self.front.enqueue(batch);
        }
    }
}

impl Drop for AgentSink {
    fn drop(&mut self) {
        self.flush();
    }
}

enum ConnectOutcome {
    Connected(TcpStream),
    Rejected(RejectReason),
    Failed,
}

/// One connect + handshake attempt at the agent's current resume point,
/// announcing the ring epoch the address was resolved under.
fn try_connect(
    addr: SocketAddr,
    epoch: u64,
    host: HostId,
    config: &AgentConfig,
    sender: &FrameSender,
    written_cum: u64,
) -> ConnectOutcome {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return ConnectOutcome::Failed,
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut stream = stream;
    let hello = Hello {
        version: config.version,
        host,
        next_seq: sender.frames_sent(),
        sent_cum: sender.synopses_sent(),
        written_cum,
        epoch,
        role: PeerRole::Agent,
    };
    if stream.write_all(&encode_hello(&hello)).is_err() || stream.flush().is_err() {
        return ConnectOutcome::Failed;
    }
    // The ack arrives in the wire form of the version *we* announced —
    // that is the whole point of the version-negotiated reject path.
    let ack_len = if config.version >= 2 {
        HELLO_ACK_LEN
    } else {
        HELLO_ACK_V1_LEN
    };
    let mut ack_buf = vec![0u8; ack_len];
    match read_full(&mut stream, &mut ack_buf, || true) {
        Ok(true) => {}
        Ok(false) | Err(_) => return ConnectOutcome::Failed,
    }
    match decode_hello_ack(&ack_buf) {
        Ok(ack) if ack.accept => ConnectOutcome::Connected(stream),
        Ok(ack) => ConnectOutcome::Rejected(ack.reason),
        Err(_) => ConnectOutcome::Failed,
    }
}

fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_be_bytes())?;
    stream.write_all(frame)?;
    stream.flush()
}

/// Sleep `total` in short slices so a closing agent stops promptly.
fn backoff_sleep(total: Duration, closing: &AtomicBool) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !closing.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        std::thread::sleep(left.min(Duration::from_millis(20)));
    }
}

fn worker_loop(
    resolver: Arc<dyn LeafResolver>,
    host: HostId,
    config: AgentConfig,
    rx: Receiver<Vec<TaskSynopsis>>,
    stats: Arc<StatsInner>,
    closing: Arc<AtomicBool>,
) {
    let mut rng = StdRng::seed_from_u64(config.backoff.seed);
    let mut sender = FrameSender::new(host);
    let mut written_cum = 0u64;
    let mut conn: Option<TcpStream> = None;
    // Address of the last successful connect, for re-homing detection.
    let mut home: Option<SocketAddr> = None;

    'batches: loop {
        // Poll with a timeout so close() works even while sink clones
        // keep the channel's sender side alive.
        let batch = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(b) => b,
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                // recv_timeout drains queued batches before timing out,
                // so a timeout while closing means the queue is empty.
                if closing.load(Ordering::SeqCst) {
                    break 'batches;
                }
                continue;
            }
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break 'batches,
        };
        // Ensure a handshaken connection, backing off between failures.
        // The resolver is consulted before every attempt, so a ring
        // republish between attempts re-homes this agent automatically.
        let mut attempt = 0u32;
        while conn.is_none() {
            let back_off = |attempt: &mut u32, rng: &mut StdRng| {
                backoff_sleep(config.backoff.delay(*attempt, rng), &closing);
                *attempt = attempt.saturating_add(1);
            };
            let Some((addr, epoch)) = resolver.resolve(host) else {
                // Nowhere to go (empty ring): wait for the control plane
                // to publish a member.
                if closing.load(Ordering::SeqCst) {
                    drop_remaining(batch, &rx, &stats);
                    return;
                }
                back_off(&mut attempt, &mut rng);
                continue;
            };
            match try_connect(addr, epoch, host, &config, &sender, written_cum) {
                ConnectOutcome::Connected(stream) => {
                    if stats.connects.fetch_add(1, Ordering::Relaxed) > 0 {
                        stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    if home.is_some_and(|h| h != addr) {
                        stats.rehomes.fetch_add(1, Ordering::Relaxed);
                    }
                    home = Some(addr);
                    conn = Some(stream);
                }
                ConnectOutcome::Rejected(RejectReason::StaleEpoch) => {
                    // Our ring view is behind the collector's. Not
                    // terminal: back off and resolve again — the next
                    // attempt routes by the refreshed ring.
                    stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                    stats.stale_epoch_rejects.fetch_add(1, Ordering::Relaxed);
                    stats
                        .reject_reason
                        .store(RejectReason::StaleEpoch as u64, Ordering::Relaxed);
                    if closing.load(Ordering::SeqCst) {
                        drop_remaining(batch, &rx, &stats);
                        return;
                    }
                    back_off(&mut attempt, &mut rng);
                }
                ConnectOutcome::Rejected(reason) => {
                    // Version skew or a confused collector: retrying with
                    // the same hello cannot succeed. Account everything
                    // still queued and stop.
                    stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                    stats.reject_reason.store(reason as u64, Ordering::Relaxed);
                    drop_remaining(batch, &rx, &stats);
                    return;
                }
                ConnectOutcome::Failed => {
                    if closing.load(Ordering::SeqCst) {
                        drop_remaining(batch, &rx, &stats);
                        return;
                    }
                    back_off(&mut attempt, &mut rng);
                }
            }
        }
        // Encode exactly once — the sequence number must advance whether
        // or not the write succeeds, so a failed write becomes a visible
        // gap instead of a silent renumbering.
        let n = batch.len() as u64;
        let frame = sender.encode_frame(&batch);
        match write_frame(conn.as_mut().expect("connected"), &frame) {
            Ok(()) => {
                written_cum += n;
                stats.frames_written.fetch_add(1, Ordering::Relaxed);
                stats.synopses_written.fetch_add(n, Ordering::Relaxed);
            }
            Err(_) => {
                // The frame may be partially on the wire; the stream is
                // desynchronized either way. Count the loss and rebuild
                // the connection for the next batch.
                stats.synopses_wire_lost.fetch_add(n, Ordering::Relaxed);
                conn = None;
                if closing.load(Ordering::SeqCst) {
                    // Finish draining as drops; no reconnect while closing.
                    while let Ok(left) = rx.try_recv() {
                        stats
                            .dropped_disconnected
                            .fetch_add(left.len() as u64, Ordering::Relaxed);
                    }
                    break 'batches;
                }
            }
        }
    }
    // Queue closed and drained: a half-close tells the collector this was
    // a deliberate goodbye, not a dying link.
    if let Some(stream) = conn {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
}

/// Account `first` and everything still queued as disconnected drops.
fn drop_remaining(first: Vec<TaskSynopsis>, rx: &Receiver<Vec<TaskSynopsis>>, stats: &StatsInner) {
    let mut dropped = first.len() as u64;
    while let Ok(batch) = rx.try_recv() {
        dropped += batch.len() as u64;
    }
    stats
        .dropped_disconnected
        .fetch_add(dropped, Ordering::Relaxed);
}
