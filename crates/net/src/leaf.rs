//! The leaf-collector role: terminate a regional agent fleet, re-frame
//! admitted synopses into windowed per-host digests, and forward them
//! upstream to the root analyzer — **in the agents' own global stream
//! coordinates**.
//!
//! The one invariant everything here serves: every digest frame a leaf
//! sends upstream is positioned (via the transport's cumulative synopsis
//! count) exactly where its first synopsis sits in the originating
//! agent's stream. Gaps on the agent link are forwarded with
//! [`FrameSender::skip`]; synopses a leaf accepted but could not deliver
//! (uplink down, mid-write failure, or the leaf dying outright) simply
//! never advance the root's delivered count. Either way the root
//! recovers the exact per-host loss by ordinary cumulative-gap
//! arithmetic — a leaf crash needs no special wire protocol, and a host
//! re-homed to another leaf continues at the same global position with
//! zero double-counting (see [`RootCollector`](crate::root::RootCollector)).
//!
//! Digests are cut on three boundaries — stage-window edges in stream
//! time (so per-(host,stage) windows aggregate cleanly at the root), a
//! size cap, and a wall-clock timer that bounds forwarding latency —
//! plus a final flush with per-host empty *goodbye* frames on graceful
//! shutdown, which reveals any trailing gap to the root immediately.

use crate::agent::BackoffConfig;
use crate::collector::{AdmittedSink, Collector, CollectorConfig};
use crate::control::ControlPlane;
use crate::protocol::{
    decode_hello_ack, encode_hello, read_full, Hello, PeerRole, HELLO_ACK_LEN, PINNED_EPOCH,
    PROTOCOL_VERSION,
};
use crate::ring::LeafId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saad_core::synopsis::TaskSynopsis;
use saad_core::transport::FrameSender;
use saad_core::HostId;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`LeafCollector`].
#[derive(Debug, Clone)]
pub struct LeafConfig {
    /// This leaf's identity in the federation ring.
    pub id: LeafId,
    /// Digest window width in **stream time**: a digest never mixes
    /// synopses from two windows, so windows aggregate exactly at the
    /// root. Matches the detector's stage-window width in a full
    /// deployment.
    pub window: Duration,
    /// Most synopses one digest frame carries before a size-cap flush.
    pub max_digest: usize,
    /// Wall-clock bound on how long an undersized digest may sit pending
    /// (also the heartbeat cadence toward the control plane).
    pub flush_interval: Duration,
    /// Agent-facing server tuning. Wire a control plane's
    /// [`epoch_handle`](ControlPlane::epoch_handle) into
    /// `collector.epoch` to enforce ring staleness at this leaf.
    pub collector: CollectorConfig,
    /// Uplink socket write timeout (a stalled root fails the flush and
    /// the digest is accounted wire-lost, never blocks agent handlers
    /// for long).
    pub write_timeout: Duration,
    /// Uplink socket read timeout for the handshake ack.
    pub read_timeout: Duration,
    /// Uplink reconnect pacing. Connects are attempted at most once per
    /// flush, spaced by this schedule — never a blocking retry loop,
    /// because flushes run on agent-connection handler threads.
    pub backoff: BackoffConfig,
}

impl Default for LeafConfig {
    fn default() -> LeafConfig {
        LeafConfig {
            id: LeafId(0),
            window: Duration::from_secs(60),
            max_digest: 512,
            flush_interval: Duration::from_millis(50),
            collector: CollectorConfig::default(),
            write_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            backoff: BackoffConfig::default(),
        }
    }
}

/// Snapshot of a leaf's forwarding counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeafStats {
    /// Digest frames written upstream (goodbye frames included).
    pub digests_sent: u64,
    /// Synopses carried by those digests.
    pub digest_synopses: u64,
    /// Synopses in digests that could not be written (uplink down or
    /// mid-write failure) — surfaced at the root as a stream-position
    /// gap, never retransmitted.
    pub uplink_wire_lost: u64,
    /// Synopses skipped over to forward agent-link gaps upstream.
    pub skipped_synopses: u64,
    /// Synopses dropped because they arrived behind the host's already
    /// forwarded stream position (an agent that restarted from zero).
    pub late_dropped: u64,
    /// Successful uplink connection + handshake completions.
    pub uplink_connects: u64,
}

#[derive(Debug, Default)]
struct Counters {
    digests_sent: AtomicU64,
    digest_synopses: AtomicU64,
    uplink_wire_lost: AtomicU64,
    skipped_synopses: AtomicU64,
    late_dropped: AtomicU64,
    uplink_connects: AtomicU64,
}

/// Per-host digest assembly state. The [`FrameSender`] runs in the
/// host's **global** stream coordinates: `synopses_sent` equals the
/// position just past the last synopsis this leaf flushed (or skipped)
/// for the host.
struct HostBuf {
    sender: FrameSender,
    pending: Vec<TaskSynopsis>,
    /// Stream-time window index of the pending synopses.
    window_idx: u64,
}

/// Everything the flush path mutates, under one lock: host buffers plus
/// the uplink socket and its connect schedule.
struct UplinkIo {
    hosts: HashMap<HostId, HostBuf>,
    conn: Option<TcpStream>,
    next_attempt: Instant,
    attempt: u32,
    rng: StdRng,
}

struct Uplink {
    io: Mutex<UplinkIo>,
    /// Clone of the live uplink socket so [`LeafCollector::kill`] can
    /// sever it without waiting on the io lock.
    kill_handle: Mutex<Option<TcpStream>>,
    root_addr: SocketAddr,
    config: LeafConfig,
    killed: AtomicBool,
    counters: Counters,
}

impl Uplink {
    fn new(root_addr: SocketAddr, config: LeafConfig) -> Uplink {
        Uplink {
            io: Mutex::new(UplinkIo {
                hosts: HashMap::new(),
                conn: None,
                next_attempt: Instant::now(),
                attempt: 0,
                rng: StdRng::seed_from_u64(config.backoff.seed ^ config.id.0 as u64),
            }),
            kill_handle: Mutex::new(None),
            root_addr,
            config,
            killed: AtomicBool::new(false),
            counters: Counters::default(),
        }
    }

    /// At most one uplink connect attempt, and only when the backoff
    /// schedule says it is due — flushes run on agent handler threads
    /// and must never spin on a dead root.
    fn ensure_conn(&self, io: &mut UplinkIo) {
        if io.conn.is_some() || Instant::now() < io.next_attempt {
            return;
        }
        match uplink_connect(self.root_addr, &self.config) {
            Some(stream) => {
                *self.kill_handle.lock() = stream.try_clone().ok();
                io.conn = Some(stream);
                io.attempt = 0;
                self.counters
                    .uplink_connects
                    .fetch_add(1, Ordering::Relaxed);
            }
            None => {
                let delay = self.config.backoff.delay(io.attempt, &mut io.rng);
                io.next_attempt = Instant::now() + delay;
                io.attempt = io.attempt.saturating_add(1);
            }
        }
    }

    /// Encode and write the host's pending digest. The frame is encoded
    /// — and the global position advanced — **whether or not** the write
    /// succeeds: an undeliverable digest must become a visible gap at
    /// the root, not a silent renumbering.
    fn flush_host(&self, io: &mut UplinkIo, host: HostId) {
        let Some(buf) = io.hosts.get_mut(&host) else {
            return;
        };
        if buf.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut buf.pending);
        let frame = buf.sender.encode_frame(&batch);
        self.ensure_conn(io);
        self.write_digest(io, &frame, batch.len() as u64);
    }

    fn write_digest(&self, io: &mut UplinkIo, frame: &[u8], n: u64) {
        if self.killed.load(Ordering::SeqCst) {
            self.counters
                .uplink_wire_lost
                .fetch_add(n, Ordering::Relaxed);
            return;
        }
        let ok = match io.conn.as_mut() {
            Some(stream) => write_frame(stream, frame).is_ok(),
            None => false,
        };
        if ok {
            self.counters.digests_sent.fetch_add(1, Ordering::Relaxed);
            self.counters
                .digest_synopses
                .fetch_add(n, Ordering::Relaxed);
        } else {
            self.counters
                .uplink_wire_lost
                .fetch_add(n, Ordering::Relaxed);
            if io.conn.take().is_some() {
                *self.kill_handle.lock() = None;
            }
        }
    }

    /// Timer flush: push out every pending digest.
    fn tick(&self) {
        if self.killed.load(Ordering::SeqCst) {
            return;
        }
        let mut io = self.io.lock();
        let hosts: Vec<HostId> = io
            .hosts
            .iter()
            .filter(|(_, b)| !b.pending.is_empty())
            .map(|(&h, _)| h)
            .collect();
        for host in hosts {
            self.flush_host(&mut io, host);
        }
    }

    /// Graceful finish: flush everything, then send a per-host empty
    /// goodbye frame so the root learns each host's final stream
    /// position — revealing any trailing gap — and half-close.
    fn finish(&self) {
        let mut io = self.io.lock();
        let hosts: Vec<HostId> = io.hosts.keys().copied().collect();
        for host in hosts {
            self.flush_host(&mut io, host);
            if let Some(buf) = io.hosts.get_mut(&host) {
                let goodbye = buf.sender.encode_frame(&[]);
                self.write_digest(&mut io, &goodbye, 0);
            }
        }
        if let Some(stream) = io.conn.take() {
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
        *self.kill_handle.lock() = None;
    }

    /// Crash-stop: discard pending digests and sever the uplink. The
    /// point of the exercise — everything undelivered must surface at
    /// the root as an exactly-accounted gap, with no goodbye.
    fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        if let Some(stream) = self.kill_handle.lock().take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn stats(&self) -> LeafStats {
        let c = &self.counters;
        LeafStats {
            digests_sent: c.digests_sent.load(Ordering::Relaxed),
            digest_synopses: c.digest_synopses.load(Ordering::Relaxed),
            uplink_wire_lost: c.uplink_wire_lost.load(Ordering::Relaxed),
            skipped_synopses: c.skipped_synopses.load(Ordering::Relaxed),
            late_dropped: c.late_dropped.load(Ordering::Relaxed),
            uplink_connects: c.uplink_connects.load(Ordering::Relaxed),
        }
    }
}

impl AdmittedSink for Uplink {
    fn on_fresh(
        &self,
        host: HostId,
        synopses: Vec<TaskSynopsis>,
        _newly_lost: u64,
        stream_pos_end: u64,
    ) {
        if self.killed.load(Ordering::SeqCst) {
            return;
        }
        let start = stream_pos_end - synopses.len() as u64;
        let window_us = self.config.window.as_micros().max(1) as u64;
        let mut io = self.io.lock();
        let io = &mut *io;
        let buf = io.hosts.entry(host).or_insert_with(|| HostBuf {
            sender: FrameSender::new(host),
            pending: Vec::new(),
            window_idx: 0,
        });
        let pos = buf.sender.synopses_sent() + buf.pending.len() as u64;
        if start > pos {
            // Agent-link gap (or a stretch another leaf handled while
            // this host was homed elsewhere): flush what we have at its
            // own position, then jump forward so the next frame's
            // cumulative count tells the root exactly what is missing.
            if !buf.pending.is_empty() {
                let batch = std::mem::take(&mut buf.pending);
                let frame = buf.sender.encode_frame(&batch);
                self.ensure_conn(io);
                self.write_digest(io, &frame, batch.len() as u64);
            }
            let buf = io.hosts.get_mut(&host).expect("just inserted");
            let jump = start - buf.sender.synopses_sent();
            buf.sender.skip(jump);
            self.counters
                .skipped_synopses
                .fetch_add(jump, Ordering::Relaxed);
        } else if start < pos {
            // Behind our forwarded position: an agent restarted from
            // zero. Forwarding would double-count at the root; drop and
            // account.
            self.counters
                .late_dropped
                .fetch_add(synopses.len() as u64, Ordering::Relaxed);
            return;
        }
        for s in synopses {
            let w = s.start.as_micros() / window_us;
            let buf = io.hosts.get_mut(&host).expect("present");
            if buf.pending.is_empty() {
                buf.window_idx = w;
            } else if w != buf.window_idx {
                // Stage-window edge: digests never mix windows.
                self.flush_host(io, host);
                let buf = io.hosts.get_mut(&host).expect("present");
                buf.window_idx = w;
            }
            let buf = io.hosts.get_mut(&host).expect("present");
            buf.pending.push(s);
            if buf.pending.len() >= self.config.max_digest {
                self.flush_host(io, host);
            }
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_be_bytes())?;
    stream.write_all(frame)?;
    stream.flush()
}

/// One uplink connect + v2 handshake. The hello's host field carries the
/// leaf's own identity and zero resume state: each uplink connection is a
/// fresh framing context at the root (per-connection receivers there),
/// while loss accounting rides in the digests' global coordinates.
fn uplink_connect(root_addr: SocketAddr, config: &LeafConfig) -> Option<TcpStream> {
    let stream = TcpStream::connect(root_addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut stream = stream;
    let hello = Hello {
        version: PROTOCOL_VERSION,
        host: HostId(config.id.0),
        next_seq: 0,
        sent_cum: 0,
        written_cum: 0,
        // Leaf uplinks are addressed by deployment, not by ring lookup;
        // epoch staleness governs agent→leaf routing.
        epoch: PINNED_EPOCH,
        role: PeerRole::Leaf,
    };
    stream.write_all(&encode_hello(&hello)).ok()?;
    stream.flush().ok()?;
    let mut ack_buf = [0u8; HELLO_ACK_LEN];
    match read_full(&mut stream, &mut ack_buf, || true) {
        Ok(true) => {}
        _ => return None,
    }
    match decode_hello_ack(&ack_buf) {
        Ok(ack) if ack.accept => Some(stream),
        _ => None,
    }
}

/// A running leaf: an agent-facing [`Collector`] whose admitted frames
/// feed an upstream digest [`Uplink`], plus a timer thread driving
/// latency-bound flushes and control-plane heartbeats.
pub struct LeafCollector {
    id: LeafId,
    collector: Option<Collector>,
    uplink: Arc<Uplink>,
    control: Option<ControlPlane>,
    stop: Arc<AtomicBool>,
    timer: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl LeafCollector {
    /// Bind the agent-facing side on `bind_addr`, forward digests to the
    /// root at `root_addr`, and — when a control plane is given —
    /// register this leaf (publishing a grown ring) and heartbeat every
    /// flush interval.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn<A: ToSocketAddrs>(
        bind_addr: A,
        root_addr: SocketAddr,
        control: Option<ControlPlane>,
        config: LeafConfig,
    ) -> io::Result<LeafCollector> {
        let id = config.id;
        let flush_interval = config.flush_interval;
        let uplink = Arc::new(Uplink::new(root_addr, config.clone()));
        let sink: Arc<dyn AdmittedSink> = uplink.clone();
        let collector = Collector::bind_forward(bind_addr, sink, config.collector)?;
        let local_addr = collector.local_addr();
        if let Some(cp) = &control {
            cp.register_leaf(id, local_addr);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let timer = {
            let uplink = uplink.clone();
            let control = control.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("saad-leaf-{}-timer", id.0))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(flush_interval);
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        uplink.tick();
                        if let Some(cp) = &control {
                            cp.heartbeat(id);
                        }
                    }
                })
                .expect("spawn leaf timer")
        };
        Ok(LeafCollector {
            id,
            collector: Some(collector),
            uplink,
            control,
            stop,
            timer: Some(timer),
            local_addr,
        })
    }

    /// This leaf's identity.
    pub fn id(&self) -> LeafId {
        self.id
    }

    /// Agent-facing bound address (the actual port when bound with 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Forwarding counters snapshot.
    pub fn stats(&self) -> LeafStats {
        self.uplink.stats()
    }

    /// Agent-facing collector counters (connections, admitted frames,
    /// link loss on the agent side).
    pub fn collector_stats(&self) -> crate::collector::CollectorStats {
        self.collector
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Expose forwarding counters in `registry`, labelled by leaf id.
    pub fn register_metrics(&self, registry: &saad_obs::Registry) {
        let leaf_label = self.id.0.to_string();
        let labels = [("leaf", leaf_label.as_str())];
        let counter = |f: fn(&Counters) -> &AtomicU64| {
            let uplink = Arc::downgrade(&self.uplink);
            move || {
                uplink
                    .upgrade()
                    .map_or(0, |u| f(&u.counters).load(Ordering::Relaxed))
            }
        };
        registry.register_counter_fn(
            "saad_leaf_digests_sent_total",
            "Digest frames written upstream (goodbye frames included)",
            &labels,
            counter(|c| &c.digests_sent),
        );
        registry.register_counter_fn(
            "saad_leaf_digest_synopses_total",
            "Synopses carried by upstream digests",
            &labels,
            counter(|c| &c.digest_synopses),
        );
        registry.register_counter_fn(
            "saad_leaf_uplink_wire_lost_total",
            "Synopses in digests that could not be written upstream",
            &labels,
            counter(|c| &c.uplink_wire_lost),
        );
        registry.register_counter_fn(
            "saad_leaf_skipped_synopses_total",
            "Synopses skipped to forward agent-link gaps upstream",
            &labels,
            counter(|c| &c.skipped_synopses),
        );
        registry.register_counter_fn(
            "saad_leaf_late_dropped_total",
            "Synopses dropped for arriving behind the forwarded position",
            &labels,
            counter(|c| &c.late_dropped),
        );
        registry.register_counter_fn(
            "saad_leaf_uplink_connects_total",
            "Successful uplink connection + handshake completions",
            &labels,
            counter(|c| &c.uplink_connects),
        );
    }

    /// Graceful drain: deregister from the control plane (agents start
    /// re-homing at once), stop the agent-facing collector, flush every
    /// pending digest, and say goodbye per host so the root sees final
    /// positions. Returns the final forwarding counters.
    pub fn shutdown(mut self) -> LeafStats {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(cp) = self.control.take() {
            cp.deregister_leaf(self.id);
        }
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
        if let Some(c) = self.collector.take() {
            // Joins agent handlers; their in-flight on_fresh calls finish
            // before this returns, so the final flush below sees a
            // settled buffer.
            let _ = c.shutdown();
        }
        self.uplink.finish();
        self.uplink.stats()
    }

    /// Crash-stop for fault injection: sever the uplink and discard
    /// pending digests **without** telling the control plane — failure
    /// detection (missed heartbeats) must notice on its own, exactly as
    /// with a real process death. Returns the final forwarding counters.
    pub fn kill(mut self) -> LeafStats {
        self.stop.store(true, Ordering::SeqCst);
        self.control = None;
        // Kill the uplink before unblocking handlers so any racing flush
        // fails fast instead of delivering a post-mortem digest.
        self.uplink.kill();
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
        if let Some(c) = self.collector.take() {
            let _ = c.shutdown();
        }
        self.uplink.stats()
    }
}
