//! Crate-level smoke tests: one agent, one collector, localhost TCP.

use crossbeam_channel::unbounded;
use saad_core::intern::SignatureInterner;
use saad_core::pipeline::OverloadPolicy;
use saad_core::synopsis::TaskSynopsis;
use saad_core::{HostId, StageId, TaskUid};
use saad_logging::LogPointId;
use saad_net::{
    Agent, AgentConfig, Collector, CollectorConfig, ReactorCollector, ReactorCollectorConfig,
    RejectReason,
};
use saad_sim::{SimDuration, SimTime};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn synopsis(host: u16, uid: u64) -> TaskSynopsis {
    TaskSynopsis {
        host: HostId(host),
        stage: StageId(1),
        uid: TaskUid(uid),
        start: SimTime::from_millis(uid),
        duration: SimDuration::from_micros(1_000),
        log_points: vec![(LogPointId(1), 1), (LogPointId(2), 2)],
    }
}

#[test]
fn batches_round_trip_over_tcp() {
    let (batch_tx, batch_rx) = unbounded();
    let (loss_tx, loss_rx) = unbounded();
    let collector =
        Collector::bind("127.0.0.1:0", batch_tx, loss_tx, CollectorConfig::default()).unwrap();

    let agent = Agent::connect(collector.local_addr(), HostId(7), AgentConfig::default());
    let total = 500u64;
    for chunk in 0..(total / 50) {
        let batch: Vec<TaskSynopsis> = (0..50).map(|i| synopsis(7, chunk * 50 + i)).collect();
        agent.send(batch);
    }
    let agent_stats = agent.close();
    assert_eq!(agent_stats.synopses_written, total);
    assert_eq!(agent_stats.connects, 1);
    assert_eq!(agent_stats.drops.total(), 0);

    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < total {
        assert!(Instant::now() < deadline, "collector stalled");
        if let Ok(batch) = batch_rx.recv_timeout(Duration::from_millis(100)) {
            received += batch.len() as u64;
        }
    }
    assert!(loss_rx.try_recv().is_err(), "no loss expected");

    let stats = collector.stats();
    assert_eq!(stats.synopses, total);
    assert_eq!(stats.lost_synopses, 0);
    assert_eq!(stats.corrupted_frames, 0);
    assert_eq!(stats.watermark, SimTime::from_millis(total - 1));

    let state = collector.shutdown();
    assert_eq!(state.receiver().stats(HostId(7)).delivered_synopses, total);
}

#[test]
fn version_skew_is_rejected_with_reason() {
    let (batch_tx, _batch_rx) = unbounded();
    let (loss_tx, _loss_rx) = unbounded();
    let collector =
        Collector::bind("127.0.0.1:0", batch_tx, loss_tx, CollectorConfig::default()).unwrap();

    let config = AgentConfig {
        version: 99,
        policy: OverloadPolicy::DropNewest,
        ..AgentConfig::default()
    };
    let agent = Agent::connect(collector.local_addr(), HostId(1), config);
    agent.send(vec![synopsis(1, 0)]);
    let deadline = Instant::now() + Duration::from_secs(5);
    while agent.stats().handshake_rejects == 0 {
        assert!(Instant::now() < deadline, "reject never observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = agent.close();
    assert_eq!(stats.handshake_rejects, 1);
    assert_eq!(stats.reject_reason, Some(RejectReason::VersionMismatch));
    assert_eq!(stats.connects, 0);
    assert_eq!(stats.drops.disconnected, 1);

    assert_eq!(collector.stats().handshakes_rejected, 1);
    collector.shutdown();
}

#[test]
fn many_agents_share_one_collector() {
    let (batch_tx, batch_rx) = unbounded();
    let (loss_tx, _loss_rx) = unbounded();
    let collector =
        Collector::bind("127.0.0.1:0", batch_tx, loss_tx, CollectorConfig::default()).unwrap();

    let per_agent = 200u64;
    let agents: Vec<Agent> = (0..4)
        .map(|h| Agent::connect(collector.local_addr(), HostId(h), AgentConfig::default()))
        .collect();
    for (h, agent) in agents.iter().enumerate() {
        for chunk in 0..(per_agent / 20) {
            let batch: Vec<TaskSynopsis> = (0..20)
                .map(|i| synopsis(h as u16, chunk * 20 + i))
                .collect();
            agent.send(batch);
        }
    }
    for agent in agents {
        let stats = agent.close();
        assert_eq!(stats.synopses_written, per_agent);
    }

    let total = per_agent * 4;
    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < total {
        assert!(Instant::now() < deadline, "collector stalled");
        if let Ok(batch) = batch_rx.recv_timeout(Duration::from_millis(100)) {
            received += batch.len() as u64;
        }
    }
    let stats = collector.stats();
    assert_eq!(stats.synopses, total);
    assert_eq!(stats.connections_accepted, 4);
    assert_eq!(stats.lost_synopses, 0);
    collector.shutdown();
}

// --- Reactor collector: same contract, readiness-driven core ---------

#[test]
fn reactor_batches_round_trip_over_tcp() {
    let (batch_tx, batch_rx) = unbounded();
    let (loss_tx, loss_rx) = unbounded();
    let collector = ReactorCollector::bind(
        "127.0.0.1:0",
        batch_tx,
        loss_tx,
        ReactorCollectorConfig::default(),
    )
    .unwrap();

    let agent = Agent::connect(collector.local_addr(), HostId(7), AgentConfig::default());
    let total = 500u64;
    for chunk in 0..(total / 50) {
        let batch: Vec<TaskSynopsis> = (0..50).map(|i| synopsis(7, chunk * 50 + i)).collect();
        agent.send(batch);
    }
    let agent_stats = agent.close();
    assert_eq!(agent_stats.synopses_written, total);
    assert_eq!(agent_stats.connects, 1);

    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < total {
        assert!(Instant::now() < deadline, "reactor collector stalled");
        if let Ok(batch) = batch_rx.recv_timeout(Duration::from_millis(100)) {
            received += batch.len() as u64;
        }
    }
    assert!(loss_rx.try_recv().is_err(), "no loss expected");

    let stats = collector.stats();
    assert_eq!(stats.synopses, total);
    assert_eq!(stats.lost_synopses, 0);
    assert_eq!(stats.corrupted_frames, 0);
    assert_eq!(stats.watermark, SimTime::from_millis(total - 1));

    let state = collector.shutdown();
    assert_eq!(state.receiver().stats(HostId(7)).delivered_synopses, total);
}

#[test]
fn reactor_soa_round_trip_on_poll_backend() {
    // Forcing the poll(2) fallback exercises the portable readiness path
    // end to end; the SoA sink exercises the zero-copy decode.
    let (batch_tx, batch_rx) = unbounded();
    let (loss_tx, _loss_rx) = unbounded();
    let interner = Arc::new(SignatureInterner::new());
    let config = ReactorCollectorConfig {
        backend: Some(saad_reactor::Backend::Poll),
        ..ReactorCollectorConfig::default()
    };
    let collector =
        ReactorCollector::bind_soa("127.0.0.1:0", batch_tx, interner.clone(), loss_tx, config)
            .unwrap();

    let agent = Agent::connect(collector.local_addr(), HostId(3), AgentConfig::default());
    let total = 300u64;
    for chunk in 0..(total / 30) {
        let batch: Vec<TaskSynopsis> = (0..30).map(|i| synopsis(3, chunk * 30 + i)).collect();
        agent.send(batch);
    }
    agent.close();

    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < total {
        assert!(Instant::now() < deadline, "reactor collector stalled");
        if let Ok(batch) = batch_rx.recv_timeout(Duration::from_millis(100)) {
            assert!(batch.watermarks.windows(2).all(|w| w[0] <= w[1]));
            received += batch.len() as u64;
        }
    }
    assert_eq!(collector.stats().synopses, total);
    collector.shutdown();
}

#[test]
fn reactor_version_skew_is_rejected_with_reason() {
    let (batch_tx, _batch_rx) = unbounded();
    let (loss_tx, _loss_rx) = unbounded();
    let collector = ReactorCollector::bind(
        "127.0.0.1:0",
        batch_tx,
        loss_tx,
        ReactorCollectorConfig::default(),
    )
    .unwrap();

    let config = AgentConfig {
        version: 99,
        policy: OverloadPolicy::DropNewest,
        ..AgentConfig::default()
    };
    let agent = Agent::connect(collector.local_addr(), HostId(1), config);
    agent.send(vec![synopsis(1, 0)]);
    let deadline = Instant::now() + Duration::from_secs(5);
    while agent.stats().handshake_rejects == 0 {
        assert!(Instant::now() < deadline, "reject never observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = agent.close();
    assert_eq!(stats.reject_reason, Some(RejectReason::VersionMismatch));
    assert_eq!(stats.connects, 0);
    assert!(collector.stats().handshakes_rejected >= 1);
    collector.shutdown();
}

#[test]
fn reactor_many_agents_across_loops() {
    let (batch_tx, batch_rx) = unbounded();
    let (loss_tx, _loss_rx) = unbounded();
    let config = ReactorCollectorConfig {
        loops: 3,
        ..ReactorCollectorConfig::default()
    };
    let collector = ReactorCollector::bind("127.0.0.1:0", batch_tx, loss_tx, config).unwrap();

    let per_agent = 200u64;
    let agents: Vec<Agent> = (0..12)
        .map(|h| Agent::connect(collector.local_addr(), HostId(h), AgentConfig::default()))
        .collect();
    for (h, agent) in agents.iter().enumerate() {
        for chunk in 0..(per_agent / 20) {
            let batch: Vec<TaskSynopsis> = (0..20)
                .map(|i| synopsis(h as u16, chunk * 20 + i))
                .collect();
            agent.send(batch);
        }
    }
    for agent in agents {
        let stats = agent.close();
        assert_eq!(stats.synopses_written, per_agent);
    }

    let total = per_agent * 12;
    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while received < total {
        assert!(Instant::now() < deadline, "reactor collector stalled");
        if let Ok(batch) = batch_rx.recv_timeout(Duration::from_millis(100)) {
            received += batch.len() as u64;
        }
    }
    let stats = collector.stats();
    assert_eq!(stats.synopses, total);
    assert_eq!(stats.connections_accepted, 12);
    assert_eq!(stats.lost_synopses, 0);
    collector.shutdown();
}
