//! The disk-hog model for the HBase/HDFS experiment (paper §5.5, Table 2).
//!
//! The paper launches `dd if=/dev/urandom ...` processes that consume disk
//! bandwidth and steal CPU from kernel activity. In the simulator a hog is
//! a service-time multiplier on the node's disk plus a smaller multiplier
//! on CPU-bound stage service times.

use saad_sim::SimTime;

/// One hog window: a number of `dd` processes over a time span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HogWindow {
    /// When the hog processes start.
    pub start: SimTime,
    /// When they are killed (exclusive).
    pub end: SimTime,
    /// Number of concurrent hog processes.
    pub processes: u32,
}

/// The Table 2 hog timeline: disk and CPU slowdown factors over time.
#[derive(Debug, Clone, Default)]
pub struct HogSchedule {
    windows: Vec<HogWindow>,
    /// Disk slowdown added per hog process (default 0.9: one hog roughly
    /// halves effective disk bandwidth, four hogs make it ~4.6× slower).
    disk_factor_per_process: f64,
    /// CPU slowdown added per hog process (default 0.15: interrupt and
    /// syscall pressure, much milder than the disk impact).
    cpu_factor_per_process: f64,
}

impl HogSchedule {
    /// Create an empty schedule with the default per-process factors.
    pub fn new() -> HogSchedule {
        HogSchedule {
            windows: Vec::new(),
            disk_factor_per_process: 0.9,
            cpu_factor_per_process: 0.15,
        }
    }

    /// Add a hog window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` or `processes == 0`.
    pub fn with_window(mut self, start: SimTime, end: SimTime, processes: u32) -> HogSchedule {
        assert!(end > start, "hog window must be non-empty");
        assert!(processes > 0, "a hog window needs at least one process");
        self.windows.push(HogWindow {
            start,
            end,
            processes,
        });
        self
    }

    /// Override the per-process slowdown factors.
    ///
    /// # Panics
    ///
    /// Panics if either factor is negative.
    pub fn with_factors(mut self, disk: f64, cpu: f64) -> HogSchedule {
        assert!(disk >= 0.0 && cpu >= 0.0, "factors must be non-negative");
        self.disk_factor_per_process = disk;
        self.cpu_factor_per_process = cpu;
        self
    }

    /// The paper's Table 2 schedule: low 8–16 min (1 process), medium
    /// 28–44 (2), high-1 56–64 (4), high-2 116–130 (4).
    pub fn table2() -> HogSchedule {
        HogSchedule::new()
            .with_window(SimTime::from_mins(8), SimTime::from_mins(16), 1)
            .with_window(SimTime::from_mins(28), SimTime::from_mins(44), 2)
            .with_window(SimTime::from_mins(56), SimTime::from_mins(64), 4)
            .with_window(SimTime::from_mins(116), SimTime::from_mins(130), 4)
    }

    /// The configured windows.
    pub fn windows(&self) -> &[HogWindow] {
        &self.windows
    }

    /// Concurrent hog processes at `now`.
    pub fn processes_at(&self, now: SimTime) -> u32 {
        self.windows
            .iter()
            .filter(|w| now >= w.start && now < w.end)
            .map(|w| w.processes)
            .sum()
    }

    /// Disk service-time slowdown factor at `now` (>= 1.0).
    pub fn disk_slowdown_at(&self, now: SimTime) -> f64 {
        1.0 + self.disk_factor_per_process * self.processes_at(now) as f64
    }

    /// CPU service-time slowdown factor at `now` (>= 1.0).
    pub fn cpu_slowdown_at(&self, now: SimTime) -> f64 {
        1.0 + self.cpu_factor_per_process * self.processes_at(now) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let s = HogSchedule::table2();
        assert_eq!(s.windows().len(), 4);
        assert_eq!(s.processes_at(SimTime::from_mins(10)), 1);
        assert_eq!(s.processes_at(SimTime::from_mins(30)), 2);
        assert_eq!(s.processes_at(SimTime::from_mins(60)), 4);
        assert_eq!(s.processes_at(SimTime::from_mins(120)), 4);
        assert_eq!(s.processes_at(SimTime::from_mins(70)), 0);
        assert_eq!(s.processes_at(SimTime::from_mins(170)), 0);
    }

    #[test]
    fn slowdowns_scale_with_processes() {
        let s = HogSchedule::new()
            .with_window(SimTime::ZERO, SimTime::from_mins(1), 4)
            .with_factors(1.0, 0.1);
        assert!((s.disk_slowdown_at(SimTime::ZERO) - 5.0).abs() < 1e-12);
        assert!((s.cpu_slowdown_at(SimTime::ZERO) - 1.4).abs() < 1e-12);
        // Outside the window everything is nominal.
        assert_eq!(s.disk_slowdown_at(SimTime::from_mins(2)), 1.0);
        assert_eq!(s.cpu_slowdown_at(SimTime::from_mins(2)), 1.0);
    }

    #[test]
    fn overlapping_windows_sum_processes() {
        let s = HogSchedule::new()
            .with_window(SimTime::ZERO, SimTime::from_mins(10), 1)
            .with_window(SimTime::from_mins(5), SimTime::from_mins(10), 2);
        assert_eq!(s.processes_at(SimTime::from_mins(6)), 3);
    }

    #[test]
    #[should_panic]
    fn zero_process_window_rejected() {
        HogSchedule::new().with_window(SimTime::ZERO, SimTime::from_mins(1), 0);
    }

    #[test]
    #[should_panic]
    fn negative_factor_rejected() {
        HogSchedule::new().with_factors(-1.0, 0.0);
    }
}
