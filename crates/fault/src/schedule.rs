//! Timed fault schedules attachable to simulated disks.

use crate::{FaultSpec, FaultType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saad_sim::resource::{IoHook, IoRequest, IoVerdict};
use saad_sim::SimTime;

/// One timed fault window. Generic over the spec carried so the same
/// window machinery drives disk faults ([`FaultSpec`], the default) and
/// link faults ([`crate::LinkFaultSpec`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow<S = FaultSpec> {
    /// When the fault becomes active.
    pub start: SimTime,
    /// When the fault is lifted (exclusive).
    pub end: SimTime,
    /// What it does while active.
    pub spec: S,
}

impl<S> FaultWindow<S> {
    /// Whether the window is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }
}

/// A set of timed fault windows; implements [`IoHook`] so it can be
/// attached directly to a [`saad_sim::resource::Disk`].
///
/// Coin flips for sub-100% intensities draw from a dedicated seeded RNG,
/// so runs are reproducible.
///
/// # Example
///
/// ```
/// use saad_fault::{FaultSchedule, FaultSpec, FaultType, Intensity};
/// use saad_sim::SimTime;
///
/// // The paper's Figure 9 schedule: low fault at minutes 10–20, high at
/// // 30–40.
/// let schedule = FaultSchedule::new(42)
///     .with_window(
///         SimTime::from_mins(10),
///         SimTime::from_mins(20),
///         FaultSpec::new("wal", FaultType::Error, Intensity::Low),
///     )
///     .with_window(
///         SimTime::from_mins(30),
///         SimTime::from_mins(40),
///         FaultSpec::new("wal", FaultType::Error, Intensity::High),
///     );
/// assert_eq!(schedule.windows().len(), 2);
/// ```
#[derive(Debug)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
    rng: StdRng,
    injected: u64,
}

impl FaultSchedule {
    /// Create an empty schedule with the given RNG seed.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            windows: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// Add a fault window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn with_window(mut self, start: SimTime, end: SimTime, spec: FaultSpec) -> FaultSchedule {
        assert!(end > start, "fault window must be non-empty");
        self.windows.push(FaultWindow { start, end, spec });
        self
    }

    /// The configured windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Number of requests actually disturbed so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Whether any window is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.windows.iter().any(|w| w.active_at(now))
    }
}

impl IoHook for FaultSchedule {
    fn intercept(&mut self, req: &IoRequest, now: SimTime) -> IoVerdict {
        for w in &self.windows {
            if !w.active_at(now) || w.spec.class != req.class {
                continue;
            }
            let p = w.spec.intensity.probability();
            let hit = p >= 1.0 || self.rng.gen_bool(p);
            if hit {
                self.injected += 1;
                return match w.spec.fault {
                    FaultType::Error => IoVerdict::Fail,
                    FaultType::Delay(d) => IoVerdict::Delay(d),
                };
            }
        }
        IoVerdict::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Intensity;
    use saad_sim::resource::IoKind;
    use saad_sim::SimDuration;

    fn wal_write() -> IoRequest {
        IoRequest {
            kind: IoKind::Write,
            bytes: 1024,
            class: "wal",
        }
    }

    fn schedule_high_error() -> FaultSchedule {
        FaultSchedule::new(1).with_window(
            SimTime::from_mins(10),
            SimTime::from_mins(20),
            FaultSpec::new("wal", FaultType::Error, Intensity::High),
        )
    }

    #[test]
    fn inactive_outside_window() {
        let mut s = schedule_high_error();
        assert_eq!(
            s.intercept(&wal_write(), SimTime::from_mins(5)),
            IoVerdict::Proceed
        );
        assert_eq!(
            s.intercept(&wal_write(), SimTime::from_mins(20)),
            IoVerdict::Proceed
        );
        assert_eq!(s.injected(), 0);
        assert!(!s.active_at(SimTime::from_mins(25)));
    }

    #[test]
    fn high_intensity_hits_every_request() {
        let mut s = schedule_high_error();
        for i in 0..100 {
            let t = SimTime::from_mins(10) + SimDuration::from_secs(i);
            assert_eq!(s.intercept(&wal_write(), t), IoVerdict::Fail);
        }
        assert_eq!(s.injected(), 100);
    }

    #[test]
    fn low_intensity_hits_about_one_percent() {
        let mut s = FaultSchedule::new(7).with_window(
            SimTime::ZERO,
            SimTime::from_mins(60),
            FaultSpec::new("wal", FaultType::Error, Intensity::Low),
        );
        let mut hits = 0;
        for _ in 0..100_000 {
            if s.intercept(&wal_write(), SimTime::from_mins(1)) == IoVerdict::Fail {
                hits += 1;
            }
        }
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.01).abs() < 0.003, "rate={rate}");
    }

    #[test]
    fn untargeted_class_is_untouched() {
        let mut s = schedule_high_error();
        let flush = IoRequest {
            kind: IoKind::Write,
            bytes: 1024,
            class: "memtable-flush",
        };
        assert_eq!(
            s.intercept(&flush, SimTime::from_mins(15)),
            IoVerdict::Proceed
        );
    }

    #[test]
    fn delay_fault_returns_delay_verdict() {
        let mut s = FaultSchedule::new(1).with_window(
            SimTime::ZERO,
            SimTime::from_mins(1),
            FaultSpec::new("wal", FaultType::standard_delay(), Intensity::High),
        );
        assert_eq!(
            s.intercept(&wal_write(), SimTime::ZERO),
            IoVerdict::Delay(SimDuration::from_millis(100))
        );
    }

    #[test]
    fn overlapping_windows_first_match_wins() {
        let mut s = FaultSchedule::new(1)
            .with_window(
                SimTime::ZERO,
                SimTime::from_mins(10),
                FaultSpec::new("wal", FaultType::Error, Intensity::High),
            )
            .with_window(
                SimTime::ZERO,
                SimTime::from_mins(10),
                FaultSpec::new("wal", FaultType::standard_delay(), Intensity::High),
            );
        assert_eq!(
            s.intercept(&wal_write(), SimTime::from_mins(1)),
            IoVerdict::Fail
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed| {
            let mut s = FaultSchedule::new(seed).with_window(
                SimTime::ZERO,
                SimTime::from_mins(60),
                FaultSpec::new("wal", FaultType::Error, Intensity::Custom(0.5)),
            );
            (0..64)
                .map(|_| s.intercept(&wal_write(), SimTime::from_mins(1)) == IoVerdict::Fail)
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic]
    fn empty_window_rejected() {
        FaultSchedule::new(1).with_window(
            SimTime::from_mins(5),
            SimTime::from_mins(5),
            FaultSpec::new("wal", FaultType::Error, Intensity::High),
        );
    }
}
