//! Fault injection for the SAAD experiments.
//!
//! The paper injects faults on the storage systems' write I/O path with
//! SystemTap (§5.4) and with `dd`-based disk hogs (§5.5). This crate is the
//! simulator-side equivalent:
//!
//! * [`FaultSpec`] — an *error* or *delay* fault on a targeted I/O class
//!   (`"wal"`, `"memtable-flush"`, …) at *low* (1%) or *high* (100%)
//!   intensity — the paper's exact failure model (Table 3);
//! * [`FaultSchedule`] — timed fault windows implementing
//!   [`saad_sim::resource::IoHook`], attachable directly to a simulated
//!   [`saad_sim::resource::Disk`];
//! * [`HogSchedule`] — the Table 2 disk-hog timeline: a number of `dd`
//!   processes per window, mapped to a disk service-time slowdown factor;
//! * [`LossyLink`] — fault injection on the node → analyzer *monitoring*
//!   link: frame loss, duplication, delay/reorder, corruption, and
//!   disconnect windows, with exact injection counters;
//! * [`CheckpointTamperer`] — storage faults on the analyzer's durable
//!   checkpoint files: seeded byte flips (bit rot) and truncation (torn
//!   writes), for exercising checkpoint recovery;
//! * [`FaultyProxy`] — the socket-level counterpart of [`LossyLink`]: a
//!   message-aware TCP proxy injecting drop, corruption, delay,
//!   mid-stream disconnects, and seeded bandwidth throttling between a
//!   real agent and a real collector;
//! * [`GraySchedule`] — gray failures for the staged relay workload:
//!   slow-but-not-dead upstreams, correlated multi-host hogs, asymmetric
//!   link degradation, and retry storms, each seeded and exactly
//!   accounted;
//! * [`catalog`] — ready-made builders for every fault configuration the
//!   paper evaluates (Fig 9, Fig 10/Table 2, Fig 11/Table 3) plus the
//!   combined lossy-link robustness scenario and the gray-failure
//!   scenario catalog with ground-truth oracles.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
mod checkpoint;
mod gray;
mod hog;
mod link;
mod proxy;
mod schedule;
mod spec;

pub use checkpoint::{CheckpointTamperer, TamperCounts};
pub use gray::{GrayFault, GrayFaultSpec, GraySchedule, HostSet};
pub use hog::{HogSchedule, HogWindow};
pub use link::{LinkFault, LinkFaultCounts, LinkFaultSpec, LossyLink};
pub use proxy::{ConnectionThrottle, DisconnectSchedule, FaultyProxy, ProxyCounts, ProxySpec};
pub use schedule::{FaultSchedule, FaultWindow};
pub use spec::{FaultSpec, FaultType, Intensity};
