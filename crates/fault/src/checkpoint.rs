//! Fault injection for durable checkpoint files.
//!
//! The analyzer's model lifecycle persists checkpoints with a CRC-framed,
//! atomically-renamed on-disk format (see `saad_core::store`). This module
//! injects the storage faults that format must survive: torn writes that
//! truncate a file, and bit rot that flips bytes in place. The tamperer is
//! deterministic (seeded) and counts every injection, so tests can assert
//! that recovery rejected exactly the files that were damaged.
//!
//! The tamperer is deliberately format-agnostic — it damages bytes, not
//! checkpoint structures — so it exercises the reader's validation rather
//! than assuming knowledge of the layout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Exact counts of checkpoint files damaged, by fault type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TamperCounts {
    /// Files with at least one byte flipped in place.
    pub corrupted: u64,
    /// Files truncated to a strict prefix.
    pub truncated: u64,
}

impl TamperCounts {
    /// Total files damaged.
    pub fn total(&self) -> u64 {
        self.corrupted + self.truncated
    }
}

/// Deterministic, seeded tamperer for checkpoint files: simulates bit rot
/// (byte flips) and torn writes (truncation) on the checkpoint store.
#[derive(Debug)]
pub struct CheckpointTamperer {
    rng: StdRng,
    counts: TamperCounts,
}

impl CheckpointTamperer {
    /// Create a tamperer with a deterministic seed.
    pub fn new(seed: u64) -> CheckpointTamperer {
        CheckpointTamperer {
            rng: StdRng::seed_from_u64(seed),
            counts: TamperCounts::default(),
        }
    }

    /// Injection counts so far.
    pub fn counts(&self) -> TamperCounts {
        self.counts
    }

    /// Flip one random byte of `path` in place (bit rot), skipping the
    /// first `skip_prefix` bytes — pass 0 to allow damaging the file's
    /// magic, or the header length to force payload/checksum damage.
    /// Returns the damaged offset.
    ///
    /// # Errors
    ///
    /// I/O errors from opening or rewriting the file; `InvalidInput` if
    /// the file has no byte past `skip_prefix` to damage.
    pub fn corrupt_file(&mut self, path: &Path, skip_prefix: u64) -> io::Result<u64> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len <= skip_prefix {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("file is only {len} bytes; nothing past offset {skip_prefix}"),
            ));
        }
        let offset = skip_prefix + self.rng.gen_range(0..len - skip_prefix);
        file.seek(SeekFrom::Start(offset))?;
        let mut byte = [0u8; 1];
        file.read_exact(&mut byte)?;
        // Flip one random nonzero bit pattern so the byte always changes.
        byte[0] ^= 1u8 << self.rng.gen_range(0..8u32);
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&byte)?;
        file.sync_all()?;
        self.counts.corrupted += 1;
        Ok(offset)
    }

    /// Truncate `path` to a random strict prefix (torn write). Returns the
    /// new length, which may be zero.
    ///
    /// # Errors
    ///
    /// I/O errors from opening or truncating the file; `InvalidInput` if
    /// the file is already empty.
    pub fn truncate_file(&mut self, path: &Path) -> io::Result<u64> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file is already empty",
            ));
        }
        let new_len = self.rng.gen_range(0..len);
        file.set_len(new_len)?;
        file.sync_all()?;
        self.counts.truncated += 1;
        Ok(new_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    struct TempFile(PathBuf);

    impl TempFile {
        fn with_bytes(name: &str, bytes: &[u8]) -> TempFile {
            let path =
                std::env::temp_dir().join(format!("saad-fault-ckpt-{}-{name}", std::process::id()));
            fs::write(&path, bytes).unwrap();
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    #[test]
    fn corrupt_flips_exactly_one_byte_past_the_prefix() {
        let original: Vec<u8> = (0..=255u8).collect();
        let file = TempFile::with_bytes("corrupt", &original);
        let mut tamperer = CheckpointTamperer::new(7);
        let offset = tamperer.corrupt_file(&file.0, 8).unwrap();
        assert!(offset >= 8);
        let damaged = fs::read(&file.0).unwrap();
        assert_eq!(damaged.len(), original.len());
        let diffs: Vec<usize> = (0..original.len())
            .filter(|&i| original[i] != damaged[i])
            .collect();
        assert_eq!(diffs, vec![offset as usize]);
        assert_eq!(tamperer.counts().corrupted, 1);
    }

    #[test]
    fn truncate_leaves_a_strict_prefix() {
        let original = vec![0xABu8; 100];
        let file = TempFile::with_bytes("truncate", &original);
        let mut tamperer = CheckpointTamperer::new(7);
        let new_len = tamperer.truncate_file(&file.0).unwrap();
        assert!(new_len < 100);
        let damaged = fs::read(&file.0).unwrap();
        assert_eq!(damaged.len() as u64, new_len);
        assert_eq!(&damaged[..], &original[..new_len as usize]);
        assert_eq!(tamperer.counts().truncated, 1);
    }

    #[test]
    fn tampering_is_deterministic_per_seed() {
        let original: Vec<u8> = (0..200u8).map(|b| b.wrapping_mul(31)).collect();
        let a = TempFile::with_bytes("det-a", &original);
        let b = TempFile::with_bytes("det-b", &original);
        let off_a = CheckpointTamperer::new(42).corrupt_file(&a.0, 0).unwrap();
        let off_b = CheckpointTamperer::new(42).corrupt_file(&b.0, 0).unwrap();
        assert_eq!(off_a, off_b);
        assert_eq!(fs::read(&a.0).unwrap(), fs::read(&b.0).unwrap());
    }

    #[test]
    fn damaging_an_empty_or_short_file_is_an_explicit_error() {
        let file = TempFile::with_bytes("short", &[1, 2, 3]);
        let mut tamperer = CheckpointTamperer::new(1);
        assert!(tamperer.corrupt_file(&file.0, 8).is_err());
        let empty = TempFile::with_bytes("empty", &[]);
        assert!(tamperer.truncate_file(&empty.0).is_err());
        assert_eq!(tamperer.counts(), TamperCounts::default());
    }
}
