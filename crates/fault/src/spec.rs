//! Fault specifications: what to break, how, and how often.

use saad_sim::SimDuration;
use std::fmt;

/// How a targeted I/O request is disturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultType {
    /// Fail the request (the paper's *error fault*).
    Error,
    /// Stall the request for the given extra time (the paper pauses
    /// requests for 100 ms in its *delay faults*).
    Delay(SimDuration),
}

impl FaultType {
    /// The paper's standard 100 ms delay fault.
    pub fn standard_delay() -> FaultType {
        FaultType::Delay(SimDuration::from_millis(100))
    }
}

impl fmt::Display for FaultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultType::Error => f.write_str("error"),
            FaultType::Delay(d) => write!(f, "delay({d})"),
        }
    }
}

/// Fault intensity: the fraction of targeted requests affected.
///
/// "A low intensity fault affects 1% of I/O requests and a high intensity
/// fault affects 100% of the I/O requests." (§5.4)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intensity {
    /// 1% of requests.
    Low,
    /// 100% of requests.
    High,
    /// A custom probability in `[0, 1]` (for ablation sweeps).
    Custom(f64),
}

impl Intensity {
    /// The probability a targeted request is affected.
    ///
    /// # Panics
    ///
    /// Panics if a custom probability is outside `[0, 1]`.
    pub fn probability(&self) -> f64 {
        match *self {
            Intensity::Low => 0.01,
            Intensity::High => 1.0,
            Intensity::Custom(p) => {
                assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
                p
            }
        }
    }
}

impl fmt::Display for Intensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intensity::Low => f.write_str("low"),
            Intensity::High => f.write_str("high"),
            Intensity::Custom(p) => write!(f, "p={p}"),
        }
    }
}

/// A complete fault specification: fault type + intensity + targeted I/O
/// class (matching [`saad_sim::resource::IoRequest::class`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// I/O class the fault targets, e.g. `"wal"` or `"memtable-flush"`.
    pub class: &'static str,
    /// Error or delay.
    pub fault: FaultType,
    /// Fraction of targeted requests affected.
    pub intensity: Intensity,
}

impl FaultSpec {
    /// Create a spec.
    pub fn new(class: &'static str, fault: FaultType, intensity: Intensity) -> FaultSpec {
        FaultSpec {
            class,
            fault,
            intensity,
        }
    }

    /// Short name in the paper's style, e.g. `error-wal-high`.
    pub fn name(&self) -> String {
        let fault = match self.fault {
            FaultType::Error => "error",
            FaultType::Delay(_) => "delay",
        };
        format!("{fault}-{}-{}", self.class, self.intensity)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} ({} intensity)",
            self.fault, self.class, self.intensity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensities_match_paper() {
        assert_eq!(Intensity::Low.probability(), 0.01);
        assert_eq!(Intensity::High.probability(), 1.0);
        assert_eq!(Intensity::Custom(0.3).probability(), 0.3);
    }

    #[test]
    #[should_panic]
    fn custom_out_of_range_panics() {
        Intensity::Custom(1.5).probability();
    }

    #[test]
    fn standard_delay_is_100ms() {
        assert_eq!(
            FaultType::standard_delay(),
            FaultType::Delay(SimDuration::from_millis(100))
        );
    }

    #[test]
    fn names_are_papers_style() {
        let spec = FaultSpec::new("wal", FaultType::Error, Intensity::High);
        assert_eq!(spec.name(), "error-wal-high");
        let spec = FaultSpec::new(
            "memtable-flush",
            FaultType::standard_delay(),
            Intensity::Low,
        );
        assert_eq!(spec.name(), "delay-memtable-flush-low");
    }

    #[test]
    fn displays_are_informative() {
        let spec = FaultSpec::new("wal", FaultType::standard_delay(), Intensity::Low);
        let s = spec.to_string();
        assert!(s.contains("delay") && s.contains("wal") && s.contains("low"));
    }
}
