//! Gray-failure injection: degradations that never trip a hard error.
//!
//! The classic injectors in this crate ([`crate::FaultSchedule`],
//! [`crate::HogSchedule`]) model crash-shaped storage faults — requests
//! fail or stall outright. Production outages are more often *gray*:
//! an upstream that is slow but not dead, several hosts degrading at
//! once, one direction of a link losing bandwidth, or a rejecting
//! upstream amplifying load through retries, or a resolver quietly
//! degrading. [`GraySchedule`] models those shapes for the staged relay
//! workload (`saad-relay`),
//! reusing the timed-window machinery ([`crate::FaultWindow`]) and the
//! exact-accounting discipline (seeded RNG, injection counters) of the
//! existing injectors.
//!
//! Each fault targets a set of hosts ([`HostSet`], host numbers as in
//! `saad_core::HostId`) and is queried per stage execution:
//!
//! * [`GrayFault::SlowUpstream`] → [`GraySchedule::connect_factor_at`]
//!   multiplies upstream connect latency (the *Connecting* stage);
//! * [`GrayFault::CorrelatedHog`] → [`GraySchedule::relay_factor_at`]
//!   multiplies data-plane copy time (the *Relaying* stage),
//!   simultaneously on every host in the set;
//! * [`GrayFault::AsymmetricPartition`] →
//!   [`GraySchedule::reply_factor_at`] multiplies the proxy→client send
//!   time only (the *Replying* stage) — the reverse direction stays
//!   healthy;
//! * [`GrayFault::RetryStorm`] → [`GraySchedule::reject_connect`] makes
//!   the upstream refuse a connect attempt with a seeded probability,
//!   triggering the caller's retry loop;
//! * [`GrayFault::SlowDns`] → [`GraySchedule::dns_factor_at`]
//!   multiplies name-resolution time (the *Preparing* stage);
//! * [`GrayFault::EscaperFlap`] → [`GraySchedule::probe_fails`] makes a
//!   background escaper health probe fail with a seeded probability (the
//!   *Escaper* stage) — the data plane stays healthy, only the health
//!   check flaps.

use crate::schedule::FaultWindow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saad_sim::SimTime;
use std::fmt;

/// A set of target hosts, stored as a bitmask over host numbers `0..64`
/// (the values of `saad_core::HostId.0`; the paper numbers hosts from 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostSet(u64);

impl HostSet {
    /// The empty set.
    pub const EMPTY: HostSet = HostSet(0);

    /// Build a set from host numbers.
    ///
    /// # Panics
    ///
    /// Panics if a host number is ≥ 64.
    pub fn of(hosts: &[u16]) -> HostSet {
        let mut mask = 0u64;
        for &h in hosts {
            assert!(h < 64, "host number {h} out of HostSet range");
            mask |= 1 << h;
        }
        HostSet(mask)
    }

    /// Whether `host` is in the set.
    pub fn contains(&self, host: u16) -> bool {
        host < 64 && self.0 & (1 << host) != 0
    }

    /// Number of hosts in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// The host numbers in the set, ascending.
    pub fn hosts(&self) -> Vec<u16> {
        (0..64).filter(|&h| self.contains(h)).collect()
    }
}

impl fmt::Display for HostSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hosts = self.hosts();
        let mut first = true;
        for h in hosts {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{h}")?;
            first = false;
        }
        Ok(())
    }
}

/// One gray-failure shape (see the module docs for which relay stage each
/// one localizes to).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrayFault {
    /// Upstream connects take `factor` times longer — slow but not dead.
    SlowUpstream {
        /// Latency multiplier (> 1).
        factor: f64,
    },
    /// Data-plane copy work takes `factor` times longer, simultaneously
    /// on every targeted host (a correlated resource hog).
    CorrelatedHog {
        /// Service-time multiplier (> 1).
        factor: f64,
    },
    /// The proxy→client direction of the link is degraded by `factor`;
    /// the client→proxy direction is untouched.
    AsymmetricPartition {
        /// Send-time multiplier (> 1).
        factor: f64,
    },
    /// The upstream refuses each connect attempt with probability
    /// `reject_p`, amplifying load through the caller's retry loop.
    RetryStorm {
        /// Per-attempt rejection probability in `(0, 1]`.
        reject_p: f64,
    },
    /// Name resolution takes `factor` times longer — a degraded resolver
    /// slows the *Preparing* stage while connects, copies, and replies
    /// all stay healthy.
    SlowDns {
        /// Resolution-time multiplier (> 1).
        factor: f64,
    },
    /// The background escaper health probe fails with probability
    /// `fail_p` while the data plane stays fully healthy — the health
    /// check flaps, the traffic does not (the *Escaper* stage).
    EscaperFlap {
        /// Per-probe failure probability in `(0, 1]`.
        fail_p: f64,
    },
}

impl GrayFault {
    /// Catalog-style short name.
    pub fn name(&self) -> &'static str {
        match self {
            GrayFault::SlowUpstream { .. } => "slow-upstream",
            GrayFault::CorrelatedHog { .. } => "correlated-hog",
            GrayFault::AsymmetricPartition { .. } => "asymmetric-partition",
            GrayFault::RetryStorm { .. } => "retry-storm",
            GrayFault::SlowDns { .. } => "slow-dns",
            GrayFault::EscaperFlap { .. } => "escaper-flap",
        }
    }

    fn validate(&self) {
        match *self {
            GrayFault::SlowUpstream { factor }
            | GrayFault::CorrelatedHog { factor }
            | GrayFault::AsymmetricPartition { factor }
            | GrayFault::SlowDns { factor } => {
                assert!(
                    factor.is_finite() && factor > 1.0,
                    "gray slowdown factor must be finite and > 1, got {factor}"
                );
            }
            GrayFault::RetryStorm { reject_p } => {
                assert!(
                    reject_p > 0.0 && reject_p <= 1.0,
                    "reject probability must be in (0, 1], got {reject_p}"
                );
            }
            GrayFault::EscaperFlap { fail_p } => {
                assert!(
                    fail_p > 0.0 && fail_p <= 1.0,
                    "probe failure probability must be in (0, 1], got {fail_p}"
                );
            }
        }
    }
}

impl fmt::Display for GrayFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GrayFault::SlowUpstream { factor } => write!(f, "slow-upstream(x{factor})"),
            GrayFault::CorrelatedHog { factor } => write!(f, "correlated-hog(x{factor})"),
            GrayFault::AsymmetricPartition { factor } => {
                write!(f, "asymmetric-partition(x{factor})")
            }
            GrayFault::RetryStorm { reject_p } => write!(f, "retry-storm(p={reject_p})"),
            GrayFault::SlowDns { factor } => write!(f, "slow-dns(x{factor})"),
            GrayFault::EscaperFlap { fail_p } => write!(f, "escaper-flap(p={fail_p})"),
        }
    }
}

/// A gray fault plus the hosts it degrades. Carried by
/// [`FaultWindow<GrayFaultSpec>`], so it stays `Copy` like
/// [`crate::FaultSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayFaultSpec {
    /// What goes gray.
    pub fault: GrayFault,
    /// On which hosts.
    pub hosts: HostSet,
}

impl GrayFaultSpec {
    /// Create a spec.
    ///
    /// # Panics
    ///
    /// Panics if the host set is empty or the fault's parameter is out of
    /// range (factor ≤ 1, probability outside `(0, 1]`).
    pub fn new(fault: GrayFault, hosts: HostSet) -> GrayFaultSpec {
        fault.validate();
        assert!(!hosts.is_empty(), "a gray fault needs at least one host");
        GrayFaultSpec { fault, hosts }
    }

    /// Catalog-style name, e.g. `slow-upstream@2` or `correlated-hog@1,3`.
    pub fn name(&self) -> String {
        format!("{}@{}", self.fault.name(), self.hosts)
    }
}

impl fmt::Display for GrayFaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on hosts {{{}}}", self.fault, self.hosts)
    }
}

/// Timed gray-failure windows with exact injection accounting.
///
/// The query methods take `&mut self` because rejection draws consume the
/// seeded RNG and every disturbance bumps the [`GraySchedule::injected`]
/// counter — the same exactness discipline as [`crate::FaultSchedule`].
///
/// # Example
///
/// ```
/// use saad_fault::{GrayFault, GrayFaultSpec, GraySchedule, HostSet};
/// use saad_sim::SimTime;
///
/// let mut g = GraySchedule::new(7).with_window(
///     SimTime::from_mins(3),
///     SimTime::from_mins(8),
///     GrayFaultSpec::new(GrayFault::SlowUpstream { factor: 8.0 }, HostSet::of(&[2])),
/// );
/// assert_eq!(g.connect_factor_at(SimTime::from_mins(5), 2), 8.0);
/// assert_eq!(g.connect_factor_at(SimTime::from_mins(5), 1), 1.0);
/// assert_eq!(g.connect_factor_at(SimTime::from_mins(9), 2), 1.0);
/// assert_eq!(g.injected(), 1);
/// ```
#[derive(Debug)]
pub struct GraySchedule {
    windows: Vec<FaultWindow<GrayFaultSpec>>,
    rng: StdRng,
    injected: u64,
}

impl GraySchedule {
    /// Create an empty schedule with the given RNG seed (used only by
    /// [`GraySchedule::reject_connect`] draws).
    pub fn new(seed: u64) -> GraySchedule {
        GraySchedule {
            windows: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
        }
    }

    /// Add a fault window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn with_window(
        mut self,
        start: SimTime,
        end: SimTime,
        spec: GrayFaultSpec,
    ) -> GraySchedule {
        assert!(end > start, "gray fault window must be non-empty");
        self.windows.push(FaultWindow { start, end, spec });
        self
    }

    /// The configured windows.
    pub fn windows(&self) -> &[FaultWindow<GrayFaultSpec>] {
        &self.windows
    }

    /// Stage executions actually disturbed so far (factor applied or
    /// connect rejected).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Whether any window is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.windows.iter().any(|w| w.active_at(now))
    }

    /// Combined multiplier from all active windows whose fault matches
    /// `pick`, for `host` at `now`. Counts one injection when ≠ 1.
    fn factor_at(
        &mut self,
        now: SimTime,
        host: u16,
        pick: impl Fn(&GrayFault) -> Option<f64>,
    ) -> f64 {
        let mut factor = 1.0;
        for w in &self.windows {
            if !w.active_at(now) || !w.spec.hosts.contains(host) {
                continue;
            }
            if let Some(f) = pick(&w.spec.fault) {
                factor *= f;
            }
        }
        if factor != 1.0 {
            self.injected += 1;
        }
        factor
    }

    /// Upstream connect latency multiplier ([`GrayFault::SlowUpstream`]).
    pub fn connect_factor_at(&mut self, now: SimTime, host: u16) -> f64 {
        self.factor_at(now, host, |f| match *f {
            GrayFault::SlowUpstream { factor } => Some(factor),
            _ => None,
        })
    }

    /// Data-plane copy-time multiplier ([`GrayFault::CorrelatedHog`]).
    pub fn relay_factor_at(&mut self, now: SimTime, host: u16) -> f64 {
        self.factor_at(now, host, |f| match *f {
            GrayFault::CorrelatedHog { factor } => Some(factor),
            _ => None,
        })
    }

    /// Proxy→client send-time multiplier
    /// ([`GrayFault::AsymmetricPartition`]).
    pub fn reply_factor_at(&mut self, now: SimTime, host: u16) -> f64 {
        self.factor_at(now, host, |f| match *f {
            GrayFault::AsymmetricPartition { factor } => Some(factor),
            _ => None,
        })
    }

    /// Name-resolution-time multiplier ([`GrayFault::SlowDns`], the
    /// *Preparing* stage).
    pub fn dns_factor_at(&mut self, now: SimTime, host: u16) -> f64 {
        self.factor_at(now, host, |f| match *f {
            GrayFault::SlowDns { factor } => Some(factor),
            _ => None,
        })
    }

    /// Whether a connect attempt on `host` at `now` is refused by a
    /// [`GrayFault::RetryStorm`] window. Seeded draw; counted when it
    /// rejects.
    pub fn reject_connect(&mut self, now: SimTime, host: u16) -> bool {
        for i in 0..self.windows.len() {
            let w = self.windows[i];
            if !w.active_at(now) || !w.spec.hosts.contains(host) {
                continue;
            }
            if let GrayFault::RetryStorm { reject_p } = w.spec.fault {
                let hit = reject_p >= 1.0 || self.rng.gen_bool(reject_p);
                if hit {
                    self.injected += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Whether a background escaper health probe on `host` at `now` fails
    /// under a [`GrayFault::EscaperFlap`] window. Seeded draw; counted
    /// when it fails.
    pub fn probe_fails(&mut self, now: SimTime, host: u16) -> bool {
        for i in 0..self.windows.len() {
            let w = self.windows[i];
            if !w.active_at(now) || !w.spec.hosts.contains(host) {
                continue;
            }
            if let GrayFault::EscaperFlap { fail_p } = w.spec.fault {
                let hit = fail_p >= 1.0 || self.rng.gen_bool(fail_p);
                if hit {
                    self.injected += 1;
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimTime {
        SimTime::from_mins(m)
    }

    #[test]
    fn host_set_membership_and_order() {
        let s = HostSet::of(&[3, 1]);
        assert!(s.contains(1) && s.contains(3));
        assert!(!s.contains(2) && !s.contains(63));
        assert_eq!(s.hosts(), vec![1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "1,3");
        assert!(HostSet::EMPTY.is_empty());
    }

    #[test]
    #[should_panic]
    fn host_set_rejects_out_of_range() {
        HostSet::of(&[64]);
    }

    #[test]
    fn spec_names_are_catalog_style() {
        let s = GrayFaultSpec::new(
            GrayFault::CorrelatedHog { factor: 6.0 },
            HostSet::of(&[1, 3]),
        );
        assert_eq!(s.name(), "correlated-hog@1,3");
        let s = GrayFaultSpec::new(GrayFault::RetryStorm { reject_p: 0.35 }, HostSet::of(&[2]));
        assert_eq!(s.name(), "retry-storm@2");
    }

    #[test]
    #[should_panic]
    fn factor_at_most_one_rejected() {
        GrayFaultSpec::new(GrayFault::SlowUpstream { factor: 1.0 }, HostSet::of(&[1]));
    }

    #[test]
    #[should_panic]
    fn empty_host_set_rejected() {
        GrayFaultSpec::new(GrayFault::SlowUpstream { factor: 2.0 }, HostSet::EMPTY);
    }

    #[test]
    fn factors_apply_only_in_window_and_host_set() {
        let mut g = GraySchedule::new(1).with_window(
            mins(3),
            mins(8),
            GrayFaultSpec::new(GrayFault::SlowUpstream { factor: 8.0 }, HostSet::of(&[2])),
        );
        assert_eq!(g.connect_factor_at(mins(5), 2), 8.0);
        assert_eq!(g.connect_factor_at(mins(5), 1), 1.0);
        assert_eq!(g.connect_factor_at(mins(2), 2), 1.0);
        assert_eq!(g.connect_factor_at(mins(8), 2), 1.0);
        // Other query kinds are untouched by a SlowUpstream window.
        assert_eq!(g.relay_factor_at(mins(5), 2), 1.0);
        assert_eq!(g.reply_factor_at(mins(5), 2), 1.0);
        assert!(!g.reject_connect(mins(5), 2));
        assert_eq!(g.injected(), 1);
    }

    #[test]
    fn correlated_hog_hits_all_targets_simultaneously() {
        let mut g = GraySchedule::new(1).with_window(
            mins(1),
            mins(2),
            GrayFaultSpec::new(
                GrayFault::CorrelatedHog { factor: 6.0 },
                HostSet::of(&[1, 3]),
            ),
        );
        assert_eq!(g.relay_factor_at(mins(1), 1), 6.0);
        assert_eq!(g.relay_factor_at(mins(1), 3), 6.0);
        assert_eq!(g.relay_factor_at(mins(1), 2), 1.0);
        assert_eq!(g.injected(), 2);
    }

    #[test]
    fn slow_dns_only_affects_dns_queries() {
        let mut g = GraySchedule::new(1).with_window(
            mins(3),
            mins(8),
            GrayFaultSpec::new(GrayFault::SlowDns { factor: 12.0 }, HostSet::of(&[3])),
        );
        assert_eq!(g.dns_factor_at(mins(5), 3), 12.0);
        assert_eq!(g.dns_factor_at(mins(5), 2), 1.0);
        assert_eq!(g.dns_factor_at(mins(9), 3), 1.0);
        // Other query kinds stay healthy under a SlowDns window.
        assert_eq!(g.connect_factor_at(mins(5), 3), 1.0);
        assert_eq!(g.relay_factor_at(mins(5), 3), 1.0);
        assert_eq!(g.reply_factor_at(mins(5), 3), 1.0);
        assert!(!g.reject_connect(mins(5), 3));
        assert_eq!(g.injected(), 1);
        assert_eq!(
            GrayFaultSpec::new(GrayFault::SlowDns { factor: 12.0 }, HostSet::of(&[3])).name(),
            "slow-dns@3"
        );
    }

    #[test]
    fn overlapping_windows_multiply() {
        let mut g = GraySchedule::new(1)
            .with_window(
                mins(0),
                mins(10),
                GrayFaultSpec::new(GrayFault::SlowUpstream { factor: 2.0 }, HostSet::of(&[1])),
            )
            .with_window(
                mins(0),
                mins(10),
                GrayFaultSpec::new(GrayFault::SlowUpstream { factor: 3.0 }, HostSet::of(&[1])),
            );
        assert_eq!(g.connect_factor_at(mins(1), 1), 6.0);
        assert_eq!(g.injected(), 1);
    }

    #[test]
    fn retry_storm_rejects_at_about_the_configured_rate() {
        let mut g = GraySchedule::new(9).with_window(
            mins(0),
            mins(60),
            GrayFaultSpec::new(GrayFault::RetryStorm { reject_p: 0.35 }, HostSet::of(&[2])),
        );
        let hits = (0..100_000)
            .filter(|_| g.reject_connect(mins(1), 2))
            .count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.35).abs() < 0.01, "rate={rate}");
        assert_eq!(g.injected(), hits as u64);
        // Untargeted host never rejected.
        assert!(!(0..1000).any(|_| g.reject_connect(mins(1), 1)));
    }

    #[test]
    fn escaper_flap_fails_probes_at_about_the_configured_rate() {
        let mut g = GraySchedule::new(9).with_window(
            mins(0),
            mins(60),
            GrayFaultSpec::new(GrayFault::EscaperFlap { fail_p: 0.4 }, HostSet::of(&[1])),
        );
        let hits = (0..100_000).filter(|_| g.probe_fails(mins(1), 1)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.4).abs() < 0.01, "rate={rate}");
        assert_eq!(g.injected(), hits as u64);
        // Untargeted host never fails.
        assert!(!(0..1000).any(|_| g.probe_fails(mins(1), 2)));
        // Outside the window the probe always passes.
        assert!(!g.probe_fails(mins(61), 1));
    }

    #[test]
    fn escaper_flap_leaves_the_data_plane_healthy() {
        let mut g = GraySchedule::new(3).with_window(
            mins(3),
            mins(8),
            GrayFaultSpec::new(GrayFault::EscaperFlap { fail_p: 1.0 }, HostSet::of(&[1])),
        );
        // Every non-probe query stays at the healthy baseline.
        assert_eq!(g.connect_factor_at(mins(5), 1), 1.0);
        assert_eq!(g.relay_factor_at(mins(5), 1), 1.0);
        assert_eq!(g.reply_factor_at(mins(5), 1), 1.0);
        assert_eq!(g.dns_factor_at(mins(5), 1), 1.0);
        assert!(!g.reject_connect(mins(5), 1));
        assert_eq!(g.injected(), 0);
        // Only the probe flaps — deterministically at p = 1.
        assert!(g.probe_fails(mins(5), 1));
        assert_eq!(g.injected(), 1);
        assert_eq!(
            GrayFaultSpec::new(GrayFault::EscaperFlap { fail_p: 0.4 }, HostSet::of(&[1])).name(),
            "escaper-flap@1"
        );
    }

    #[test]
    #[should_panic]
    fn escaper_flap_probability_out_of_range_rejected() {
        GrayFaultSpec::new(GrayFault::EscaperFlap { fail_p: 1.5 }, HostSet::of(&[1]));
    }

    #[test]
    fn rejection_draws_are_reproducible() {
        let run = |seed| {
            let mut g = GraySchedule::new(seed).with_window(
                mins(0),
                mins(60),
                GrayFaultSpec::new(GrayFault::RetryStorm { reject_p: 0.5 }, HostSet::of(&[1])),
            );
            (0..64)
                .map(|_| g.reject_connect(mins(1), 1))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic]
    fn empty_window_rejected() {
        GraySchedule::new(1).with_window(
            mins(5),
            mins(5),
            GrayFaultSpec::new(GrayFault::SlowUpstream { factor: 2.0 }, HostSet::of(&[1])),
        );
    }

    #[test]
    fn displays_are_informative() {
        let spec = GrayFaultSpec::new(
            GrayFault::AsymmetricPartition { factor: 10.0 },
            HostSet::of(&[4]),
        );
        let s = spec.to_string();
        assert!(s.contains("asymmetric-partition") && s.contains('4'), "{s}");
    }
}
