//! Lossy-link fault injection for the framed synopsis transport.
//!
//! The paper's experiments break the storage path; this module breaks the
//! *monitoring* path — the node → analyzer link carrying encoded synopsis
//! frames (see `saad_core::transport`). A [`LossyLink`] sits between a
//! frame sender and receiver and, inside timed [`FaultWindow`]s, drops,
//! duplicates, delays (reorders), corrupts, or disconnects frames — with
//! exact injection counters so receiver-side accounting can be checked
//! against ground truth.

use crate::{FaultWindow, Intensity};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saad_sim::{SimDuration, SimTime};
use std::fmt;

/// How a frame in flight is disturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Silently discard the frame (packet loss).
    Loss,
    /// Deliver the frame twice.
    Duplicate,
    /// Hold the frame for the given time before delivery — later frames
    /// overtake it, so sustained delay also reorders.
    Delay(SimDuration),
    /// Flip one bit of the frame; the receiver's checksum must reject it.
    Corrupt,
    /// Link down: every frame in the window is dropped (models a
    /// disconnect/reconnect cycle; intensity is ignored — a dead link
    /// loses everything).
    Disconnect,
}

impl fmt::Display for LinkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkFault::Loss => f.write_str("loss"),
            LinkFault::Duplicate => f.write_str("duplicate"),
            LinkFault::Delay(d) => write!(f, "delay({d})"),
            LinkFault::Corrupt => f.write_str("corrupt"),
            LinkFault::Disconnect => f.write_str("disconnect"),
        }
    }
}

/// A complete link-fault specification: what to do and to which fraction
/// of frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultSpec {
    /// The disturbance applied.
    pub fault: LinkFault,
    /// Fraction of frames affected ([`LinkFault::Disconnect`] ignores it).
    pub intensity: Intensity,
}

impl LinkFaultSpec {
    /// Create a spec.
    pub fn new(fault: LinkFault, intensity: Intensity) -> LinkFaultSpec {
        LinkFaultSpec { fault, intensity }
    }
}

impl fmt::Display for LinkFaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} intensity)", self.fault, self.intensity)
    }
}

/// Exact counts of what the link actually did to the stream — ground
/// truth that receiver-side statistics must reproduce.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultCounts {
    /// Frames dropped by [`LinkFault::Loss`].
    pub lost: u64,
    /// Extra copies delivered by [`LinkFault::Duplicate`].
    pub duplicated: u64,
    /// Frames held back by [`LinkFault::Delay`].
    pub delayed: u64,
    /// Frames bit-flipped by [`LinkFault::Corrupt`].
    pub corrupted: u64,
    /// Frames dropped by [`LinkFault::Disconnect`].
    pub disconnected: u64,
}

impl LinkFaultCounts {
    /// Frames that will never reach the receiver (lost + disconnected).
    pub fn never_delivered(&self) -> u64 {
        self.lost + self.disconnected
    }
}

/// A fault-injecting link between a frame sender and receiver.
///
/// Frames pass through [`LossyLink::transmit`]; the first active window
/// whose intensity coin-flip hits decides the frame's fate (first match
/// wins, like [`crate::FaultSchedule`]). Delayed frames are released once
/// `now` passes their release time, after any newer frames transmitted in
/// between — which is exactly a reordering link.
///
/// # Example
///
/// ```
/// use saad_fault::{Intensity, LinkFault, LinkFaultSpec, LossyLink};
/// use saad_sim::SimTime;
///
/// let mut link = LossyLink::new(7).with_window(
///     SimTime::from_mins(1),
///     SimTime::from_mins(2),
///     LinkFaultSpec::new(LinkFault::Loss, Intensity::High),
/// );
/// let delivered = link.transmit(SimTime::from_secs(90), b"frame".as_slice().into());
/// assert!(delivered.is_empty()); // inside the loss window
/// assert_eq!(link.counts().lost, 1);
/// ```
#[derive(Debug)]
pub struct LossyLink {
    windows: Vec<FaultWindow<LinkFaultSpec>>,
    rng: StdRng,
    counts: LinkFaultCounts,
    /// Frames held by delay faults, with their release times.
    in_flight: Vec<(SimTime, Bytes)>,
}

impl LossyLink {
    /// Create a fault-free link with the given RNG seed.
    pub fn new(seed: u64) -> LossyLink {
        LossyLink {
            windows: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            counts: LinkFaultCounts::default(),
            in_flight: Vec::new(),
        }
    }

    /// Add a fault window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn with_window(mut self, start: SimTime, end: SimTime, spec: LinkFaultSpec) -> LossyLink {
        assert!(end > start, "fault window must be non-empty");
        self.windows.push(FaultWindow { start, end, spec });
        self
    }

    /// The configured windows.
    pub fn windows(&self) -> &[FaultWindow<LinkFaultSpec>] {
        &self.windows
    }

    /// Ground-truth injection counters.
    pub fn counts(&self) -> LinkFaultCounts {
        self.counts
    }

    /// Whether any window is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.windows.iter().any(|w| w.active_at(now))
    }

    /// Release delayed frames whose time has come, oldest first.
    fn release_due(&mut self, now: SimTime, out: &mut Vec<Bytes>) {
        if self.in_flight.is_empty() {
            return;
        }
        self.in_flight.sort_by_key(|&(release, _)| release);
        let due = self
            .in_flight
            .iter()
            .take_while(|&&(r, _)| r <= now)
            .count();
        out.extend(self.in_flight.drain(..due).map(|(_, frame)| frame));
    }

    /// Send one frame through the link at time `now`; returns the frames
    /// the receiver gets (any delayed frames now due, then this frame's
    /// copies — zero, one, or two, possibly corrupted).
    pub fn transmit(&mut self, now: SimTime, frame: Bytes) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(2);
        self.release_due(now, &mut out);
        match self.fate(now) {
            None => out.push(frame),
            Some(LinkFault::Loss) => self.counts.lost += 1,
            Some(LinkFault::Disconnect) => self.counts.disconnected += 1,
            Some(LinkFault::Duplicate) => {
                self.counts.duplicated += 1;
                out.push(frame.clone());
                out.push(frame);
            }
            Some(LinkFault::Delay(d)) => {
                self.counts.delayed += 1;
                self.in_flight.push((now + d, frame));
            }
            Some(LinkFault::Corrupt) => {
                self.counts.corrupted += 1;
                let mut bytes = frame.to_vec();
                if !bytes.is_empty() {
                    let i = self.rng.gen_range(0..bytes.len());
                    let bit = 1u8 << self.rng.gen_range(0..8u8);
                    bytes[i] ^= bit;
                }
                out.push(Bytes::from(bytes));
            }
        }
        out
    }

    /// Drain every still-delayed frame (end of stream), oldest first.
    pub fn flush(&mut self) -> Vec<Bytes> {
        self.in_flight.sort_by_key(|&(release, _)| release);
        self.in_flight.drain(..).map(|(_, frame)| frame).collect()
    }

    fn fate(&mut self, now: SimTime) -> Option<LinkFault> {
        for i in 0..self.windows.len() {
            let w = &self.windows[i];
            if !w.active_at(now) {
                continue;
            }
            if matches!(w.spec.fault, LinkFault::Disconnect) {
                // A dead link needs no coin flip.
                return Some(LinkFault::Disconnect);
            }
            let p = w.spec.intensity.probability();
            if p >= 1.0 || self.rng.gen_bool(p) {
                return Some(self.windows[i].spec.fault);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 8])
    }

    fn link_with(fault: LinkFault, intensity: Intensity) -> LossyLink {
        LossyLink::new(3).with_window(
            SimTime::from_mins(1),
            SimTime::from_mins(2),
            LinkFaultSpec::new(fault, intensity),
        )
    }

    #[test]
    fn clean_link_passes_everything_through() {
        let mut link = LossyLink::new(1);
        for i in 0..10u8 {
            let out = link.transmit(SimTime::from_secs(i as u64), frame(i));
            assert_eq!(out, vec![frame(i)]);
        }
        assert_eq!(link.counts(), LinkFaultCounts::default());
        assert!(link.flush().is_empty());
    }

    #[test]
    fn frames_outside_the_window_are_untouched() {
        let mut link = link_with(LinkFault::Loss, Intensity::High);
        assert_eq!(link.transmit(SimTime::from_secs(30), frame(1)).len(), 1);
        assert_eq!(link.transmit(SimTime::from_mins(3), frame(2)).len(), 1);
        assert_eq!(link.counts().lost, 0);
    }

    #[test]
    fn high_loss_drops_every_frame_and_counts_them() {
        let mut link = link_with(LinkFault::Loss, Intensity::High);
        for i in 0..20u8 {
            let at = SimTime::from_secs(60 + i as u64);
            assert!(link.transmit(at, frame(i)).is_empty());
        }
        assert_eq!(link.counts().lost, 20);
        assert_eq!(link.counts().never_delivered(), 20);
    }

    #[test]
    fn partial_loss_rate_tracks_intensity() {
        let mut link = link_with(LinkFault::Loss, Intensity::Custom(0.2));
        let mut delivered = 0u64;
        for i in 0..5_000u64 {
            delivered += link.transmit(SimTime::from_secs(60), frame(i as u8)).len() as u64;
        }
        let loss_rate = link.counts().lost as f64 / 5_000.0;
        assert!((loss_rate - 0.2).abs() < 0.03, "loss rate {loss_rate}");
        assert_eq!(delivered + link.counts().lost, 5_000);
    }

    #[test]
    fn duplicate_delivers_two_identical_copies() {
        let mut link = link_with(LinkFault::Duplicate, Intensity::High);
        let out = link.transmit(SimTime::from_secs(90), frame(7));
        assert_eq!(out, vec![frame(7), frame(7)]);
        assert_eq!(link.counts().duplicated, 1);
    }

    #[test]
    fn delay_reorders_later_frames_ahead() {
        let mut link = LossyLink::new(3).with_window(
            SimTime::from_secs(60),
            SimTime::from_secs(61),
            LinkFaultSpec::new(
                LinkFault::Delay(SimDuration::from_secs(10)),
                Intensity::High,
            ),
        );
        // Frame A hits the delay window and is held until t=70.
        assert!(link.transmit(SimTime::from_secs(60), frame(0xA)).is_empty());
        // Frame B (t=65) overtakes it.
        assert_eq!(
            link.transmit(SimTime::from_secs(65), frame(0xB)),
            vec![frame(0xB)]
        );
        // Frame C (t=75) flushes A out first, then delivers itself.
        assert_eq!(
            link.transmit(SimTime::from_secs(75), frame(0xC)),
            vec![frame(0xA), frame(0xC)]
        );
        assert_eq!(link.counts().delayed, 1);
    }

    #[test]
    fn flush_releases_everything_still_in_flight() {
        let mut link = LossyLink::new(3).with_window(
            SimTime::from_secs(0),
            SimTime::from_secs(100),
            LinkFaultSpec::new(
                LinkFault::Delay(SimDuration::from_secs(1_000)),
                Intensity::High,
            ),
        );
        for i in 0..5u8 {
            assert!(link
                .transmit(SimTime::from_secs(i as u64), frame(i))
                .is_empty());
        }
        let flushed = link.flush();
        assert_eq!(flushed, (0..5u8).map(frame).collect::<Vec<_>>());
        assert!(link.flush().is_empty());
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut link = link_with(LinkFault::Corrupt, Intensity::High);
        let out = link.transmit(SimTime::from_secs(70), frame(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 8);
        let differing_bits: u32 = out[0]
            .iter()
            .zip(frame(0).iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing_bits, 1);
        assert_eq!(link.counts().corrupted, 1);
    }

    #[test]
    fn disconnect_drops_all_frames_regardless_of_intensity() {
        let mut link = link_with(LinkFault::Disconnect, Intensity::Low);
        for i in 0..50u8 {
            assert!(link.transmit(SimTime::from_secs(61), frame(i)).is_empty());
        }
        assert_eq!(link.counts().disconnected, 50);
    }

    #[test]
    fn injections_are_reproducible_per_seed() {
        let run = |seed| {
            let mut link = LossyLink::new(seed).with_window(
                SimTime::ZERO,
                SimTime::from_mins(10),
                LinkFaultSpec::new(LinkFault::Loss, Intensity::Custom(0.5)),
            );
            (0..64)
                .map(|i| link.transmit(SimTime::from_secs(i), frame(i as u8)).len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic]
    fn empty_window_rejected() {
        LossyLink::new(1).with_window(
            SimTime::from_mins(5),
            SimTime::from_mins(5),
            LinkFaultSpec::new(LinkFault::Loss, Intensity::High),
        );
    }
}
