//! A socket-level fault injector: a TCP proxy that sits between an agent
//! and a collector and misbehaves on purpose.
//!
//! [`FaultyProxy`] is message-aware: it forwards a fixed-size preamble in
//! each direction verbatim (the handshake — faults there would only
//! prevent the session from starting), then treats the client→server
//! stream as `u32` big-endian length-prefixed messages and applies seeded
//! faults per message: **drop** (the message vanishes, surfacing as a
//! sequence gap downstream), **corrupt** (one payload byte is flipped, to
//! be caught by the receiver's CRC), **delay** (the message is held
//! briefly, preserving per-connection order), **mid-stream disconnect**
//! (both directions severed on a seeded [`DisconnectSchedule`] — once
//! after N messages, or repeatedly for flapping-link scenarios),
//! **bandwidth throttle** (every message is held for a time proportional
//! to its frame size, with seeded jitter — a slow link rather than a
//! lossy one, for SlowUpstream-over-TCP scenarios), and **slow-loris
//! trickle** (a message is forwarded in seeded partial writes — down to
//! one byte at a time — each flushed and followed by a pause, so the
//! receiver sees length prefixes split across reads and frames that stall
//! mid-body).
//! Every injection is counted exactly in [`ProxyCounts`] — and per
//! connection in [`ConnectionThrottle`] for the throttle — so tests can
//! reconcile what the proxy did against what the transport accounted.
//!
//! The proxy knows nothing about SAAD frame internals beyond the length
//! prefix — the preamble sizes are parameters — so it stays reusable for
//! any length-prefixed protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest length-prefixed message the proxy will buffer (matches the
/// transport's frame bound with headroom). A prefix beyond this means the
/// stream is desynchronized; the connection is severed.
const MAX_PROXY_MESSAGE: usize = 32 * 1024 * 1024;

/// A seeded schedule of repeated mid-stream disconnects — the
/// flapping-link generalization of the old once-per-proxy disconnect.
///
/// The proxy severs the active connection when the lifetime
/// client→server message count passes `first_after`, then again every
/// `every` messages (±`jitter`, drawn from the proxy's seeded stream so
/// flap timing is reproducible run to run), up to `max` times. Message
/// counting is proxy-lifetime, not per-connection, so the schedule keeps
/// advancing across the reconnects it causes.
#[derive(Debug, Clone)]
pub struct DisconnectSchedule {
    /// Messages before the first disconnect fires.
    pub first_after: u64,
    /// Nominal messages between subsequent disconnects.
    pub every: u64,
    /// Fractional jitter on `every`: each gap is scaled by a seeded
    /// uniform factor in `[1−jitter, 1+jitter]` (0 = strictly periodic).
    pub jitter: f64,
    /// Most disconnects to fire over the proxy's lifetime (`None` =
    /// keep flapping forever).
    pub max: Option<u64>,
}

impl DisconnectSchedule {
    /// The old single-shot behavior: one disconnect after `after`
    /// messages, never again.
    pub fn once(after: u64) -> DisconnectSchedule {
        DisconnectSchedule {
            first_after: after,
            every: u64::MAX,
            jitter: 0.0,
            max: Some(1),
        }
    }
}

/// What a [`FaultyProxy`] injects, and how often.
#[derive(Debug, Clone)]
pub struct ProxySpec {
    /// Bytes at the start of the client→server stream forwarded verbatim
    /// before message-aware faulting begins (the `Hello`).
    pub client_preamble: usize,
    /// Bytes at the start of the server→client stream forwarded verbatim
    /// (the `HelloAck`); the rest of that direction is copied untouched.
    pub server_preamble: usize,
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability one byte of a message body is flipped.
    pub corrupt_p: f64,
    /// Probability a message is delayed by `delay` before forwarding.
    pub delay_p: f64,
    /// Hold time for delayed messages.
    pub delay: Duration,
    /// Sever the connection (both directions) after this many
    /// client→server messages have been seen, once over the proxy's
    /// lifetime. `None` disables. Kept as the single-shot wrapper around
    /// [`DisconnectSchedule::once`]; ignored when `disconnect_schedule`
    /// is set.
    pub disconnect_after: Option<u64>,
    /// Repeated-disconnect (flapping) schedule; takes precedence over
    /// `disconnect_after`. `None` disables.
    pub disconnect_schedule: Option<DisconnectSchedule>,
    /// Bandwidth throttle: hold every client→server message for
    /// `frame_bytes / throttle_bytes_per_sec` seconds (±20% seeded
    /// jitter) before forwarding, where `frame_bytes` includes the 4-byte
    /// length prefix. `None` disables. Models a slow-but-not-dead link.
    pub throttle_bytes_per_sec: Option<f64>,
    /// Probability a message is forwarded slow-loris style: in seeded
    /// partial writes of 1..=`trickle_max_chunk` bytes, each flushed and
    /// followed by `trickle_pause`. Chunk boundaries ignore the frame
    /// layout, so the length prefix itself gets split and writes end
    /// mid-frame. 0 disables.
    pub trickle_p: f64,
    /// Pause after every trickled chunk except the last.
    pub trickle_pause: Duration,
    /// Largest trickled chunk; 1 means strictly byte-at-a-time, larger
    /// values draw each chunk size from the seeded stream.
    pub trickle_max_chunk: usize,
    /// Seed for the fault stream (per-connection streams derive from it).
    pub seed: u64,
}

impl Default for ProxySpec {
    fn default() -> ProxySpec {
        ProxySpec {
            client_preamble: 0,
            server_preamble: 0,
            drop_p: 0.0,
            corrupt_p: 0.0,
            delay_p: 0.0,
            delay: Duration::from_millis(1),
            disconnect_after: None,
            disconnect_schedule: None,
            throttle_bytes_per_sec: None,
            trickle_p: 0.0,
            trickle_pause: Duration::from_micros(500),
            trickle_max_chunk: 1,
            seed: 0xFA_017,
        }
    }
}

/// Exact injection counters for one [`FaultyProxy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyCounts {
    /// Connections proxied.
    pub connections: u64,
    /// Messages relayed to the server (corrupted and delayed ones
    /// included; dropped ones not).
    pub forwarded: u64,
    /// Messages swallowed.
    pub dropped: u64,
    /// Messages forwarded with one byte flipped.
    pub corrupted: u64,
    /// Messages held for `delay` before forwarding.
    pub delayed: u64,
    /// Mid-stream disconnects fired.
    pub disconnects: u64,
    /// Messages held by the bandwidth throttle.
    pub throttled: u64,
    /// Total throttle hold time injected, in microseconds.
    pub throttle_micros: u64,
    /// Messages forwarded slow-loris style (in partial writes).
    pub trickled: u64,
    /// Partial writes issued while trickling (one per chunk).
    pub trickle_writes: u64,
    /// Total inter-chunk pause time injected while trickling, in
    /// microseconds.
    pub trickle_micros: u64,
}

/// Exact bandwidth-throttle accounting for one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionThrottle {
    /// Connection id (0-based, in accept order).
    pub conn_id: u64,
    /// Messages held by the throttle on this connection.
    pub messages: u64,
    /// Bytes (frame sizes, prefix included) the throttle paced.
    pub bytes: u64,
    /// Total hold time injected on this connection, in microseconds.
    pub micros: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    disconnects: AtomicU64,
    throttled: AtomicU64,
    throttle_micros: AtomicU64,
    trickled: AtomicU64,
    trickle_writes: AtomicU64,
    trickle_micros: AtomicU64,
    /// Client→server messages seen (drives the disconnect schedule).
    seen: AtomicU64,
    /// Lifetime message index at which each disconnect fired, in order.
    disconnect_events: parking_lot::Mutex<Vec<u64>>,
    /// Per-connection throttle accounting, keyed by connection id.
    throttles: parking_lot::Mutex<Vec<ConnectionThrottle>>,
}

/// Live state of the disconnect schedule (proxy-wide, shared by every
/// connection's forward loop).
#[derive(Debug)]
struct DisconnectState {
    schedule: DisconnectSchedule,
    /// Message count past which the next disconnect fires; `None` once
    /// the schedule is exhausted.
    next: Option<u64>,
    fired: u64,
    rng: StdRng,
}

#[derive(Debug)]
struct Shared {
    upstream: SocketAddr,
    spec: ProxySpec,
    counters: Counters,
    disconnect: parking_lot::Mutex<Option<DisconnectState>>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Should the connection that just read lifetime message `seen` be
    /// severed? Fires at most once per threshold; advances (and
    /// eventually exhausts) the schedule.
    fn maybe_disconnect(&self, seen: u64) -> bool {
        let mut guard = self.disconnect.lock();
        let Some(st) = guard.as_mut() else {
            return false;
        };
        let Some(next) = st.next else {
            return false;
        };
        if seen <= next {
            return false;
        }
        st.fired += 1;
        self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
        self.counters.disconnect_events.lock().push(seen);
        st.next = if st.schedule.max.is_some_and(|m| st.fired >= m) {
            None
        } else {
            let factor = if st.schedule.jitter > 0.0 {
                1.0 + st.rng.gen_range(-st.schedule.jitter..st.schedule.jitter)
            } else {
                1.0
            };
            let gap = ((st.schedule.every as f64) * factor).round().max(1.0);
            Some(if gap >= u64::MAX as f64 {
                u64::MAX
            } else {
                seen.saturating_add(gap as u64)
            })
        };
        true
    }
}

/// A running fault-injecting TCP proxy (see the module docs).
#[derive(Debug)]
pub struct FaultyProxy {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_join: Option<JoinHandle<()>>,
    conn_joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
}

impl FaultyProxy {
    /// Start a proxy on an ephemeral localhost port relaying to
    /// `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start<A: ToSocketAddrs>(upstream: A, spec: ProxySpec) -> io::Result<FaultyProxy> {
        if let Some(bps) = spec.throttle_bytes_per_sec {
            if !(bps.is_finite() && bps > 0.0) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("throttle_bytes_per_sec must be positive and finite, got {bps}"),
                ));
            }
        }
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no upstream addr"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let schedule = spec
            .disconnect_schedule
            .clone()
            .or(spec.disconnect_after.map(DisconnectSchedule::once));
        let disconnect = schedule.map(|schedule| DisconnectState {
            next: Some(schedule.first_after),
            fired: 0,
            rng: StdRng::seed_from_u64(spec.seed ^ 0xD15C_0111),
            schedule,
        });
        let shared = Arc::new(Shared {
            upstream,
            spec,
            counters: Counters::default(),
            disconnect: parking_lot::Mutex::new(disconnect),
            shutdown: AtomicBool::new(false),
        });
        let conn_joins = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let accept_shared = shared.clone();
        let accept_joins = conn_joins.clone();
        let accept_join = std::thread::Builder::new()
            .name("saad-fault-proxy".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_joins))
            .expect("spawn proxy accept thread");
        Ok(FaultyProxy {
            local_addr,
            shared,
            accept_join: Some(accept_join),
            conn_joins,
        })
    }

    /// The address agents should connect to instead of the collector.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Exact injection counters so far.
    pub fn counts(&self) -> ProxyCounts {
        let c = &self.shared.counters;
        ProxyCounts {
            connections: c.connections.load(Ordering::Relaxed),
            forwarded: c.forwarded.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
            corrupted: c.corrupted.load(Ordering::Relaxed),
            delayed: c.delayed.load(Ordering::Relaxed),
            disconnects: c.disconnects.load(Ordering::Relaxed),
            throttled: c.throttled.load(Ordering::Relaxed),
            throttle_micros: c.throttle_micros.load(Ordering::Relaxed),
            trickled: c.trickled.load(Ordering::Relaxed),
            trickle_writes: c.trickle_writes.load(Ordering::Relaxed),
            trickle_micros: c.trickle_micros.load(Ordering::Relaxed),
        }
    }

    /// Lifetime message index at which each scheduled disconnect fired,
    /// in firing order — the exact per-event record a flapping-leaf test
    /// reconciles against transport accounting.
    pub fn disconnect_events(&self) -> Vec<u64> {
        self.shared.counters.disconnect_events.lock().clone()
    }

    /// Exact per-connection bandwidth-throttle accounting, in accept
    /// order. Empty unless [`ProxySpec::throttle_bytes_per_sec`] is set
    /// (connections that never saw a throttled message are omitted).
    pub fn throttles(&self) -> Vec<ConnectionThrottle> {
        self.shared.counters.throttles.lock().clone()
    }

    /// Stop relaying: sever all connections, join all threads, return the
    /// final counters.
    pub fn shutdown(mut self) -> ProxyCounts {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        let joins = std::mem::take(&mut *self.conn_joins.lock());
        for join in joins {
            let _ = join.join();
        }
        self.counts()
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    joins: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_id = 0u64;
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let id = conn_id;
        conn_id += 1;
        let conn_shared = shared.clone();
        let join = std::thread::Builder::new()
            .name(format!("saad-fault-proxy-conn-{id}"))
            .spawn(move || proxy_connection(client, id, conn_shared))
            .expect("spawn proxy connection");
        joins.lock().push(join);
    }
}

/// Read exactly `buf.len()` bytes, tolerating read-timeout polls while the
/// proxy is alive. `Ok(false)` = clean EOF before the first byte.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Err(io::ErrorKind::Interrupted.into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Copy `n` preamble bytes verbatim. `Ok(false)` = clean EOF first.
fn copy_preamble(
    from: &mut TcpStream,
    to: &mut TcpStream,
    n: usize,
    shared: &Shared,
) -> io::Result<bool> {
    let mut buf = vec![0u8; n];
    if !read_full(from, &mut buf, shared)? {
        return Ok(false);
    }
    to.write_all(&buf)?;
    to.flush()?;
    Ok(true)
}

fn proxy_connection(mut client: TcpStream, conn_id: u64, shared: Arc<Shared>) {
    let mut server = match TcpStream::connect(shared.upstream) {
        Ok(s) => s,
        Err(_) => return,
    };
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    let poll = Some(Duration::from_millis(50));
    let _ = client.set_read_timeout(poll);
    let _ = server.set_read_timeout(poll);
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);

    // Server→client: preamble then an untouched byte stream, on its own
    // thread so the ack arrives while this thread reads messages.
    let back_shared = shared.clone();
    let (mut server_rd, mut client_wr) = match (server.try_clone(), client.try_clone()) {
        (Ok(s), Ok(c)) => (s, c),
        _ => return,
    };
    let back = std::thread::Builder::new()
        .name(format!("saad-fault-proxy-back-{conn_id}"))
        .spawn(move || {
            let n = back_shared.spec.server_preamble;
            if !matches!(
                copy_preamble(&mut server_rd, &mut client_wr, n, &back_shared),
                Ok(true)
            ) {
                return;
            }
            let mut buf = [0u8; 4096];
            loop {
                match server_rd.read(&mut buf) {
                    Ok(0) => return,
                    Ok(n) => {
                        if client_wr.write_all(&buf[..n]).is_err() {
                            return;
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        if back_shared.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            }
        })
        .expect("spawn proxy back thread");

    forward_messages(&mut client, &mut server, conn_id, &shared);
    // Forward direction ended (EOF, error, injected disconnect, or
    // shutdown): sever both so the back thread unblocks too.
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = back.join();
}

/// The faulting client→server direction.
fn forward_messages(client: &mut TcpStream, server: &mut TcpStream, conn_id: u64, shared: &Shared) {
    let spec = &shared.spec;
    let counters = &shared.counters;
    let mut rng = StdRng::seed_from_u64(spec.seed ^ conn_id.wrapping_mul(0x9E37_79B9));
    if !matches!(
        copy_preamble(client, server, spec.client_preamble, shared),
        Ok(true)
    ) {
        return;
    }
    let mut len_buf = [0u8; 4];
    let mut body = Vec::new();
    loop {
        match read_full(client, &mut len_buf, shared) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_PROXY_MESSAGE {
            return;
        }
        body.resize(len, 0);
        if !matches!(read_full(client, &mut body, shared), Ok(true)) {
            return;
        }
        let seen = counters.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if shared.maybe_disconnect(seen) {
            return;
        }
        if spec.drop_p > 0.0 && rng.gen_bool(spec.drop_p) {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if spec.corrupt_p > 0.0 && !body.is_empty() && rng.gen_bool(spec.corrupt_p) {
            let at = rng.gen_range(0..body.len());
            let bit = rng.gen_range(0..8u32);
            body[at] ^= 1 << bit;
            counters.corrupted.fetch_add(1, Ordering::Relaxed);
        }
        if spec.delay_p > 0.0 && rng.gen_bool(spec.delay_p) {
            counters.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(spec.delay);
        }
        if let Some(bps) = spec.throttle_bytes_per_sec {
            // Pace the whole frame (prefix + body) at the configured
            // bandwidth, with ±20% seeded jitter so hold times are
            // reproducible but not lockstep.
            let frame_bytes = (4 + len) as u64;
            let hold = Duration::from_secs_f64(frame_bytes as f64 / bps * rng.gen_range(0.8..1.2));
            counters.throttled.fetch_add(1, Ordering::Relaxed);
            counters
                .throttle_micros
                .fetch_add(hold.as_micros() as u64, Ordering::Relaxed);
            {
                let mut per_conn = counters.throttles.lock();
                let entry = match per_conn.iter_mut().find(|t| t.conn_id == conn_id) {
                    Some(entry) => entry,
                    None => {
                        per_conn.push(ConnectionThrottle {
                            conn_id,
                            messages: 0,
                            bytes: 0,
                            micros: 0,
                        });
                        per_conn.last_mut().expect("just pushed")
                    }
                };
                entry.messages += 1;
                entry.bytes += frame_bytes;
                entry.micros += hold.as_micros() as u64;
            }
            std::thread::sleep(hold);
        }
        if spec.trickle_p > 0.0 && rng.gen_bool(spec.trickle_p) {
            if trickle_frame(server, &len_buf, &body, spec, counters, &mut rng).is_err() {
                return;
            }
        } else if server.write_all(&len_buf).is_err()
            || server.write_all(&body).is_err()
            || server.flush().is_err()
        {
            return;
        }
        counters.forwarded.fetch_add(1, Ordering::Relaxed);
    }
}

/// Forward one frame slow-loris style: seeded chunks (down to single
/// bytes) that ignore the prefix/body boundary, each flushed and followed
/// by a pause — except the last. Every chunk and every pause microsecond
/// is counted.
fn trickle_frame(
    server: &mut TcpStream,
    len_buf: &[u8; 4],
    body: &[u8],
    spec: &ProxySpec,
    counters: &Counters,
    rng: &mut StdRng,
) -> io::Result<()> {
    let frame_len = 4 + body.len();
    let max_chunk = spec.trickle_max_chunk.max(1);
    counters.trickled.fetch_add(1, Ordering::Relaxed);
    let mut off = 0usize;
    while off < frame_len {
        let chunk = if max_chunk == 1 {
            1
        } else {
            rng.gen_range(1..=max_chunk)
        };
        let end = (off + chunk).min(frame_len);
        // The chunk may straddle the prefix/body boundary: up to two
        // writes, flushed together, count as one partial write.
        if off < 4 {
            server.write_all(&len_buf[off..end.min(4)])?;
        }
        if end > 4 {
            server.write_all(&body[off.max(4) - 4..end - 4])?;
        }
        server.flush()?;
        counters.trickle_writes.fetch_add(1, Ordering::Relaxed);
        off = end;
        if off < frame_len {
            counters
                .trickle_micros
                .fetch_add(spec.trickle_pause.as_micros() as u64, Ordering::Relaxed);
            std::thread::sleep(spec.trickle_pause);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A sink server: accepts connections, reads until EOF, reports the
    /// byte count per connection.
    fn sink_server() -> (SocketAddr, mpsc::Receiver<u64>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
        let addr = listener.local_addr().expect("sink addr");
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut total = 0u64;
                    let mut buf = [0u8; 4096];
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => total += n as u64,
                        }
                    }
                    let _ = tx.send(total);
                });
            }
        });
        (addr, rx)
    }

    fn send_messages(addr: SocketAddr, sizes: &[usize]) {
        let mut client = TcpStream::connect(addr).expect("connect proxy");
        for &len in sizes {
            client
                .write_all(&(len as u32).to_be_bytes())
                .expect("write prefix");
            client.write_all(&vec![0xAB; len]).expect("write body");
        }
        client.flush().expect("flush");
        drop(client); // EOF ends the forward loop
    }

    #[test]
    fn throttle_paces_and_accounts_exactly() {
        let (upstream, bytes_rx) = sink_server();
        let spec = ProxySpec {
            throttle_bytes_per_sec: Some(1_000_000.0),
            seed: 0x5EED,
            ..ProxySpec::default()
        };
        let proxy = FaultyProxy::start(upstream, spec).expect("start proxy");
        let sizes = [1_000usize; 10];
        let started = std::time::Instant::now();
        send_messages(proxy.local_addr(), &sizes);
        let delivered = bytes_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("sink reports");
        let elapsed = started.elapsed();
        let counts = proxy.counts();
        let per_conn = proxy.throttles();
        proxy.shutdown();

        // Every frame arrived intact.
        assert_eq!(delivered, 10 * (4 + 1_000) as u64);
        assert_eq!(counts.forwarded, 10);
        assert_eq!(counts.throttled, 10);
        // Per-connection accounting reconciles exactly with the totals.
        assert_eq!(per_conn.len(), 1);
        assert_eq!(per_conn[0].conn_id, 0);
        assert_eq!(per_conn[0].messages, 10);
        assert_eq!(per_conn[0].bytes, 10 * 1_004);
        assert_eq!(per_conn[0].micros, counts.throttle_micros);
        // 10 × 1004 B at 1 MB/s is ~10 ms nominal; jitter keeps each hold
        // within ±20%.
        assert!(
            counts.throttle_micros >= 8_000 && counts.throttle_micros <= 12_100,
            "total hold {} µs out of jitter envelope",
            counts.throttle_micros
        );
        assert!(
            elapsed >= Duration::from_micros(counts.throttle_micros),
            "wall time {elapsed:?} must cover the injected holds"
        );
    }

    #[test]
    fn throttle_holds_are_seeded() {
        let run = |seed| {
            let (upstream, bytes_rx) = sink_server();
            let spec = ProxySpec {
                throttle_bytes_per_sec: Some(20_000_000.0),
                seed,
                ..ProxySpec::default()
            };
            let proxy = FaultyProxy::start(upstream, spec).expect("start proxy");
            let sizes = [64, 4_096, 512, 1_024];
            send_messages(proxy.local_addr(), &sizes);
            bytes_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("sink reports");
            proxy.shutdown().throttle_micros
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn disconnect_schedule_fires_repeatedly_at_exact_points() {
        let (upstream, bytes_rx) = sink_server();
        let spec = ProxySpec {
            disconnect_schedule: Some(DisconnectSchedule {
                first_after: 3,
                every: 4,
                jitter: 0.0,
                max: Some(3),
            }),
            ..ProxySpec::default()
        };
        let proxy = FaultyProxy::start(upstream, spec).expect("start proxy");
        // Each connection sends 10 one-byte messages; the schedule severs
        // it mid-stream, the "agent" reconnects, and the lifetime message
        // count keeps advancing. Sync on the sink's per-connection EOF
        // report so message ordering across connections is deterministic.
        let mut delivered = Vec::new();
        for _ in 0..4 {
            send_messages(proxy.local_addr(), &[1usize; 10]);
            delivered.push(
                bytes_rx
                    .recv_timeout(Duration::from_secs(10))
                    .expect("sink reports"),
            );
        }
        let counts = proxy.counts();
        let events = proxy.disconnect_events();
        proxy.shutdown();

        // Fires at seen=4 (first message past 3), then every 4 messages:
        // 9, 14 — and never again after max=3.
        assert_eq!(events, vec![4, 9, 14]);
        assert_eq!(counts.disconnects, 3);
        // Connection 1 forwarded messages 1–3, conns 2 and 3 four each
        // (5–8, 10–13), conn 4 ran schedule-free: all ten delivered. The
        // message read at each firing is swallowed with the connection.
        let frame = (4 + 1) as u64;
        assert_eq!(delivered, vec![3 * frame, 4 * frame, 4 * frame, 10 * frame]);
        assert_eq!(counts.forwarded, 3 + 4 + 4 + 10);
    }

    #[test]
    fn disconnect_after_still_fires_exactly_once() {
        let (upstream, bytes_rx) = sink_server();
        let spec = ProxySpec {
            disconnect_after: Some(2),
            ..ProxySpec::default()
        };
        let proxy = FaultyProxy::start(upstream, spec).expect("start proxy");
        for _ in 0..2 {
            send_messages(proxy.local_addr(), &[1usize; 6]);
            bytes_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("sink reports");
        }
        let counts = proxy.counts();
        assert_eq!(proxy.disconnect_events(), vec![3]);
        proxy.shutdown();
        assert_eq!(counts.disconnects, 1, "single-shot wrapper fires once");
        assert_eq!(counts.forwarded, 2 + 6);
    }

    #[test]
    fn trickle_delivers_intact_with_exact_accounting() {
        let (upstream, bytes_rx) = sink_server();
        let spec = ProxySpec {
            trickle_p: 1.0,
            trickle_max_chunk: 1,
            trickle_pause: Duration::from_micros(100),
            ..ProxySpec::default()
        };
        let proxy = FaultyProxy::start(upstream, spec).expect("start proxy");
        let sizes = [5usize, 0, 9];
        send_messages(proxy.local_addr(), &sizes);
        let delivered = bytes_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("sink reports");
        let counts = proxy.shutdown();

        // Byte-for-byte delivery despite every frame arriving one byte at
        // a time.
        let frame_bytes: u64 = sizes.iter().map(|&s| 4 + s as u64).sum();
        assert_eq!(delivered, frame_bytes);
        assert_eq!(counts.forwarded, 3);
        assert_eq!(counts.trickled, 3);
        // Byte-at-a-time: one write per frame byte, one pause between
        // consecutive writes of the same frame.
        assert_eq!(counts.trickle_writes, frame_bytes);
        assert_eq!(
            counts.trickle_micros,
            100 * (frame_bytes - sizes.len() as u64)
        );
    }

    #[test]
    fn trickle_chunking_is_seeded() {
        let run = |seed| {
            let (upstream, bytes_rx) = sink_server();
            let spec = ProxySpec {
                trickle_p: 1.0,
                trickle_max_chunk: 7,
                trickle_pause: Duration::from_micros(1),
                seed,
                ..ProxySpec::default()
            };
            let proxy = FaultyProxy::start(upstream, spec).expect("start proxy");
            send_messages(proxy.local_addr(), &[64usize; 20]);
            bytes_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("sink reports");
            proxy.shutdown().trickle_writes
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn throttle_disabled_by_default_and_validated() {
        let (upstream, bytes_rx) = sink_server();
        let proxy = FaultyProxy::start(upstream, ProxySpec::default()).expect("start proxy");
        send_messages(proxy.local_addr(), &[256, 256]);
        bytes_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("sink reports");
        let counts = proxy.shutdown();
        assert_eq!(counts.throttled, 0);
        assert_eq!(counts.throttle_micros, 0);

        let bad = ProxySpec {
            throttle_bytes_per_sec: Some(0.0),
            ..ProxySpec::default()
        };
        let err = FaultyProxy::start(upstream, bad).expect_err("zero bandwidth rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
