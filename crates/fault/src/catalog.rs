//! Ready-made fault configurations for every experiment in the paper.
//!
//! I/O class names used by the Cassandra simulator:
//! * [`WAL`] — appends to the commit log / write-ahead log;
//! * [`MEMTABLE_FLUSH`] — writes of serialized MemTables to SSTables.

use crate::{FaultSchedule, FaultSpec, FaultType, Intensity, LinkFault, LinkFaultSpec, LossyLink};
use saad_sim::{SimDuration, SimTime};

/// I/O class: write-ahead-log appends.
pub const WAL: &str = "wal";
/// I/O class: MemTable flushes (SSTable writes).
pub const MEMTABLE_FLUSH: &str = "memtable-flush";

/// The four §5.4 fault specs at a given intensity.
fn spec(class: &'static str, fault: FaultType, intensity: Intensity) -> FaultSpec {
    FaultSpec::new(class, fault, intensity)
}

/// Figure 9 schedule for one experiment: the given fault class/type at low
/// intensity during minutes 10–20 and high intensity during minutes 30–40.
pub fn figure9_schedule(class: &'static str, fault: FaultType, seed: u64) -> FaultSchedule {
    FaultSchedule::new(seed)
        .with_window(
            SimTime::from_mins(10),
            SimTime::from_mins(20),
            spec(class, fault, Intensity::Low),
        )
        .with_window(
            SimTime::from_mins(30),
            SimTime::from_mins(40),
            spec(class, fault, Intensity::High),
        )
}

/// Figure 9(a): error on appending to WAL.
pub fn fig9a_error_wal(seed: u64) -> FaultSchedule {
    figure9_schedule(WAL, FaultType::Error, seed)
}

/// Figure 9(b): error on flushing MemTable.
pub fn fig9b_error_memtable(seed: u64) -> FaultSchedule {
    figure9_schedule(MEMTABLE_FLUSH, FaultType::Error, seed)
}

/// Figure 9(c): delay on appending to WAL.
pub fn fig9c_delay_wal(seed: u64) -> FaultSchedule {
    figure9_schedule(WAL, FaultType::standard_delay(), seed)
}

/// Figure 9(d): delay on flushing MemTable.
pub fn fig9d_delay_memtable(seed: u64) -> FaultSchedule {
    figure9_schedule(MEMTABLE_FLUSH, FaultType::standard_delay(), seed)
}

/// Table 3: the seven fault specs of the false-positive study, in the
/// paper's order.
pub fn table3_specs() -> Vec<FaultSpec> {
    vec![
        spec(WAL, FaultType::Error, Intensity::Low),
        spec(WAL, FaultType::Error, Intensity::High),
        spec(MEMTABLE_FLUSH, FaultType::Error, Intensity::Low),
        spec(MEMTABLE_FLUSH, FaultType::Error, Intensity::High),
        spec(WAL, FaultType::standard_delay(), Intensity::Low),
        spec(WAL, FaultType::standard_delay(), Intensity::High),
        spec(MEMTABLE_FLUSH, FaultType::standard_delay(), Intensity::Low),
    ]
}

/// Figure 11 run layout: 30 min warm-up, 30 min fault-free observation,
/// 30 min with the fault active. Returns the schedule with the fault in
/// the third half-hour.
pub fn figure11_schedule(spec: FaultSpec, seed: u64) -> FaultSchedule {
    FaultSchedule::new(seed).with_window(SimTime::from_mins(60), SimTime::from_mins(90), spec)
}

/// The combined lossy-link robustness scenario (for a run of ~12 minutes):
/// 15% frame loss during minutes 1–4, a duplication burst during minute 5,
/// delay-induced reordering during minute 6, and a full disconnect during
/// minutes 7–9 (the link reconnects at minute 9).
pub fn combined_lossy_link(seed: u64) -> LossyLink {
    LossyLink::new(seed)
        .with_window(
            SimTime::from_mins(1),
            SimTime::from_mins(4),
            LinkFaultSpec::new(LinkFault::Loss, Intensity::Custom(0.15)),
        )
        .with_window(
            SimTime::from_mins(5),
            SimTime::from_mins(6),
            LinkFaultSpec::new(LinkFault::Duplicate, Intensity::High),
        )
        .with_window(
            SimTime::from_mins(6),
            SimTime::from_mins(7),
            LinkFaultSpec::new(
                LinkFault::Delay(SimDuration::from_secs(5)),
                Intensity::Custom(0.5),
            ),
        )
        .with_window(
            SimTime::from_mins(7),
            SimTime::from_mins(9),
            LinkFaultSpec::new(LinkFault::Disconnect, Intensity::High),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_windows_match_paper_timeline() {
        let s = fig9a_error_wal(1);
        let w = s.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start, SimTime::from_mins(10));
        assert_eq!(w[0].end, SimTime::from_mins(20));
        assert_eq!(w[0].spec.intensity.probability(), 0.01);
        assert_eq!(w[1].start, SimTime::from_mins(30));
        assert_eq!(w[1].end, SimTime::from_mins(40));
        assert_eq!(w[1].spec.intensity.probability(), 1.0);
    }

    #[test]
    fn all_four_fig9_faults_cover_both_classes_and_types() {
        assert_eq!(fig9a_error_wal(1).windows()[0].spec.class, WAL);
        assert_eq!(
            fig9b_error_memtable(1).windows()[0].spec.class,
            MEMTABLE_FLUSH
        );
        assert!(matches!(
            fig9c_delay_wal(1).windows()[0].spec.fault,
            FaultType::Delay(_)
        ));
        assert!(matches!(
            fig9d_delay_memtable(1).windows()[0].spec.fault,
            FaultType::Delay(_)
        ));
    }

    #[test]
    fn table3_has_seven_faults_in_paper_order() {
        let specs = table3_specs();
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0].name(), "error-wal-low");
        assert_eq!(specs[1].name(), "error-wal-high");
        assert_eq!(specs[2].name(), "error-memtable-flush-low");
        assert_eq!(specs[3].name(), "error-memtable-flush-high");
        assert_eq!(specs[4].name(), "delay-wal-low");
        assert_eq!(specs[5].name(), "delay-wal-high");
        assert_eq!(specs[6].name(), "delay-memtable-flush-low");
    }

    #[test]
    fn combined_lossy_link_covers_all_fault_classes() {
        let link = combined_lossy_link(1);
        let faults: Vec<_> = link.windows().iter().map(|w| w.spec.fault).collect();
        assert!(faults.contains(&LinkFault::Loss));
        assert!(faults.contains(&LinkFault::Duplicate));
        assert!(faults.iter().any(|f| matches!(f, LinkFault::Delay(_))));
        assert!(faults.contains(&LinkFault::Disconnect));
        // Quiet lead-in and recovered tail around the fault windows.
        assert!(!link.active_at(SimTime::from_secs(30)));
        assert!(link.active_at(SimTime::from_mins(8)));
        assert!(!link.active_at(SimTime::from_mins(10)));
    }

    #[test]
    fn figure11_fault_occupies_third_half_hour() {
        let s = figure11_schedule(table3_specs()[0], 9);
        assert!(!s.active_at(SimTime::from_mins(45)));
        assert!(s.active_at(SimTime::from_mins(75)));
        assert!(!s.active_at(SimTime::from_mins(90)));
    }
}
