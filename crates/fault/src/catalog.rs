//! Ready-made fault configurations for every experiment in the paper.
//!
//! I/O class names used by the Cassandra simulator:
//! * [`WAL`] — appends to the commit log / write-ahead log;
//! * [`MEMTABLE_FLUSH`] — writes of serialized MemTables to SSTables.

use crate::{
    FaultSchedule, FaultSpec, FaultType, GrayFault, GrayFaultSpec, GraySchedule, HostSet,
    Intensity, LinkFault, LinkFaultSpec, LossyLink,
};
use saad_sim::{SimDuration, SimTime};

/// I/O class: write-ahead-log appends.
pub const WAL: &str = "wal";
/// I/O class: MemTable flushes (SSTable writes).
pub const MEMTABLE_FLUSH: &str = "memtable-flush";

/// The four §5.4 fault specs at a given intensity.
fn spec(class: &'static str, fault: FaultType, intensity: Intensity) -> FaultSpec {
    FaultSpec::new(class, fault, intensity)
}

/// Figure 9 schedule for one experiment: the given fault class/type at low
/// intensity during minutes 10–20 and high intensity during minutes 30–40.
pub fn figure9_schedule(class: &'static str, fault: FaultType, seed: u64) -> FaultSchedule {
    FaultSchedule::new(seed)
        .with_window(
            SimTime::from_mins(10),
            SimTime::from_mins(20),
            spec(class, fault, Intensity::Low),
        )
        .with_window(
            SimTime::from_mins(30),
            SimTime::from_mins(40),
            spec(class, fault, Intensity::High),
        )
}

/// Figure 9(a): error on appending to WAL.
pub fn fig9a_error_wal(seed: u64) -> FaultSchedule {
    figure9_schedule(WAL, FaultType::Error, seed)
}

/// Figure 9(b): error on flushing MemTable.
pub fn fig9b_error_memtable(seed: u64) -> FaultSchedule {
    figure9_schedule(MEMTABLE_FLUSH, FaultType::Error, seed)
}

/// Figure 9(c): delay on appending to WAL.
pub fn fig9c_delay_wal(seed: u64) -> FaultSchedule {
    figure9_schedule(WAL, FaultType::standard_delay(), seed)
}

/// Figure 9(d): delay on flushing MemTable.
pub fn fig9d_delay_memtable(seed: u64) -> FaultSchedule {
    figure9_schedule(MEMTABLE_FLUSH, FaultType::standard_delay(), seed)
}

/// Table 3: the seven fault specs of the false-positive study, in the
/// paper's order.
pub fn table3_specs() -> Vec<FaultSpec> {
    vec![
        spec(WAL, FaultType::Error, Intensity::Low),
        spec(WAL, FaultType::Error, Intensity::High),
        spec(MEMTABLE_FLUSH, FaultType::Error, Intensity::Low),
        spec(MEMTABLE_FLUSH, FaultType::Error, Intensity::High),
        spec(WAL, FaultType::standard_delay(), Intensity::Low),
        spec(WAL, FaultType::standard_delay(), Intensity::High),
        spec(MEMTABLE_FLUSH, FaultType::standard_delay(), Intensity::Low),
    ]
}

/// Figure 11 run layout: 30 min warm-up, 30 min fault-free observation,
/// 30 min with the fault active. Returns the schedule with the fault in
/// the third half-hour.
pub fn figure11_schedule(spec: FaultSpec, seed: u64) -> FaultSchedule {
    FaultSchedule::new(seed).with_window(SimTime::from_mins(60), SimTime::from_mins(90), spec)
}

/// The combined lossy-link robustness scenario (for a run of ~12 minutes):
/// 15% frame loss during minutes 1–4, a duplication burst during minute 5,
/// delay-induced reordering during minute 6, and a full disconnect during
/// minutes 7–9 (the link reconnects at minute 9).
pub fn combined_lossy_link(seed: u64) -> LossyLink {
    LossyLink::new(seed)
        .with_window(
            SimTime::from_mins(1),
            SimTime::from_mins(4),
            LinkFaultSpec::new(LinkFault::Loss, Intensity::Custom(0.15)),
        )
        .with_window(
            SimTime::from_mins(5),
            SimTime::from_mins(6),
            LinkFaultSpec::new(LinkFault::Duplicate, Intensity::High),
        )
        .with_window(
            SimTime::from_mins(6),
            SimTime::from_mins(7),
            LinkFaultSpec::new(
                LinkFault::Delay(SimDuration::from_secs(5)),
                Intensity::Custom(0.5),
            ),
        )
        .with_window(
            SimTime::from_mins(7),
            SimTime::from_mins(9),
            LinkFaultSpec::new(LinkFault::Disconnect, Intensity::High),
        )
}

/// One gray-failure scenario with its ground-truth oracle: which relay
/// stage should light up, on exactly which hosts, and when. The scenario
/// harness (`saad-bench`) reconciles detector output against this.
#[derive(Debug)]
pub struct GrayScenario {
    /// Catalog name, e.g. `slow-upstream`.
    pub name: &'static str,
    /// Relay stage the fault localizes to (oracle).
    pub stage: &'static str,
    /// Host numbers the fault degrades (oracle; `saad_core::HostId.0`).
    pub hosts: Vec<u16>,
    /// Fault window start.
    pub start: SimTime,
    /// Fault window end (exclusive).
    pub end: SimTime,
    /// The schedule to attach to the relay cluster.
    pub schedule: GraySchedule,
}

/// The shared gray-scenario fault window: minutes 3–8 of a 10-minute run
/// (2 minutes of healthy lead-in for the detector to anchor on, 2 minutes
/// of recovered tail).
const GRAY_START_MIN: u64 = 3;
const GRAY_END_MIN: u64 = 8;

fn gray_scenario(
    name: &'static str,
    stage: &'static str,
    hosts: &[u16],
    fault: GrayFault,
    seed: u64,
) -> GrayScenario {
    let (start, end) = (
        SimTime::from_mins(GRAY_START_MIN),
        SimTime::from_mins(GRAY_END_MIN),
    );
    GrayScenario {
        name,
        stage,
        hosts: hosts.to_vec(),
        start,
        end,
        schedule: GraySchedule::new(seed).with_window(
            start,
            end,
            GrayFaultSpec::new(fault, HostSet::of(hosts)),
        ),
    }
}

/// Gray scenario: host 2's upstream connects slow down 8× — slow but not
/// dead. Localizes to the *Connecting* stage on host 2.
pub fn gray_slow_upstream(seed: u64) -> GrayScenario {
    gray_scenario(
        "slow-upstream",
        "Connecting",
        &[2],
        GrayFault::SlowUpstream { factor: 8.0 },
        seed,
    )
}

/// Gray scenario: hosts 1 and 3 suffer a simultaneous data-plane resource
/// hog (copy work 6× slower). Localizes to the *Relaying* stage on both.
pub fn gray_correlated_hog(seed: u64) -> GrayScenario {
    gray_scenario(
        "correlated-hog",
        "Relaying",
        &[1, 3],
        GrayFault::CorrelatedHog { factor: 6.0 },
        seed,
    )
}

/// Gray scenario: the proxy→client direction of host 4's link degrades
/// 10×; the other direction stays healthy. Localizes to the *Replying*
/// stage on host 4.
pub fn gray_asymmetric_partition(seed: u64) -> GrayScenario {
    gray_scenario(
        "asymmetric-partition",
        "Replying",
        &[4],
        GrayFault::AsymmetricPartition { factor: 10.0 },
        seed,
    )
}

/// Gray scenario: host 2's upstream refuses 35% of connect attempts,
/// amplifying load through the relay's reconnect loop. Localizes to the
/// *Connecting* stage on host 2 (retry/refusal log points form signatures
/// never seen in healthy training).
pub fn gray_retry_storm(seed: u64) -> GrayScenario {
    gray_scenario(
        "retry-storm",
        "Connecting",
        &[2],
        GrayFault::RetryStorm { reject_p: 0.35 },
        seed,
    )
}

/// Gray scenario: host 3's name resolution slows down 12× — a quietly
/// degraded resolver. Localizes to the *Preparing* stage on host 3 while
/// connects, copies, and replies all stay healthy.
pub fn gray_slow_dns(seed: u64) -> GrayScenario {
    gray_scenario(
        "slow-dns",
        "Preparing",
        &[3],
        GrayFault::SlowDns { factor: 12.0 },
        seed,
    )
}

/// Gray scenario: host 1's background escaper health probe fails 60% of
/// the time while every session-serving stage stays healthy. Localizes
/// to the *Escaper* stage on host 1 — the probe-failure warn flow forms a
/// signature never seen in healthy training.
pub fn gray_escaper_flap(seed: u64) -> GrayScenario {
    gray_scenario(
        "escaper-flap",
        "Escaper",
        &[1],
        GrayFault::EscaperFlap { fail_p: 0.6 },
        seed,
    )
}

/// The full gray-failure catalog, in a fixed order. Every scenario must be
/// exercised by the detection-latency harness — none may be skipped.
pub fn gray_catalog(seed: u64) -> Vec<GrayScenario> {
    vec![
        gray_slow_upstream(seed),
        gray_correlated_hog(seed.wrapping_add(1)),
        gray_asymmetric_partition(seed.wrapping_add(2)),
        gray_retry_storm(seed.wrapping_add(3)),
        gray_slow_dns(seed.wrapping_add(4)),
        gray_escaper_flap(seed.wrapping_add(5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_windows_match_paper_timeline() {
        let s = fig9a_error_wal(1);
        let w = s.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start, SimTime::from_mins(10));
        assert_eq!(w[0].end, SimTime::from_mins(20));
        assert_eq!(w[0].spec.intensity.probability(), 0.01);
        assert_eq!(w[1].start, SimTime::from_mins(30));
        assert_eq!(w[1].end, SimTime::from_mins(40));
        assert_eq!(w[1].spec.intensity.probability(), 1.0);
    }

    #[test]
    fn all_four_fig9_faults_cover_both_classes_and_types() {
        assert_eq!(fig9a_error_wal(1).windows()[0].spec.class, WAL);
        assert_eq!(
            fig9b_error_memtable(1).windows()[0].spec.class,
            MEMTABLE_FLUSH
        );
        assert!(matches!(
            fig9c_delay_wal(1).windows()[0].spec.fault,
            FaultType::Delay(_)
        ));
        assert!(matches!(
            fig9d_delay_memtable(1).windows()[0].spec.fault,
            FaultType::Delay(_)
        ));
    }

    #[test]
    fn table3_has_seven_faults_in_paper_order() {
        let specs = table3_specs();
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0].name(), "error-wal-low");
        assert_eq!(specs[1].name(), "error-wal-high");
        assert_eq!(specs[2].name(), "error-memtable-flush-low");
        assert_eq!(specs[3].name(), "error-memtable-flush-high");
        assert_eq!(specs[4].name(), "delay-wal-low");
        assert_eq!(specs[5].name(), "delay-wal-high");
        assert_eq!(specs[6].name(), "delay-memtable-flush-low");
    }

    #[test]
    fn combined_lossy_link_covers_all_fault_classes() {
        let link = combined_lossy_link(1);
        let faults: Vec<_> = link.windows().iter().map(|w| w.spec.fault).collect();
        assert!(faults.contains(&LinkFault::Loss));
        assert!(faults.contains(&LinkFault::Duplicate));
        assert!(faults.iter().any(|f| matches!(f, LinkFault::Delay(_))));
        assert!(faults.contains(&LinkFault::Disconnect));
        // Quiet lead-in and recovered tail around the fault windows.
        assert!(!link.active_at(SimTime::from_secs(30)));
        assert!(link.active_at(SimTime::from_mins(8)));
        assert!(!link.active_at(SimTime::from_mins(10)));
    }

    #[test]
    fn figure11_fault_occupies_third_half_hour() {
        let s = figure11_schedule(table3_specs()[0], 9);
        assert!(!s.active_at(SimTime::from_mins(45)));
        assert!(s.active_at(SimTime::from_mins(75)));
        assert!(!s.active_at(SimTime::from_mins(90)));
    }

    #[test]
    fn gray_catalog_covers_all_shapes() {
        let scenarios = gray_catalog(1);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "slow-upstream",
                "correlated-hog",
                "asymmetric-partition",
                "retry-storm",
                "slow-dns",
                "escaper-flap"
            ]
        );
        for s in &scenarios {
            assert!(!s.hosts.is_empty(), "{} has an empty oracle", s.name);
            assert!(s.end > s.start);
            assert_eq!(s.schedule.windows().len(), 1);
            assert!(s.schedule.active_at(SimTime::from_mins(5)));
            assert!(!s.schedule.active_at(SimTime::from_mins(9)));
            assert_eq!(s.schedule.windows()[0].spec.hosts.hosts(), s.hosts);
        }
        // Each scenario localizes to the documented stage.
        assert_eq!(scenarios[0].stage, "Connecting");
        assert_eq!(scenarios[1].stage, "Relaying");
        assert_eq!(scenarios[2].stage, "Replying");
        assert_eq!(scenarios[3].stage, "Connecting");
        assert_eq!(scenarios[4].stage, "Preparing");
        assert_eq!(scenarios[5].stage, "Escaper");
        // The correlated hog really is multi-host.
        assert_eq!(scenarios[1].hosts, vec![1, 3]);
    }

    #[test]
    fn gray_scenarios_leave_a_healthy_lead_in() {
        for s in gray_catalog(5) {
            assert!(
                s.start >= SimTime::from_mins(2),
                "{}: the detector needs healthy lead-in",
                s.name
            );
        }
    }
}
