//! Throughput recording for the figure timelines.
//!
//! Every Figure 9 panel overlays the cluster's write throughput (op/sec)
//! on the anomaly timeline; [`ThroughputRecorder`] produces that series.

use saad_sim::{SimDuration, SimTime};

/// Counts completed operations into fixed-width time windows.
#[derive(Debug, Clone)]
pub struct ThroughputRecorder {
    window: SimDuration,
    counts: Vec<u64>,
}

impl ThroughputRecorder {
    /// Create a recorder with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window: SimDuration) -> ThroughputRecorder {
        assert!(window > SimDuration::ZERO, "window must be positive");
        ThroughputRecorder {
            window,
            counts: Vec::new(),
        }
    }

    /// Record one completed operation at `at`.
    pub fn record(&mut self, at: SimTime) {
        let idx = (at.as_micros() / self.window.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Raw counts per window.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Op/sec per window.
    pub fn ops_per_sec(&self) -> Vec<f64> {
        let secs = self.window.as_secs_f64();
        self.counts.iter().map(|&c| c as f64 / secs).collect()
    }

    /// Total recorded operations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean op/sec over windows `[from, to)` (window indices). Empty or
    /// out-of-range spans yield 0.
    pub fn mean_ops_per_sec(&self, from: usize, to: usize) -> f64 {
        let to = to.min(self.counts.len());
        if from >= to {
            return 0.0;
        }
        let total: u64 = self.counts[from..to].iter().sum();
        total as f64 / ((to - from) as f64 * self.window.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_right_windows() {
        let mut r = ThroughputRecorder::new(SimDuration::from_secs(60));
        r.record(SimTime::from_secs(5));
        r.record(SimTime::from_secs(59));
        r.record(SimTime::from_secs(60));
        assert_eq!(r.counts(), &[2, 1]);
        assert_eq!(r.total(), 3);
    }

    #[test]
    fn ops_per_sec_normalizes_by_window() {
        let mut r = ThroughputRecorder::new(SimDuration::from_secs(10));
        for i in 0..100 {
            r.record(SimTime::from_millis(i * 100)); // all in window 0
        }
        assert!((r.ops_per_sec()[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mean_over_span() {
        let mut r = ThroughputRecorder::new(SimDuration::from_secs(1));
        for s in 0..10u64 {
            for _ in 0..s {
                r.record(SimTime::from_secs(s));
            }
        }
        assert!((r.mean_ops_per_sec(0, 10) - 4.5).abs() < 1e-12);
        assert_eq!(r.mean_ops_per_sec(5, 5), 0.0);
        assert_eq!(r.mean_ops_per_sec(50, 60), 0.0);
    }

    #[test]
    fn sparse_windows_are_zero_filled() {
        let mut r = ThroughputRecorder::new(SimDuration::from_secs(1));
        r.record(SimTime::from_secs(5));
        assert_eq!(r.counts(), &[0, 0, 0, 0, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        ThroughputRecorder::new(SimDuration::ZERO);
    }
}
