//! YCSB-like workload generation for the SAAD experiments.
//!
//! The paper drives HBase and Cassandra with YCSB 0.1.4 (100 emulated
//! clients, write-intensive mix). This crate reproduces what the storage
//! simulators need from it:
//!
//! * [`OperationMix`] — read/insert/update proportions, with the paper's
//!   write-heavy preset;
//! * [`KeyChooser`] — uniform or Zipf-skewed key selection over a key
//!   space;
//! * [`WorkloadGenerator`] — a deterministic, time-ordered stream of
//!   [`Operation`]s with exponential inter-arrivals at a configured
//!   aggregate rate;
//! * [`Batching`] — the YCSB 0.1.4 *put-batching misconfiguration* the
//!   paper uncovered during high-intensity fault 2 (client-side batching
//!   of puts delivered in one periodic RPC, delaying persistence);
//! * [`ThroughputRecorder`] — per-window op/sec series for the figure
//!   timelines.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batching;
mod generator;
mod recorder;

pub use batching::Batching;
pub use generator::{KeyChooser, OpKind, Operation, OperationMix, WorkloadGenerator};
pub use recorder::ThroughputRecorder;
