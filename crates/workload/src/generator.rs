//! Operation stream generation.

use rand::rngs::StdRng;
use rand::Rng;
use saad_sim::rng::{exp_sample, RngStreams, Zipf};
use saad_sim::{SimDuration, SimTime};

/// The kind of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Insert of a new key.
    Insert,
    /// Update of an existing key.
    Update,
}

impl OpKind {
    /// Whether the operation mutates data (reaches the write path).
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Insert | OpKind::Update)
    }
}

/// One client operation with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// Arrival time at the storage tier.
    pub at: SimTime,
    /// Operation kind.
    pub kind: OpKind,
    /// Target key.
    pub key: u64,
    /// Value payload size in bytes (0 for reads).
    pub value_size: u32,
}

/// Read/insert/update proportions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationMix {
    read: f64,
    insert: f64,
    update: f64,
}

impl OperationMix {
    /// Create a mix; proportions are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if any proportion is negative or all are zero.
    pub fn new(read: f64, insert: f64, update: f64) -> OperationMix {
        assert!(
            read >= 0.0 && insert >= 0.0 && update >= 0.0,
            "proportions must be non-negative"
        );
        let total = read + insert + update;
        assert!(total > 0.0, "at least one proportion must be positive");
        OperationMix {
            read: read / total,
            insert: insert / total,
            update: update / total,
        }
    }

    /// The paper's workload: "most requests that reach Cassandra and HBase
    /// tiers are write operations. We chose a write-intensive workload
    /// mix" — 10% reads, 45% inserts, 45% updates.
    pub fn write_heavy() -> OperationMix {
        OperationMix::new(0.10, 0.45, 0.45)
    }

    /// YCSB workload A (50% read / 50% update), for comparison runs.
    pub fn ycsb_a() -> OperationMix {
        OperationMix::new(0.50, 0.0, 0.50)
    }

    /// Fraction of operations that are reads.
    pub fn read_fraction(&self) -> f64 {
        self.read
    }

    /// Draw one operation kind.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> OpKind {
        let u: f64 = rng.gen_range(0.0..1.0);
        if u < self.read {
            OpKind::Read
        } else if u < self.read + self.insert {
            OpKind::Insert
        } else {
            OpKind::Update
        }
    }
}

/// Key selection strategy over a `0..key_space` space.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Uniform over the key space.
    Uniform {
        /// Number of keys.
        key_space: u64,
    },
    /// Zipf-skewed (YCSB's default request distribution).
    Zipfian {
        /// The prepared sampler.
        zipf: Zipf,
    },
}

impl KeyChooser {
    /// Uniform chooser.
    ///
    /// # Panics
    ///
    /// Panics if `key_space == 0`.
    pub fn uniform(key_space: u64) -> KeyChooser {
        assert!(key_space > 0, "key space must be non-empty");
        KeyChooser::Uniform { key_space }
    }

    /// Zipf chooser with YCSB's default skew (θ = 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `key_space == 0`.
    pub fn zipfian(key_space: usize) -> KeyChooser {
        KeyChooser::Zipfian {
            zipf: Zipf::new(key_space, 0.99),
        }
    }

    /// Draw one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            KeyChooser::Uniform { key_space } => rng.gen_range(0..*key_space),
            KeyChooser::Zipfian { zipf } => zipf.sample(rng) as u64,
        }
    }
}

/// Deterministic operation stream generator.
///
/// Arrivals are Poisson at `ops_per_sec` aggregate rate (the superposition
/// of the paper's 100 emulated closed-loop clients is well approximated by
/// a Poisson process at the server).
///
/// # Example
///
/// ```
/// use saad_workload::{KeyChooser, OperationMix, WorkloadGenerator};
/// use saad_sim::SimTime;
///
/// let mut gen = WorkloadGenerator::new(
///     OperationMix::write_heavy(),
///     KeyChooser::zipfian(10_000),
///     300.0, // ops/sec
///     42,
/// );
/// let ops = gen.ops_until(SimTime::from_secs(10));
/// assert!(ops.len() > 2500 && ops.len() < 3500);
/// ```
#[derive(Debug)]
pub struct WorkloadGenerator {
    mix: OperationMix,
    keys: KeyChooser,
    ops_per_sec: f64,
    mean_value_size: f64,
    rng: StdRng,
    cursor: SimTime,
}

impl WorkloadGenerator {
    /// Create a generator.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_sec` is not strictly positive.
    pub fn new(
        mix: OperationMix,
        keys: KeyChooser,
        ops_per_sec: f64,
        seed: u64,
    ) -> WorkloadGenerator {
        assert!(
            ops_per_sec > 0.0,
            "rate must be positive, got {ops_per_sec}"
        );
        WorkloadGenerator {
            mix,
            keys,
            ops_per_sec,
            mean_value_size: 1024.0, // YCSB default: 1 KB records
            rng: RngStreams::new(seed).stream("workload"),
            cursor: SimTime::ZERO,
        }
    }

    /// Change the aggregate rate mid-run (ops after the cursor use it).
    pub fn set_rate(&mut self, ops_per_sec: f64) {
        assert!(ops_per_sec > 0.0);
        self.ops_per_sec = ops_per_sec;
    }

    /// Current virtual-time cursor (arrival time of the next operation).
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// Generate the next operation.
    pub fn next_op(&mut self) -> Operation {
        let gap = exp_sample(&mut self.rng, 1.0 / self.ops_per_sec);
        self.cursor += SimDuration::from_secs_f64(gap);
        let kind = self.mix.sample(&mut self.rng);
        let key = self.keys.sample(&mut self.rng);
        let value_size = if kind.is_write() {
            // Value sizes vary ±50% around the mean.
            (self.mean_value_size * self.rng.gen_range(0.5..1.5)) as u32
        } else {
            0
        };
        Operation {
            at: self.cursor,
            kind,
            key,
            value_size,
        }
    }

    /// Generate all operations arriving strictly before `end`.
    pub fn ops_until(&mut self, end: SimTime) -> Vec<Operation> {
        let mut out = Vec::new();
        loop {
            let op = self.next_op();
            if op.at >= end {
                // The overshoot op is dropped; the cursor stays past `end`,
                // preserving the renewal process across calls.
                return out;
            }
            out.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_normalizes() {
        let m = OperationMix::new(2.0, 1.0, 1.0);
        assert!((m.read_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn write_heavy_is_mostly_writes() {
        let m = OperationMix::write_heavy();
        let mut rng = StdRng::seed_from_u64(1);
        let writes = (0..10_000)
            .filter(|_| m.sample(&mut rng).is_write())
            .count();
        assert!(writes > 8500, "writes={writes}");
    }

    #[test]
    #[should_panic]
    fn all_zero_mix_rejected() {
        OperationMix::new(0.0, 0.0, 0.0);
    }

    #[test]
    fn uniform_keys_cover_space() {
        let k = KeyChooser::uniform(10);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(k.sample(&mut rng));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn zipfian_keys_skew() {
        let k = KeyChooser::zipfian(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let head = (0..10_000).filter(|_| k.sample(&mut rng) < 10).count();
        assert!(head > 2500, "head={head}");
    }

    #[test]
    fn arrivals_are_increasing_and_rate_matches() {
        let mut g = WorkloadGenerator::new(
            OperationMix::write_heavy(),
            KeyChooser::uniform(100),
            1000.0,
            5,
        );
        let ops = g.ops_until(SimTime::from_secs(5));
        for w in ops.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let rate = ops.len() as f64 / 5.0;
        assert!((rate - 1000.0).abs() < 60.0, "rate={rate}");
    }

    #[test]
    fn reads_have_no_payload() {
        let mut g = WorkloadGenerator::new(
            OperationMix::new(1.0, 0.0, 0.0),
            KeyChooser::uniform(10),
            100.0,
            7,
        );
        for _ in 0..100 {
            let op = g.next_op();
            assert_eq!(op.kind, OpKind::Read);
            assert_eq!(op.value_size, 0);
        }
    }

    #[test]
    fn writes_have_payload_near_1kb() {
        let mut g = WorkloadGenerator::new(
            OperationMix::new(0.0, 1.0, 0.0),
            KeyChooser::uniform(10),
            100.0,
            7,
        );
        let sizes: Vec<u32> = (0..1000).map(|_| g.next_op().value_size).collect();
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        assert!((mean - 1024.0).abs() < 100.0, "mean={mean}");
        assert!(sizes.iter().all(|&s| (512..=1536).contains(&s)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let run = |seed| {
            let mut g = WorkloadGenerator::new(
                OperationMix::write_heavy(),
                KeyChooser::zipfian(100),
                200.0,
                seed,
            );
            g.ops_until(SimTime::from_secs(2))
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn ops_until_resumes_cleanly() {
        let mut g = WorkloadGenerator::new(
            OperationMix::write_heavy(),
            KeyChooser::uniform(10),
            500.0,
            11,
        );
        let a = g.ops_until(SimTime::from_secs(1));
        let b = g.ops_until(SimTime::from_secs(2));
        assert!(a.last().unwrap().at < SimTime::from_secs(1));
        assert!(b.first().unwrap().at >= SimTime::from_secs(1));
        assert!(b.last().unwrap().at < SimTime::from_secs(2));
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut g = WorkloadGenerator::new(
            OperationMix::write_heavy(),
            KeyChooser::uniform(10),
            100.0,
            13,
        );
        let slow = g.ops_until(SimTime::from_secs(5)).len();
        g.set_rate(1000.0);
        let fast = g.ops_until(SimTime::from_secs(10)).len();
        assert!(fast > slow * 5, "slow={slow} fast={fast}");
    }
}
