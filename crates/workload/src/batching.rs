//! The YCSB 0.1.4 put-batching misconfiguration (paper §5.5).
//!
//! "YCSB configures its HBase client to batch 'put' operations on the
//! client side and to periodically send them in one single RPC call. This
//! artificially boosts performance of write operations, at the expense of
//! delaying writes on the client side. The writes were persisted on
//! Regionservers only after a significant lag of about 9 minutes on
//! average. It must be noted that batching put operations violates the
//! benchmark specifications."
//!
//! [`Batching`] transforms an operation stream the way that buggy client
//! did: writes are held in a client-side buffer and released together when
//! the buffer reaches its size bound or its flush interval elapses.

use crate::{OpKind, Operation};
use saad_sim::{SimDuration, SimTime};

/// Client-side write batching transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Batching {
    /// Writes buffered before a size-triggered flush.
    pub batch_size: usize,
    /// Maximum time a write may sit in the buffer.
    pub flush_interval: SimDuration,
}

impl Batching {
    /// Create a batching transform.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or the interval is zero.
    pub fn new(batch_size: usize, flush_interval: SimDuration) -> Batching {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(
            flush_interval > SimDuration::ZERO,
            "flush interval must be positive"
        );
        Batching {
            batch_size,
            flush_interval,
        }
    }

    /// The misconfiguration the paper observed: a buffer so large that the
    /// periodic flush is effectively the only trigger, lagging writes by
    /// many minutes.
    pub fn ycsb_0_1_4_misconfig() -> Batching {
        Batching::new(100_000, SimDuration::from_mins(9))
    }

    /// Apply the transform: reads pass through at their original times;
    /// writes are re-timed to their batch's flush instant. The result is
    /// re-sorted by arrival time.
    ///
    /// Returns the transformed stream and the mean write lag introduced.
    pub fn apply(&self, ops: &[Operation]) -> (Vec<Operation>, SimDuration) {
        let mut out = Vec::with_capacity(ops.len());
        let mut buffer: Vec<Operation> = Vec::new();
        let mut buffer_opened: Option<SimTime> = None;
        let mut total_lag_us = 0u128;
        let mut lagged_writes = 0u64;

        let mut flush = |buffer: &mut Vec<Operation>, at: SimTime, out: &mut Vec<Operation>| {
            for mut op in buffer.drain(..) {
                total_lag_us += at.saturating_since(op.at).as_micros() as u128;
                lagged_writes += 1;
                op.at = at;
                out.push(op);
            }
        };

        for &op in ops {
            // Time-triggered flush happens as virtual time passes, before
            // the current op is considered.
            if let Some(opened) = buffer_opened {
                if op.at.saturating_since(opened) >= self.flush_interval {
                    let at = opened + self.flush_interval;
                    flush(&mut buffer, at, &mut out);
                    buffer_opened = None;
                }
            }
            match op.kind {
                OpKind::Read => out.push(op),
                OpKind::Insert | OpKind::Update => {
                    if buffer.is_empty() {
                        buffer_opened = Some(op.at);
                    }
                    buffer.push(op);
                    if buffer.len() >= self.batch_size {
                        flush(&mut buffer, op.at, &mut out);
                        buffer_opened = None;
                    }
                }
            }
        }
        if let Some(opened) = buffer_opened {
            let at = opened + self.flush_interval;
            flush(&mut buffer, at, &mut out);
        }
        out.sort_by_key(|op| op.at);
        let mean_lag = if lagged_writes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((total_lag_us / lagged_writes as u128) as u64)
        };
        (out, mean_lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(at_ms: u64) -> Operation {
        Operation {
            at: SimTime::from_millis(at_ms),
            kind: OpKind::Update,
            key: 1,
            value_size: 100,
        }
    }

    fn read(at_ms: u64) -> Operation {
        Operation {
            at: SimTime::from_millis(at_ms),
            kind: OpKind::Read,
            key: 1,
            value_size: 0,
        }
    }

    #[test]
    fn reads_pass_through_untouched() {
        let b = Batching::new(10, SimDuration::from_secs(1));
        let ops = vec![read(5), read(10)];
        let (out, lag) = b.apply(&ops);
        assert_eq!(out, ops);
        assert_eq!(lag, SimDuration::ZERO);
    }

    #[test]
    fn size_triggered_flush_groups_writes() {
        let b = Batching::new(3, SimDuration::from_mins(60));
        let ops = vec![write(0), write(100), write(200), write(300)];
        let (out, _) = b.apply(&ops);
        // First three flush together at t=200; the fourth waits for its
        // interval flush.
        assert_eq!(out[0].at, SimTime::from_millis(200));
        assert_eq!(out[1].at, SimTime::from_millis(200));
        assert_eq!(out[2].at, SimTime::from_millis(200));
        assert!(out[3].at > SimTime::from_millis(300));
    }

    #[test]
    fn time_triggered_flush_caps_lag() {
        let b = Batching::new(1000, SimDuration::from_secs(1));
        let ops = vec![write(0), write(100), read(2_000), write(2_100)];
        let (out, _) = b.apply(&ops);
        // The two early writes flush at t=1s, before the read at 2s.
        let writes: Vec<&Operation> = out.iter().filter(|o| o.kind.is_write()).collect();
        assert_eq!(writes[0].at, SimTime::from_secs(1));
        assert_eq!(writes[1].at, SimTime::from_secs(1));
    }

    #[test]
    fn mean_lag_reflects_buffering() {
        let b = Batching::new(2, SimDuration::from_secs(100));
        // Two writes 1 s apart flush together at the second write.
        let ops = vec![write(0), write(1000)];
        let (_, lag) = b.apply(&ops);
        assert_eq!(lag, SimDuration::from_millis(500));
    }

    #[test]
    fn misconfig_lags_writes_by_minutes() {
        let b = Batching::ycsb_0_1_4_misconfig();
        let ops: Vec<Operation> = (0..600).map(|i| write(i * 1000)).collect(); // 10 min of writes
        let (out, lag) = b.apply(&ops);
        assert_eq!(out.len(), 600);
        // Mean lag ~ half the 9-minute interval.
        assert!(lag >= SimDuration::from_mins(3), "lag={lag}");
        assert!(lag <= SimDuration::from_mins(9), "lag={lag}");
    }

    #[test]
    fn output_is_time_sorted() {
        let b = Batching::new(2, SimDuration::from_secs(1));
        let ops = vec![write(0), read(500), write(700), read(800), write(900)];
        let (out, _) = b.apply(&ops);
        for w in out.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert_eq!(out.len(), ops.len());
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        Batching::new(0, SimDuration::from_secs(1));
    }
}
